"""Render Figure 3/4/5-style tables and paper-vs-measured comparisons."""

from __future__ import annotations

from .runner import CellResult

__all__ = ["render_figure", "render_comparison", "PAPER_DATA"]

#: the paper's reported numbers: figure -> benchmark -> row
#: (insns, disassembly, policy checking, loading and relocation)
PAPER_DATA: dict[int, dict[str, tuple[int, int, int, int]]] = {
    3: {  # library-linking policy
        "nginx": (262_228, 694_405_019, 1_307_411_662, 128_696),
        "bzip2": (24_112, 34_071_240, 148_922_245, 4_239),
        "graph500": (100_411, 140_307_017, 246_669_796, 4_582),
        "mcf": (12_903, 18_242_127, 123_895_553, 4_363),
        "memcached": (71_437, 137_372_517, 489_914_732, 8_115),
        "netperf": (51_403, 90_616_563, 367_356_878, 18_090),
        "otp-gen": (28_125, 42_823_024, 198_587_525, 5_388),
    },
    4: {  # stack-protection policy
        "nginx": (271_106, 719_360_640, 713_772_098, 128_662),
        "bzip2": (24_226, 34_292_136, 862_023_613, 4_206),
        "graph500": (100_488, 140_588_361, 195_218_892, 4_548),
        "mcf": (12_985, 18_288_921, 31_459_881, 4_330),
        "memcached": (71_677, 137_877_497, 325_442_403, 8_081),
        "netperf": (51_868, 91_577_335, 183_274_713, 18_057),
        "otp-gen": (28_217, 43_053_386, 217_302_816, 5_355),
    },
    5: {  # indirect function-call (IFCC) policy
        "nginx": (267_669, 821_734_999, 20_843_253, 128_668),
        "bzip2": (24_201, 34_235_817, 1_751_276, 4_206),
        "graph500": (100_424, 140_429_738, 7_014_913, 4_548),
        "mcf": (12_903, 18_242_127, 1_177_429, 4_330),
        "memcached": (71_508, 138_231_446, 5_301_168, 8_081),
        "netperf": (51_431, 91_161_601, 3_775_318, 18_057),
        "otp-gen": (28_132, 42_829_680, 2_334_847, 5_355),
    },
}

_PAPER_NAMES = {
    "nginx": "Nginx", "bzip2": "401.bzip2", "graph500": "Graph-500",
    "mcf": "429.mcf", "memcached": "Memcached", "netperf": "Netperf",
    "otp-gen": "Otp-gen",
}

_HEADER = (
    f"{'Benchmark':<12} {'#Inst.':>10} {'Disassembly':>16} "
    f"{'Policy Checking':>16} {'Loading/Reloc':>14}"
)


def render_figure(results: list[CellResult], title: str) -> str:
    """A paper-style table for one figure's measured results."""
    lines = [title, "=" * len(title), _HEADER, "-" * len(_HEADER)]
    for cell in results:
        lines.append(
            f"{_PAPER_NAMES.get(cell.benchmark, cell.benchmark):<12} "
            f"{cell.insn_count:>10,} {cell.disassembly_cycles:>16,} "
            f"{cell.policy_cycles:>16,} {cell.loading_cycles:>14,}"
        )
    return "\n".join(lines)


def render_comparison(results: list[CellResult], figure: int) -> str:
    """Measured-vs-paper, with per-cell ratios (measured / paper)."""
    paper = PAPER_DATA[figure]
    title = f"Figure {figure}: measured vs paper (ratio = measured/paper)"
    header = (
        f"{'Benchmark':<12} {'#Inst':>9} {'ratio':>6} | "
        f"{'Disasm (cyc)':>14} {'ratio':>6} | "
        f"{'Policy (cyc)':>14} {'ratio':>6} | "
        f"{'Load (cyc)':>11} {'ratio':>6}"
    )
    lines = [title, "=" * len(title), header, "-" * len(header)]
    for cell in results:
        p = paper[cell.benchmark]
        lines.append(
            f"{_PAPER_NAMES[cell.benchmark]:<12} "
            f"{cell.insn_count:>9,} {cell.insn_count / p[0]:>6.2f} | "
            f"{cell.disassembly_cycles:>14,} {cell.disassembly_cycles / p[1]:>6.2f} | "
            f"{cell.policy_cycles:>14,} {cell.policy_cycles / p[2]:>6.2f} | "
            f"{cell.loading_cycles:>11,} {cell.loading_cycles / p[3]:>6.2f}"
        )
    return "\n".join(lines)
