"""Export measured results as JSON/CSV for downstream analysis/plotting."""

from __future__ import annotations

import csv
import io
import json

from .runner import CellResult
from .tables import PAPER_DATA

__all__ = ["cells_to_json", "cells_to_csv", "figure_to_dict"]

_FIELDS = (
    "benchmark", "policy", "insn_count",
    "disassembly_cycles", "policy_cycles", "loading_cycles",
    "sgx_instructions", "total_cycles", "accepted",
)


def figure_to_dict(cells: list[CellResult], figure: int | None = None) -> dict:
    """A JSON-ready structure, optionally annotated with paper ratios."""
    rows = []
    for cell in cells:
        row = {name: getattr(cell, name) for name in _FIELDS}
        if figure is not None:
            paper = PAPER_DATA[figure][cell.benchmark]
            row["paper"] = {
                "insn_count": paper[0],
                "disassembly_cycles": paper[1],
                "policy_cycles": paper[2],
                "loading_cycles": paper[3],
            }
            row["ratios"] = {
                "insn_count": round(cell.insn_count / paper[0], 4),
                "disassembly_cycles": round(cell.disassembly_cycles / paper[1], 4),
                "policy_cycles": round(cell.policy_cycles / paper[2], 4),
                "loading_cycles": round(cell.loading_cycles / paper[3], 4),
            }
        rows.append(row)
    return {"figure": figure, "cells": rows}


def cells_to_json(cells: list[CellResult], figure: int | None = None) -> str:
    """Serialise results (with paper comparison when *figure* is given)."""
    return json.dumps(figure_to_dict(cells, figure), indent=2)


def cells_to_csv(cells: list[CellResult]) -> str:
    """Flat CSV with one row per (benchmark, policy) cell."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_FIELDS)
    for cell in cells:
        writer.writerow([getattr(cell, name) for name in _FIELDS])
    return buffer.getvalue()
