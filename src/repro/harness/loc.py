"""Figure 2 analogue: lines-of-code inventory of this reproduction.

The paper's Figure 2 lists the size of each EnGarde component (code
provisioning, loading/relocating, the three policy checkers, the client
program, and the bundled libraries).  This module computes the same table
for our implementation, mapping each paper component to the modules that
realise it here.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["component_loc", "render_loc_table", "COMPONENTS", "PAPER_LOC"]

_SRC = Path(__file__).resolve().parent.parent

#: paper component -> (paper LoC, our module paths relative to repro/)
COMPONENTS: dict[str, tuple[int, list[str]]] = {
    "Code Provisioning": (270, [
        "core/provisioning.py", "core/disasm.py", "core/engarde.py",
        "core/report.py",
    ]),
    "Loading and Relocating": (188, ["core/loader.py"]),
    "Checking Executables linked against musl-libc": (1_949, [
        "core/policies/library_linking.py", "core/policy.py",
    ]),
    "Checking Executables Compiled with Stack Protection": (109, [
        "core/policies/stack_protection.py",
    ]),
    "Checking Executables Containing Indirect Function-Call Checks": (129, [
        "core/policies/ifcc.py",
    ]),
    "Client's side program": (349, ["net/sock.py"]),
    "Musl-libc": (90_728, ["toolchain/libc.py"]),
    "Lib crypto (openssl)": (287_985, [
        "crypto/sha256.py", "crypto/mac.py", "crypto/primes.py",
        "crypto/rsa.py", "crypto/aes.py",
    ]),
    "Lib ssl (openssl)": (63_566, ["crypto/channel.py"]),
}

#: components we needed that the paper got from its platform
EXTRA_COMPONENTS: dict[str, list[str]] = {
    "SGX machine (OpenSGX analogue)": [
        "sgx/epc.py", "sgx/enclave.py", "sgx/isa.py", "sgx/measurement.py",
        "sgx/host.py", "sgx/attestation.py", "sgx/cpu.py", "sgx/params.py",
        "sgx/paging.py", "sgx/sidechannel.py",
    ],
    "x86-64 encoder/decoder (NaCl analogue)": [
        "x86/registers.py", "x86/insn.py", "x86/opcodes.py",
        "x86/encoder.py", "x86/asm.py", "x86/decoder.py", "x86/validator.py",
    ],
    "Runtime execution extension (interpreter)": [
        "x86/interp.py", "core/runtime.py",
    ],
    "Stripped-binary extension (function recognition)": [
        "core/funcid.py",
    ],
    "ELF64 reader/writer": [
        "elf/constants.py", "elf/structs.py", "elf/reader.py", "elf/writer.py",
    ],
    "Toolchain (clang/LLVM analogue)": [
        "toolchain/ir.py", "toolchain/codegen.py", "toolchain/linker.py",
        "toolchain/workloads.py",
    ],
}

PAPER_LOC = {name: loc for name, (loc, _paths) in COMPONENTS.items()}
PAPER_TOTAL = 453_349


def _count_file(path: Path) -> int:
    """Non-blank, non-comment lines (how `cloc`-style counters work)."""
    count = 0
    in_docstring = False
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if in_docstring:
            count += 1
            if stripped.endswith('"""') or stripped.endswith("'''"):
                in_docstring = False
            continue
        if stripped.startswith("#"):
            continue
        count += 1
        for quote in ('"""', "'''"):
            if stripped.startswith(quote) and not (
                stripped.endswith(quote) and len(stripped) > 3
            ):
                in_docstring = True
    return count


def component_loc() -> dict[str, tuple[int | None, int]]:
    """component name -> (paper LoC or None, our LoC)."""
    table: dict[str, tuple[int | None, int]] = {}
    for name, (paper, paths) in COMPONENTS.items():
        ours = sum(_count_file(_SRC / p) for p in paths)
        table[name] = (paper, ours)
    for name, paths in EXTRA_COMPONENTS.items():
        ours = sum(_count_file(_SRC / p) for p in paths)
        table[name] = (None, ours)
    return table


def render_loc_table() -> str:
    """A Figure 2-style table: paper LoC vs this reproduction's."""
    rows = component_loc()
    width = max(len(name) for name in rows) + 2
    lines = [
        "Figure 2: sizes of EnGarde components (paper LoC vs this repo)",
        "=" * (width + 24),
        f"{'Component':<{width}} {'Paper':>10} {'Ours':>10}",
        "-" * (width + 24),
    ]
    paper_total = 0
    our_total = 0
    for name, (paper, ours) in rows.items():
        paper_str = f"{paper:,}" if paper is not None else "(platform)"
        lines.append(f"{name:<{width}} {paper_str:>10} {ours:>10,}")
        paper_total += paper or 0
        our_total += ours
    lines.append("-" * (width + 24))
    lines.append(f"{'Total':<{width}} {paper_total:>10,} {our_total:>10,}")
    return "\n".join(lines)
