"""Experiment harness: regenerates every table and figure in the paper."""

from .export import cells_to_csv, cells_to_json, figure_to_dict
from .loc import component_loc, render_loc_table
from .runner import CellResult, POLICY_SETUPS, run_cell, run_figure
from .tables import PAPER_DATA, render_comparison, render_figure

__all__ = [
    "run_cell", "run_figure", "CellResult", "POLICY_SETUPS",
    "render_figure", "render_comparison", "PAPER_DATA",
    "component_loc", "render_loc_table",
    "cells_to_json", "cells_to_csv", "figure_to_dict",
]
