"""Experiment runner: one (benchmark x policy) cell of Figures 3-5.

For each cell the runner builds the workload with the policy's required
instrumentation, drives the full provisioning protocol (attestation, key
exchange, encrypted transfer, EnGarde pipeline), and reads the cycle
meter's phase totals — producing the same four columns the paper reports:
``#Inst``, Disassembly, Policy Checking, Loading and Relocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    provision,
)
from ..crypto import HmacDrbg
from ..sgx import SgxParams
from ..toolchain import LinkedBinary, build_libc
from ..toolchain.libc import LibcBuild
from ..toolchain.workloads import PAPER_BENCHMARKS, build_workload

__all__ = [
    "CellResult", "run_cell", "run_figure", "POLICY_SETUPS", "PAPER_BENCHMARKS",
    "build_batch_corpus", "run_batch",
]

#: policy name -> (figure number, compiler flags needed for compliance)
POLICY_SETUPS = {
    "library-linking": {"figure": 3, "stack_protector": False, "ifcc": False},
    "stack-protection": {"figure": 4, "stack_protector": True, "ifcc": False},
    "indirect-function-call": {"figure": 5, "stack_protector": False, "ifcc": True},
}


@dataclass(frozen=True)
class CellResult:
    """One row cell: the paper's four reported quantities (plus extras)."""

    benchmark: str
    policy: str
    insn_count: int
    disassembly_cycles: int
    policy_cycles: int
    loading_cycles: int
    accepted: bool
    sgx_instructions: int
    total_cycles: int


def make_policy(name: str, libc: LibcBuild, **options):
    """Instantiate one of the three paper policies by name."""
    if name == "library-linking":
        return LibraryLinkingPolicy(libc.reference_hashes(), **options)
    if name == "stack-protection":
        return StackProtectionPolicy(
            exempt_functions=set(libc.offsets), **options
        )
    if name == "indirect-function-call":
        return IfccPolicy(**options)
    raise KeyError(f"unknown policy {name!r}")


def run_cell(
    benchmark: str,
    policy_name: str,
    *,
    scale: float | None = None,
    libc: LibcBuild | None = None,
    binary: LinkedBinary | None = None,
    policy_options: dict | None = None,
    provider_options: dict | None = None,
) -> CellResult:
    """Run one benchmark under one policy through the full protocol."""
    setup = POLICY_SETUPS[policy_name]
    libc = libc or build_libc()
    if binary is None:
        binary = build_workload(
            benchmark,
            stack_protector=setup["stack_protector"],
            ifcc=setup["ifcc"],
            libc=libc,
            scale=scale,
        )

    policies = PolicyRegistry([
        make_policy(policy_name, libc, **(policy_options or {}))
    ])
    client_pages = max(_pages_for(binary) + 16, 64)
    # The instruction buffer stores one 64-byte record per instruction and
    # grows a page at a time; size the heap (and the EPC behind it) for it.
    buffer_pages = binary.insn_count * 64 // 4096 + 8
    heap_pages = max(buffer_pages + 64, 128)
    defaults = dict(
        params=SgxParams(
            epc_pages=client_pages + heap_pages + 512,
            heap_initial_pages=heap_pages,
        ),
        rng=HmacDrbg(b"provider-" + benchmark.encode()),
        rsa_bits=1024,
        client_pages=client_pages,
    )
    defaults.update(provider_options or {})
    provider = CloudProvider(policies, **defaults)
    client = EnclaveClient(
        binary.elf,
        policies=policies,
        rng=HmacDrbg(b"client-" + benchmark.encode()),
        benchmark=benchmark,
    )

    result = provision(provider, client)
    meter = result.meter
    return CellResult(
        benchmark=benchmark,
        policy=policy_name,
        insn_count=binary.insn_count,
        disassembly_cycles=meter.phase_cycles("disassembly"),
        policy_cycles=meter.phase_cycles("policy"),
        loading_cycles=meter.phase_cycles("loading"),
        accepted=result.accepted,
        sgx_instructions=meter.sgx_instruction_count,
        total_cycles=meter.total_cycles,
    )


def run_figure(
    policy_name: str,
    *,
    scale: float | None = None,
    benchmarks: tuple[str, ...] = PAPER_BENCHMARKS,
) -> list[CellResult]:
    """All seven benchmarks under one policy — one paper figure."""
    libc = build_libc()
    return [
        run_cell(b, policy_name, scale=scale, libc=libc) for b in benchmarks
    ]


def _pages_for(binary: LinkedBinary) -> int:
    total = binary.text_size + binary.data_size + binary.bss_size + 0x4000
    return (total + 4095) // 4096


# ------------------------------------------------------------ batch service


def build_batch_corpus(
    policy_name: str,
    *,
    benchmarks: tuple[str, ...] = PAPER_BENCHMARKS,
    scale: float | None = None,
    libc: LibcBuild | None = None,
    repeats: int = 1,
) -> tuple[LibcBuild, list[tuple[str, bytes]]]:
    """A provider-sized fleet built from the paper workloads.

    Each benchmark contributes its policy-compliant build plus (where the
    policy requires instrumentation) the uninstrumented build, which the
    policy must reject.  *repeats* re-submits the whole fleet that many
    times — byte-identical resubmissions, i.e. the cache's steady-state
    workload.
    """
    setup = POLICY_SETUPS[policy_name]
    libc = libc or build_libc()
    fleet: list[tuple[str, bytes]] = []
    for bench in benchmarks:
        compliant = build_workload(
            bench,
            stack_protector=setup["stack_protector"],
            ifcc=setup["ifcc"],
            libc=libc,
            scale=scale,
        )
        fleet.append((f"{bench}/compliant", compliant.elf))
        if setup["stack_protector"] or setup["ifcc"]:
            plain = build_workload(bench, libc=libc, scale=scale)
            fleet.append((f"{bench}/plain", plain.elf))
    corpus = [
        (f"{label}#{r}", elf)
        for r in range(max(repeats, 1))
        for label, elf in fleet
    ]
    return libc, corpus


def run_batch(
    policy_name: str,
    *,
    benchmarks: tuple[str, ...] = PAPER_BENCHMARKS,
    scale: float | None = None,
    workers: int | None = None,
    mode: str = "process",
    shared_memory: bool = True,
    repeats: int = 1,
    cache_capacity: int = 1024,
    timeout: float | None = None,
    policy_options: dict | None = None,
    scheduler: str = "per-item",
):
    """Drive the batch inspection service over the paper workloads.

    Returns the :class:`repro.service.BatchReport`; ``repeats > 1``
    demonstrates the content-addressed cache (every pass after the first
    is pure hits).  ``shared_memory=False`` forces the legacy pickling
    executor (the zero-copy differential oracle).
    """
    from ..service import BatchInspector

    libc, corpus = build_batch_corpus(
        policy_name,
        benchmarks=benchmarks,
        scale=scale,
        repeats=repeats,
    )
    policies = PolicyRegistry([
        make_policy(policy_name, libc, **(policy_options or {}))
    ])
    with BatchInspector(
        policies,
        workers=workers,
        mode=mode,
        shared_memory=shared_memory,
        cache_capacity=cache_capacity,
        timeout=timeout,
        scheduler=scheduler,
    ) as inspector:
        return inspector.inspect_batch(corpus)
