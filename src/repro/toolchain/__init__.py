"""Mini toolchain: the clang/LLVM + musl stand-in.

Program specs (:mod:`ir`) are compiled (:mod:`codegen`) with optional
stack-protector and IFCC instrumentation, statically linked against the
synthetic musl (:mod:`libc`, :mod:`linker`) into real ELF64 PIEs.  The
seven paper benchmarks live in :mod:`workloads`.
"""

from .codegen import (
    CompiledFunction,
    CompiledProgram,
    Compiler,
    CompilerFlags,
    JUMP_TABLE_PREFIX,
    STACK_CHK_FAIL,
)
from .ir import DataObject, FunctionSpec, ProgramSpec
from .libc import LibcBuild, LibcFunction, MUSL_FUNCTIONS, MUSL_VERSION, build_libc
from .linker import LinkedBinary, link

__all__ = [
    "FunctionSpec", "DataObject", "ProgramSpec",
    "Compiler", "CompilerFlags", "CompiledFunction", "CompiledProgram",
    "JUMP_TABLE_PREFIX", "STACK_CHK_FAIL",
    "build_libc", "LibcBuild", "LibcFunction", "MUSL_FUNCTIONS", "MUSL_VERSION",
    "link", "LinkedBinary",
]
