"""Program-level intermediate representation for the mini compiler.

A *program spec* describes the shape of a client application: its
functions (control-flow shape, stack usage, call structure), the libc
functions it imports, and its data objects.  The workload generator
(:mod:`repro.toolchain.workloads`) produces specs whose compiled size
matches the paper's benchmarks; examples and tests can also write small
specs by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FunctionSpec", "DataObject", "ProgramSpec"]


@dataclass
class FunctionSpec:
    """Shape of one client function.

    The compiler turns this into real x86-64: a frame-setup prologue,
    *n_blocks* basic blocks of arithmetic/memory ops (sizes drawn from
    *ops_per_block* via the program's DRBG), direct calls and indirect
    calls placed at deterministic points, and an epilogue.
    """

    name: str
    n_blocks: int = 3
    ops_per_block: tuple[int, int] = (5, 15)
    frame_slots: int = 4
    #: callee names — other client functions or libc imports
    direct_calls: list[str] = field(default_factory=list)
    #: number of indirect call sites (through data-resident fn pointers)
    indirect_calls: int = 0
    #: eligible as an indirect-call target (gets a jump-table entry
    #: under IFCC, and a pointer slot in .data)
    address_taken: bool = False
    #: extra weight on stack-store ops in the generated body (bzip2-style
    #: array-heavy code); 0 = the default op mix
    store_bias: int = 0

    def __post_init__(self) -> None:
        if self.n_blocks < 1:
            raise ValueError(f"{self.name}: need at least one block")
        lo, hi = self.ops_per_block
        if lo < 1 or hi < lo:
            raise ValueError(f"{self.name}: bad ops_per_block {self.ops_per_block}")
        if self.frame_slots < 1:
            raise ValueError(f"{self.name}: need at least one frame slot")


@dataclass
class DataObject:
    """An initialised .data object.

    *pointers* lists (offset, target_symbol) pairs: 8-byte slots holding
    the address of a text symbol.  They become ``R_X86_64_RELATIVE``
    relocations — the thing the in-enclave loader has to patch.
    """

    name: str
    size: int
    init: bytes = b""
    pointers: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.init) > self.size:
            raise ValueError(f"{self.name}: init larger than object")
        for off, sym in self.pointers:
            if off % 8 or off + 8 > self.size:
                raise ValueError(f"{self.name}: bad pointer slot {off} -> {sym}")


@dataclass
class ProgramSpec:
    """A whole client program."""

    name: str
    functions: list[FunctionSpec]
    libc_imports: list[str] = field(default_factory=list)
    data_objects: list[DataObject] = field(default_factory=list)
    bss_size: int = 64
    entry: str = "_start"
    #: seed for deterministic body generation
    seed: bytes = b""

    def function(self, name: str) -> FunctionSpec:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r} in program {self.name}")

    def validate(self) -> None:
        names = [f.name for f in self.functions]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate function names")
        known = set(names) | set(self.libc_imports)
        for f in self.functions:
            for callee in f.direct_calls:
                if callee not in known:
                    raise ValueError(
                        f"{self.name}: {f.name} calls unknown symbol {callee!r}"
                    )
        if any(f.indirect_calls for f in self.functions) and not any(
            f.address_taken for f in self.functions
        ):
            raise ValueError(
                f"{self.name}: indirect calls but no address-taken functions"
            )
