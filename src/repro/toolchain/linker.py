"""Static PIE linker.

Lays out the client's compiled functions followed by the *entire* libc
block (in its canonical order — this is what keeps intra-libc ``rel32``
offsets, and therefore per-function hashes, identical across binaries),
resolves symbolic fixups, materialises function-pointer slots as
``R_X86_64_RELATIVE`` relocations, and emits the ELF64 image via
:mod:`repro.elf.writer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..elf import ElfSymbol, Layout, write_elf
from ..errors import LinkError
from ..x86.encoder import Enc
from .codegen import CompiledProgram
from .libc import LibcBuild

__all__ = ["LinkedBinary", "link"]

_ALIGN = 32  # NaCl bundle size; every function starts on a fresh bundle


@dataclass
class LinkedBinary:
    """The linker's output plus the metadata tests and benches consume."""

    name: str
    elf: bytes
    insn_count: int
    text_size: int
    data_size: int
    bss_size: int
    entry_vaddr: int
    #: symbol name -> vaddr (functions, table entries, data objects)
    symbols: dict[str, int] = field(default_factory=dict)
    relocation_count: int = 0


def link(program: CompiledProgram, libc: LibcBuild) -> LinkedBinary:
    """Produce a statically-linked PIE from *program* and *libc*."""

    # ---- text layout -------------------------------------------------------
    text = bytearray()
    insn_count = 0
    func_symbols: list[tuple[str, int, int]] = []  # (name, offset, size)
    fixups: list[tuple[int, int, str, int]] = []   # (patch, next, symbol, addend)

    libc_names = set(libc.offsets)
    for fn in program.functions:
        if fn.name in libc_names:
            raise LinkError(f"client symbol {fn.name!r} collides with libc")

    for fn in program.functions:
        pad = (-len(text)) % _ALIGN
        if pad:
            text += Enc.nop_pad(pad)
            insn_count += _nop_count(pad)
        base = len(text)
        func_symbols.append((fn.name, base, len(fn.code)))
        for name, off, size in fn.extra_symbols:
            func_symbols.append((name, base + off, size))
        for fx in fn.fixups:
            fixups.append((base + fx.patch_offset, base + fx.next_offset,
                           fx.symbol, fx.addend))
        text += fn.code
        insn_count += fn.insn_count

    pad = (-len(text)) % _ALIGN
    if pad:
        text += Enc.nop_pad(pad)
        insn_count += _nop_count(pad)

    # Link-time GC: retain only the libc functions the program imports.
    # Each retained function is a self-contained 32-byte-aligned unit, so
    # its bytes (and hence its policy hash) are identical to the golden
    # build's no matter which subset is retained.
    retained = libc.closure(program.libc_imports)
    libc_units = {f.name: f for f in libc.functions}
    libc_offsets: dict[str, int] = {}
    libc_sizes: dict[str, int] = {}
    for name in retained:
        unit = libc_units[name]
        libc_offsets[name] = len(text)
        libc_sizes[name] = len(unit.code)
        text += unit.code
        insn_count += unit.insn_count

    text_offsets: dict[str, int] = {}
    for name, off, _size in func_symbols:
        if name in text_offsets:
            raise LinkError(f"duplicate text symbol {name!r}")
        text_offsets[name] = off
    text_offsets.update(libc_offsets)

    # ---- data layout -------------------------------------------------------
    data = bytearray()
    data_symbols: list[tuple[str, int, int]] = []
    pointer_slots: list[tuple[int, str]] = []  # (offset in .data, target symbol)
    seen_objects: set[str] = set()
    for obj in program.data_objects:
        if obj.name in seen_objects or obj.name in text_offsets:
            raise LinkError(f"duplicate symbol {obj.name!r}")
        seen_objects.add(obj.name)
        pad = (-len(data)) % 8
        data += b"\x00" * pad
        base = len(data)
        data_symbols.append((obj.name, base, obj.size))
        data += obj.init.ljust(obj.size, b"\x00")
        for off, target in obj.pointers:
            pointer_slots.append((base + off, target))

    # ---- final addresses ----------------------------------------------------
    layout = Layout.compute(len(text), len(pointer_slots), len(data), program.bss_size)
    symbols: dict[str, int] = {}
    for name, off in text_offsets.items():
        symbols[name] = layout.text_vaddr + off
    for name, off, _size in data_symbols:
        symbols[name] = layout.data_vaddr + off

    def resolve(name: str) -> int:
        try:
            return symbols[name]
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

    for patch, next_off, symbol, addend in fixups:
        target = resolve(symbol) + addend
        rel = target - (layout.text_vaddr + next_off)
        text[patch:patch + 4] = rel.to_bytes(4, "little", signed=True)

    relocations = []
    for slot_off, target in pointer_slots:
        target_vaddr = resolve(target)
        slot_vaddr = layout.data_vaddr + slot_off
        data[slot_off:slot_off + 8] = target_vaddr.to_bytes(8, "little")
        relocations.append((slot_vaddr, target_vaddr))

    # ---- symbol table & image -----------------------------------------------
    elf_symbols = [
        ElfSymbol(name, layout.text_vaddr + off, size, "func", "text")
        for name, off, size in func_symbols
    ]
    elf_symbols += [
        ElfSymbol(name, layout.text_vaddr + off, libc_sizes[name], "func", "text")
        for name, off in libc_offsets.items()
    ]
    elf_symbols += [
        ElfSymbol(name, layout.data_vaddr + off, size, "object", "data")
        for name, off, size in data_symbols
    ]

    entry_vaddr = resolve(program.entry)
    elf = write_elf(
        text=bytes(text),
        data=bytes(data),
        bss_size=program.bss_size,
        symbols=elf_symbols,
        relocations=relocations,
        entry_vaddr=entry_vaddr,
        layout=layout,
    )
    return LinkedBinary(
        name=program.name,
        elf=elf,
        insn_count=insn_count,
        text_size=len(text),
        data_size=len(data),
        bss_size=program.bss_size,
        entry_vaddr=entry_vaddr,
        symbols=symbols,
        relocation_count=len(relocations),
    )


def _nop_count(pad: int) -> int:
    full, rem = divmod(pad, 9)
    return full + (1 if rem else 0)
