"""The seven paper benchmarks as synthetic workloads (paper section 5).

Each profile captures the *code shape* of its benchmark — function count
and size distribution, libc usage, indirect-call density, relocation
(function-pointer table) count — tuned so the plain build's instruction
count matches the ``#Inst`` column of Figure 3:

===========  ========  ==========================================
benchmark    #Inst     shape notes
===========  ========  ==========================================
nginx         262,228  many medium functions, heavy libc + module
                       tables (hence the large relocation count and
                       Figure 3's outsized loading cost), hundreds of
                       indirect calls through handler pointers
401.bzip2      24,112  a handful of **huge** compression kernels with
                       dense stack traffic — the reason its Figure 4
                       policy-check cost exceeds Nginx's
graph-500     100,411  medium kernels, light libc
429.mcf        12,903  tiny simplex kernels but call-heavy relative to
                       size — the highest per-instruction cost in
                       Figure 3
memcached      71,437  event-driven: many callbacks (address-taken) and
                       socket/pthread libc
netperf        51,403  socket benchmark loops
otp-gen        28,125  password generator: unrolled crypto-ish rounds
===========  ========  ==========================================

Generation is deterministic (HMAC-DRBG per profile) and self-calibrating:
filler kernels are resized until the plain build lands within 0.1% of the
target, then the requested instrumentation (stack protector / IFCC) is
applied — so instrumented instruction counts *grow* relative to Figure 3
exactly as the paper's Figures 4-5 show.

Set ``REPRO_WORKLOAD_SCALE=0.1`` (or pass ``scale=``) to shrink every
workload for quick runs; shapes are preserved.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..crypto import HmacDrbg
from ..errors import ToolchainError
from .codegen import Compiler, CompilerFlags
from .ir import DataObject, FunctionSpec, ProgramSpec
from .libc import LibcBuild, build_libc
from .linker import LinkedBinary, link

__all__ = ["WorkloadProfile", "PROFILES", "PAPER_BENCHMARKS", "build_workload"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Shape parameters for one benchmark."""

    name: str
    paper_name: str
    target_insns: int            # Figure 3 "#Inst" (plain build)
    n_blocks: tuple[int, int]
    ops_per_block: tuple[int, int]
    frame_slots: tuple[int, int]
    calls_per_func: tuple[int, int]
    libc_pool: tuple[str, ...]
    store_bias: int = 0
    address_taken: int = 0
    icall_sites: int = 0
    pointer_table_entries: int = 0
    data_bytes: int = 512
    bss_bytes: int = 4096
    #: huge-kernel overrides: (count, blocks, ops) triples generated first
    giant_functions: tuple[tuple[int, tuple[int, int], tuple[int, int]], ...] = ()


_STRING_POOL = (
    "memcpy", "memset", "memcmp", "memmove", "strlen", "strcmp", "strncmp",
    "strcpy", "strchr", "strstr",
)
_STDIO_POOL = (
    "printf", "fprintf", "snprintf", "fopen", "fclose", "fread", "fwrite",
    "fflush", "fgets", "fputs", "fseek", "puts",
)
_MALLOC_POOL = ("malloc", "free", "calloc", "realloc")
_SOCKET_POOL = (
    "socket", "bind", "listen", "accept", "connect", "send", "recv",
    "setsockopt", "htons", "ntohs", "inet_ntop", "getaddrinfo",
)
_TIME_POOL = ("time", "gettimeofday", "clock_gettime", "strftime", "localtime")
_PTHREAD_POOL = (
    "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_create",
    "pthread_cond_wait", "pthread_cond_signal",
)
_MATH_POOL = ("sqrt", "pow", "log", "exp", "floor", "fabs")
_STDLIB_POOL = ("atoi", "strtol", "qsort", "rand", "abs", "getenv", "exit")


PROFILES: dict[str, WorkloadProfile] = {
    "nginx": WorkloadProfile(
        name="nginx",
        paper_name="Nginx",
        target_insns=262_228,
        n_blocks=(6, 14),
        ops_per_block=(22, 42),
        frame_slots=(6, 14),
        calls_per_func=(4, 9),
        libc_pool=_SOCKET_POOL + _STDIO_POOL + _STRING_POOL + _MALLOC_POOL
        + _TIME_POOL + _PTHREAD_POOL + _STDLIB_POOL,
        address_taken=300,
        icall_sites=850,
        pointer_table_entries=2200,
        data_bytes=8192,
        bss_bytes=65536,
    ),
    "bzip2": WorkloadProfile(
        name="bzip2",
        paper_name="401.bzip2",
        target_insns=24_112,
        n_blocks=(2, 4),
        ops_per_block=(6, 14),
        frame_slots=(6, 16),
        calls_per_func=(35, 55),
        libc_pool=("printf", "fread", "fwrite", "malloc", "free", "memcpy",
                   "exit"),
        store_bias=2,
        address_taken=4,
        icall_sites=6,
        pointer_table_entries=12,
        giant_functions=(
            (4, (45, 60), (70, 95)),   # the BZ2_compress/decompress kernels
        ),
        data_bytes=2048,
        bss_bytes=262144,
    ),
    "graph500": WorkloadProfile(
        name="graph500",
        paper_name="Graph-500",
        target_insns=100_411,
        n_blocks=(4, 10),
        ops_per_block=(12, 26),
        frame_slots=(4, 10),
        calls_per_func=(1, 4),
        libc_pool=_MALLOC_POOL + _MATH_POOL + ("printf", "rand", "qsort",
                                               "memcpy", "memset", "exit"),
        pointer_table_entries=6,
        data_bytes=1024,
        bss_bytes=1 << 20,
    ),
    "mcf": WorkloadProfile(
        name="mcf",
        paper_name="429.mcf",
        target_insns=12_903,
        n_blocks=(5, 10),
        ops_per_block=(45, 75),
        frame_slots=(4, 10),
        calls_per_func=(16, 26),    # call-heavy relative to its size
        libc_pool=("printf", "fprintf", "fopen", "fclose", "fgets",
                   "malloc", "free", "memcpy", "strtol", "exit"),
        pointer_table_entries=15,
        data_bytes=512,
        bss_bytes=131072,
    ),
    "memcached": WorkloadProfile(
        name="memcached",
        paper_name="Memcached",
        target_insns=71_437,
        n_blocks=(6, 13),
        ops_per_block=(22, 40),
        frame_slots=(4, 10),
        calls_per_func=(6, 12),
        libc_pool=_SOCKET_POOL + _MALLOC_POOL + _PTHREAD_POOL + _STRING_POOL
        + _TIME_POOL,
        address_taken=48,
        icall_sites=60,
        pointer_table_entries=20,
        data_bytes=4096,
        bss_bytes=262144,
    ),
    "netperf": WorkloadProfile(
        name="netperf",
        paper_name="Netperf",
        target_insns=51_403,
        n_blocks=(5, 12),
        ops_per_block=(18, 34),
        frame_slots=(4, 10),
        calls_per_func=(6, 12),
        libc_pool=_SOCKET_POOL + _STDIO_POOL + _TIME_POOL + ("memcpy",
                                                             "memset", "strlen"),
        address_taken=12,
        icall_sites=30,
        pointer_table_entries=250,
        data_bytes=2048,
        bss_bytes=65536,
    ),
    "otp-gen": WorkloadProfile(
        name="otp-gen",
        paper_name="Otp-gen",
        target_insns=28_125,
        n_blocks=(6, 14),
        ops_per_block=(20, 38),
        frame_slots=(6, 14),
        calls_per_func=(3, 7),
        libc_pool=("memcpy", "memset", "strlen", "printf", "snprintf",
                   "sscanf", "read", "write", "time", "rand", "exit"),
        store_bias=1,
        pointer_table_entries=30,
        data_bytes=1024,
        bss_bytes=16384,
    ),
}

#: benchmark order as it appears in the paper's tables
PAPER_BENCHMARKS = ("nginx", "bzip2", "graph500", "mcf", "memcached", "netperf", "otp-gen")

_PLAIN = CompilerFlags()
_TOLERANCE_DIVISOR = 1000  # converge to within 0.1% of the target
_MAX_CALIBRATION_ROUNDS = 10


def _generate_base(
    profile: WorkloadProfile, target: int, libc: LibcBuild, rng: HmacDrbg
) -> ProgramSpec:
    """Draw function specs until the estimated size nears the target."""
    imports = sorted(set(profile.libc_pool))
    libc_insns = sum(libc.function(n).insn_count for n in libc.closure(imports))
    budget = target - libc_insns - 16  # 16 ~ the _start stub + padding
    if budget < 200:
        raise ToolchainError(
            f"{profile.name}: target {target} leaves no room for client code"
        )

    functions: list[FunctionSpec] = []
    estimated = 0

    def est(spec: FunctionSpec) -> int:
        ops = sum(spec.ops_per_block) / 2
        calls = len(spec.direct_calls) + spec.indirect_calls * 2
        return int((spec.n_blocks * ops + calls + 10) * 1.06)

    # Giant kernels first (bzip2-style).  They scale with the *client*
    # budget so REPRO_WORKLOAD_SCALE keeps the shape, just smaller.
    full_client = max(profile.target_insns - libc_insns, 1)
    ratio = budget / full_client
    for count, blocks, ops in profile.giant_functions:
        scaled = (max(int(blocks[0] * ratio), 2), max(int(blocks[1] * ratio), 3))
        for i in range(count):
            if estimated > budget * 0.8:
                break
            spec = FunctionSpec(
                name=f"{profile.name}_kernel{i}",
                n_blocks=rng.randint(*scaled),
                ops_per_block=ops,
                frame_slots=rng.randint(*profile.frame_slots),
                direct_calls=[rng.choice(imports)
                              for _ in range(rng.randint(*profile.calls_per_func))],
                store_bias=profile.store_bias,
            )
            functions.append(spec)
            estimated += est(spec)

    # Density knobs scale with the target so small-scale builds keep the
    # benchmark's shape rather than its absolute counts.
    remaining_at = max(int(profile.address_taken * ratio), min(profile.address_taken, 2))
    remaining_icalls = max(int(profile.icall_sites * ratio), min(profile.icall_sites, 2))
    i = 0
    # Leave ~7% headroom for the calibration fillers.
    while estimated < budget * 0.93:
        n_calls = rng.randint(*profile.calls_per_func)
        callees = [rng.choice(imports) for _ in range(n_calls)]
        # some calls target earlier client functions, like real call graphs
        if functions and rng.randint(0, 2) == 0:
            callees[0] = rng.choice(functions).name
        icalls = 0
        if remaining_icalls > 0 and rng.randint(0, 3) == 0:
            icalls = min(rng.randint(1, 3), remaining_icalls)
            remaining_icalls -= icalls
        spec = FunctionSpec(
            name=f"{profile.name}_fn{i}",
            n_blocks=rng.randint(*profile.n_blocks),
            ops_per_block=profile.ops_per_block,
            frame_slots=rng.randint(*profile.frame_slots),
            direct_calls=callees,
            indirect_calls=icalls,
            address_taken=remaining_at > 0,
            store_bias=profile.store_bias,
        )
        if spec.address_taken:
            remaining_at -= 1
        functions.append(spec)
        estimated += est(spec)
        i += 1

    # main() ties a few roots together.
    roots = [f.name for f in functions[:4]]
    functions.insert(0, FunctionSpec(
        name="main",
        n_blocks=2,
        ops_per_block=(4, 8),
        frame_slots=4,
        direct_calls=roots,
        store_bias=profile.store_bias,
    ))

    data_objects = [
        DataObject(
            name=f"{profile.name}_data",
            size=max(profile.data_bytes, 8),
            init=rng.generate(min(profile.data_bytes, 256)),
        )
    ]
    if profile.pointer_table_entries:
        entries = max(int(profile.pointer_table_entries * ratio), 4)
        targets = [f.name for f in functions if f.address_taken] or roots
        data_objects.append(
            DataObject(
                name=f"{profile.name}_module_table",
                size=entries * 8,
                pointers=[
                    (8 * k, targets[k % len(targets)])
                    for k in range(entries)
                ],
            )
        )

    return ProgramSpec(
        name=profile.name,
        functions=functions,
        libc_imports=imports,
        data_objects=data_objects,
        bss_size=profile.bss_bytes,
        seed=b"paper-workload",
    )


def _calibrate(
    spec: ProgramSpec, profile: WorkloadProfile, target: int, libc: LibcBuild
) -> ProgramSpec:
    """Resize filler kernels until the plain build hits the target."""
    tolerance = max(10, target // _TOLERANCE_DIVISOR)
    filler = FunctionSpec(
        name=f"{profile.name}_fill",
        n_blocks=1,
        ops_per_block=(64, 64),
        frame_slots=max(profile.frame_slots[0], 2),
        store_bias=profile.store_bias,
    )
    spec.functions.append(filler)

    for _round in range(_MAX_CALIBRATION_ROUNDS):
        compiled = Compiler(_PLAIN).compile(spec)
        measured = link(compiled, libc).insn_count
        deficit = target - measured
        if abs(deficit) <= tolerance:
            return spec
        new_ops = filler.ops_per_block[0] + deficit
        if new_ops < 1:
            # The filler cannot shrink enough: cut whole blocks from the
            # largest function instead (block removal never invalidates
            # symbol references) and reset the filler.
            shrinkable = [
                f for f in spec.functions
                if f is not filler and f.name != "main" and f.n_blocks > 1
            ]
            if not shrinkable:
                raise ToolchainError(
                    f"{profile.name}: cannot shrink to {target} instructions"
                )
            fat = max(shrinkable, key=lambda f: f.n_blocks)
            avg_ops = max(sum(fat.ops_per_block) // 2, 1)
            cut = min(fat.n_blocks - 1, max(1, (64 - new_ops) // avg_ops + 1))
            fat.n_blocks -= cut
            new_ops = 64
        filler.ops_per_block = (new_ops, new_ops)
    raise ToolchainError(
        f"{profile.name}: calibration did not converge on {target} "
        f"(tolerance {tolerance})"
    )


_BUILD_CACHE: dict[tuple, LinkedBinary] = {}


def build_workload(
    name: str,
    *,
    stack_protector: bool = False,
    ifcc: bool = False,
    libc: LibcBuild | None = None,
    scale: float | None = None,
) -> LinkedBinary:
    """Build one paper benchmark with the requested instrumentation.

    Plain builds match Figure 3's ``#Inst`` within 0.1%; instrumented
    builds grow by the instrumentation overhead, as in Figures 4-5.
    Results are cached per (name, flags, libc version, scale).
    """
    if name not in PROFILES:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(PROFILES)}"
        )
    profile = PROFILES[name]
    libc = libc or build_libc()
    if scale is None:
        scale = float(os.environ.get("REPRO_WORKLOAD_SCALE", "1.0"))
    key = (name, stack_protector, ifcc, libc.version, scale)
    cached = _BUILD_CACHE.get(key)
    if cached is not None:
        return cached

    # The floor keeps tiny scales feasible: the retained libc plus a
    # minimum of client code.
    imports = sorted(set(profile.libc_pool))
    libc_insns = sum(libc.function(n).insn_count for n in libc.closure(imports))
    target = max(int(profile.target_insns * scale), libc_insns + 1500)
    rng = HmacDrbg(b"workload-" + name.encode())
    spec = _generate_base(profile, target, libc, rng)
    spec = _calibrate(spec, profile, target, libc)

    flags = CompilerFlags(stack_protector=stack_protector, ifcc=ifcc)
    binary = link(Compiler(flags).compile(spec), libc)
    _BUILD_CACHE[key] = binary
    return binary
