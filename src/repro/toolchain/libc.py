"""Synthetic musl-libc.

The paper's library-linking policy verifies that executables are linked
against musl-libc v1.0.5 by comparing SHA-256 hashes of every called libc
function against a golden database.  Real musl cannot be compiled here, so
this module generates a deterministic stand-in:

* function *names* are real musl exports (so workload specs read naturally),
* bodies are deterministic x86-64 generated from an HMAC-DRBG seeded by
  ``(version, name)`` — change the version string and every body (hence
  every hash) changes, exactly like a real version bump,
* every function is a **self-contained padded unit**: no calls into other
  libc functions, and its bytes are padded to a 32-byte (NaCl bundle)
  boundary.  This is the property that makes per-function hashing sound
  under link-time garbage collection: whichever subset of functions a
  binary links, each retained function's bytes — from its symbol to the
  next symbol — are identical to the golden build's.

Static linking includes only the functions a program imports
(:meth:`LibcBuild.closure`), which is how a small benchmark like 429.mcf
ends up at ~13k instructions total while Nginx carries a large libc
footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import HmacDrbg, sha256_fast
from ..x86 import Assembler, Mem
from ..x86.encoder import Enc
from ..x86.registers import R8, R9, RAX, RBP, RCX, RDI, RDX, RSI, RSP, Reg

__all__ = ["MUSL_FUNCTIONS", "LibcFunction", "LibcBuild", "build_libc", "MUSL_VERSION"]

MUSL_VERSION = "1.0.5"

# Real musl exports, grouped by subsystem.  The group determines the
# synthetic body's size class.
_STRING = [
    "memcpy", "memmove", "memset", "memcmp", "memchr", "memrchr",
    "strlen", "strnlen", "strcpy", "strncpy", "strcat", "strncat",
    "strcmp", "strncmp", "strchr", "strrchr", "strstr", "strtok",
    "strspn", "strcspn", "strpbrk", "strdup", "strndup", "strerror",
    "strcasecmp", "strncasecmp", "stpcpy", "stpncpy", "strlcpy", "strlcat",
]
_CTYPE = [
    "isalpha", "isdigit", "isalnum", "isspace", "isupper", "islower",
    "isprint", "ispunct", "isxdigit", "iscntrl", "tolower", "toupper",
]
_STDLIB = [
    "atoi", "atol", "atoll", "strtol", "strtoul", "strtoll", "strtoull",
    "strtod", "strtof", "abs", "labs", "llabs", "div", "ldiv",
    "qsort", "bsearch", "rand", "srand", "rand_r", "abort", "exit",
    "atexit", "getenv", "setenv", "unsetenv", "mkstemp", "realpath",
]
_MALLOC = [
    "malloc", "free", "calloc", "realloc", "posix_memalign",
    "aligned_alloc", "malloc_usable_size",
]
_STDIO = [
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
    "vsprintf", "vsnprintf", "puts", "fputs", "fputc", "putchar",
    "scanf", "fscanf", "sscanf", "vsscanf", "getchar", "fgetc", "fgets",
    "ungetc", "fopen", "fclose", "fflush", "fread", "fwrite", "fseek",
    "ftell", "rewind", "feof", "ferror", "clearerr", "setvbuf", "setbuf",
    "perror", "remove", "rename", "tmpfile", "fileno", "fdopen", "freopen",
]
_UNISTD = [
    "read", "write", "open", "close", "lseek", "access", "unlink",
    "getpid", "getppid", "getuid", "geteuid", "getgid", "fork", "execve",
    "pipe", "dup", "dup2", "sleep", "usleep", "isatty", "getcwd", "chdir",
    "rmdir", "mkdir", "stat", "fstat", "lstat", "chmod", "chown",
]
_SOCKET = [
    "socket", "bind", "listen", "accept", "connect", "send", "recv",
    "sendto", "recvfrom", "shutdown", "setsockopt", "getsockopt",
    "getsockname", "getpeername", "inet_addr", "inet_ntoa", "inet_pton",
    "inet_ntop", "htons", "htonl", "ntohs", "ntohl", "getaddrinfo",
    "freeaddrinfo", "gai_strerror", "gethostbyname",
]
_TIME = [
    "time", "clock", "gettimeofday", "clock_gettime", "nanosleep",
    "localtime", "gmtime", "mktime", "strftime", "asctime", "ctime",
    "difftime", "clock_getres",
]
_MATH = [
    "sqrt", "pow", "exp", "log", "log2", "log10", "sin", "cos", "tan",
    "floor", "ceil", "round", "fabs", "fmod", "frexp", "ldexp", "modf",
]
_PTHREAD = [
    "pthread_create", "pthread_join", "pthread_detach", "pthread_self",
    "pthread_mutex_init", "pthread_mutex_lock", "pthread_mutex_unlock",
    "pthread_mutex_destroy", "pthread_cond_init", "pthread_cond_wait",
    "pthread_cond_signal", "pthread_cond_broadcast", "pthread_cond_destroy",
    "pthread_key_create", "pthread_getspecific", "pthread_setspecific",
    "pthread_once", "pthread_attr_init", "pthread_attr_destroy",
]
_SIGNAL = [
    "signal", "sigaction", "sigemptyset", "sigfillset", "sigaddset",
    "sigdelset", "sigprocmask", "raise", "kill",
]
_INTERNAL = [
    "__stack_chk_fail", "__errno_location", "__libc_start_main",
    "__assert_fail", "__fwritex", "__towrite", "__toread", "__uflow",
    "__overflow", "__stdio_write", "__stdio_read", "__stdio_seek",
    "__stdio_close", "__lockfile", "__unlockfile", "__syscall_ret",
    "__memcpy_fwd", "__expand_heap", "__bin_chunk", "__malloc0",
    "__simple_malloc", "__lctrans", "__lctrans_cur", "__intscan",
    "__floatscan", "__shlim", "__shgetc", "__procfdname", "__randname",
]

#: subsystem -> (members, (min_blocks, max_blocks), (min_ops, max_ops))
#: Size classes approximate real musl: string/ctype primitives are tight
#: loops; stdio formatting and stdlib conversions are hundreds of
#: instructions (vfprintf in real musl is >2k).
_GROUPS: dict[str, tuple[list[str], tuple[int, int], tuple[int, int]]] = {
    "internal": (_INTERNAL, (1, 2), (5, 14)),
    "string": (_STRING, (2, 4), (6, 16)),
    "ctype": (_CTYPE, (1, 1), (4, 8)),
    "math": (_MATH, (2, 5), (8, 20)),
    "malloc": (_MALLOC, (4, 8), (12, 26)),
    "stdlib": (_STDLIB, (3, 8), (10, 24)),
    "stdio": (_STDIO, (6, 14), (14, 30)),
    "unistd": (_UNISTD, (1, 3), (5, 12)),
    "socket": (_SOCKET, (2, 5), (8, 18)),
    "time": (_TIME, (2, 5), (8, 18)),
    "pthread": (_PTHREAD, (2, 5), (8, 18)),
    "signal": (_SIGNAL, (1, 3), (5, 12)),
}

#: the heavyweights — these get an extra size multiplier, mirroring the
#: real functions' bulk (and making per-call-site hashing expensive, as
#: the paper's Figure 3 policy column reflects)
_BIG = {
    "printf", "fprintf", "snprintf", "vfprintf", "vsnprintf", "sprintf",
    "vsprintf", "scanf", "fscanf", "sscanf", "vsscanf",
    "qsort", "strtod", "strtof", "getaddrinfo", "malloc", "realloc",
    "strftime", "__floatscan", "__intscan", "fread", "fwrite", "fgets",
}

#: canonical link order: every musl function, in deterministic order
MUSL_FUNCTIONS: tuple[str, ...] = tuple(
    name
    for group, (members, _b, _o) in _GROUPS.items()
    for name in members
)

_SCRATCH: tuple[Reg, ...] = (RAX, RCX, RDX, RSI, RDI, R8, R9)


@dataclass(frozen=True)
class LibcFunction:
    """One compiled libc function as a self-contained padded unit.

    ``code`` always ends on a 32-byte boundary; ``insn_count`` includes
    the trailing alignment NOPs.
    """

    name: str
    code: bytes
    insn_count: int


@dataclass
class LibcBuild:
    """The full libc in canonical order, plus per-function units."""

    version: str
    functions: list[LibcFunction]
    offsets: dict[str, int]  # within the full canonical blob
    blob: bytes
    insn_count: int

    def closure(self, roots: list[str]) -> list[str]:
        """Link-time GC: the functions a binary linking *roots* retains.

        Functions are leaves (no intra-libc calls), so the closure is the
        root set itself, in canonical link order.
        """
        available = set(self.offsets)
        missing = [r for r in roots if r not in available]
        if missing:
            raise KeyError(f"not libc functions: {missing}")
        wanted = set(roots)
        return [f.name for f in self.functions if f.name in wanted]

    def function(self, name: str) -> LibcFunction:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def reference_hashes(self) -> dict[str, bytes]:
        """The golden per-function hash database for the linking policy.

        Because every function is a padded, call-free unit, its in-binary
        bytes (symbol to next symbol) equal its unit bytes regardless of
        which other functions the binary retained.
        """
        return {f.name: sha256_fast(f.code) for f in self.functions}


def _compile_leaf(
    name: str, blocks: int, ops: tuple[int, int], rng: HmacDrbg
) -> Assembler:
    """A deterministic call-free function body."""
    asm = Assembler()
    frame_slots = rng.randint(2, 8)
    frame = 8 * frame_slots

    asm.push(RBP)
    asm.mov_rr(RSP, RBP)
    asm.alu_imm("sub", frame, RSP)

    exit_label = asm.label(f".{name}.exit")
    for block in range(blocks):
        for _ in range(rng.randint(*ops)):
            _emit_random_op(asm, rng, frame_slots)
        if block < blocks - 1 and rng.randint(0, 3) == 0:
            asm.test_rr(RAX, RAX)
            asm.jcc_label("je", exit_label)
    asm.bind(exit_label)
    asm.alu_imm("add", frame, RSP)
    asm.pop(RBP)
    asm.ret()
    return asm


def _emit_random_op(asm: Assembler, rng: HmacDrbg, frame_slots: int) -> None:
    kind = rng.randint(0, 5)
    reg = rng.choice(_SCRATCH)
    other = rng.choice(_SCRATCH)
    if kind == 0:
        asm.mov_imm(rng.randint(0, 1 << 20), reg)
    elif kind == 1:
        asm.alu_rr(rng.choice(("add", "sub", "xor", "and", "or")), other, reg)
    elif kind == 2:
        slot = Mem(base=RBP, disp=-8 * rng.randint(1, frame_slots))
        asm.mov_store(reg, slot)
    elif kind == 3:
        slot = Mem(base=RBP, disp=-8 * rng.randint(1, frame_slots))
        asm.mov_load(slot, reg)
    elif kind == 4:
        asm.alu_imm(rng.choice(("add", "sub", "and")), rng.randint(1, 4095), reg)
    else:
        asm.shift_imm(rng.choice(("shl", "shr", "sar")), rng.randint(1, 31), reg)


_CACHE: dict[str, LibcBuild] = {}


def build_libc(version: str = MUSL_VERSION) -> LibcBuild:
    """Generate the canonical libc build for *version* (deterministic,
    process-cached)."""
    cached = _CACHE.get(version)
    if cached is not None:
        return cached

    drbg = HmacDrbg(f"musl-libc-{version}".encode())
    functions: list[LibcFunction] = []
    offsets: dict[str, int] = {}
    chunks: list[bytes] = []
    pos = 0
    insn_total = 0

    for group, (members, blocks_range, ops_range) in _GROUPS.items():
        for name in members:
            rng = drbg.fork(name.encode())
            blocks = rng.randint(*blocks_range)
            if name in _BIG:
                # real musl's formatted-I/O and allocator cores run to
                # thousands of instructions (vfprintf alone is >2k)
                blocks *= rng.randint(5, 8)
            asm = _compile_leaf(name, blocks, ops_range, rng)
            code = asm.finish()
            count = asm.instruction_count
            pad = (-len(code)) % 32
            if pad:
                code += Enc.nop_pad(pad)
                count += _nop_count(pad)
            functions.append(LibcFunction(name=name, code=code, insn_count=count))
            offsets[name] = pos
            chunks.append(code)
            pos += len(code)
            insn_total += count

    build = LibcBuild(
        version=version,
        functions=functions,
        offsets=offsets,
        blob=b"".join(chunks),
        insn_count=insn_total,
    )
    _CACHE[version] = build
    return build


def _nop_count(pad: int) -> int:
    full, rem = divmod(pad, 9)
    return full + (1 if rem else 0)
