"""The mini compiler: program specs -> real x86-64, with instrumentation.

Stands in for the paper's clang/LLVM 3.6 toolchain.  Two instrumentation
passes reproduce byte-exactly the idioms the policy modules look for:

* **StackProtectorPass** (``-fstack-protector-all``)::

      prologue:  mov %fs:0x28,%rax        64 48 8b 04 25 28 00 00 00
                 mov %rax,(%rsp)          48 89 04 24
      epilogue:  mov %fs:0x28,%rax
                 cmp (%rsp),%rax          48 3b 04 24
                 jne .Lchk_fail
                 ...ret...
      .Lchk_fail: callq __stack_chk_fail

* **IfccPass** (LLVM forward-edge CFI, reviews.llvm.org/D4167)::

      call site: mov  __fnptr_slot(%rip),%rcx
                 lea  __llvm_jump_instr_table_0_0(%rip),%rax
                 sub  %eax,%ecx
                 and  $<table_bytes-8>,%rcx
                 add  %rax,%rcx
                 callq *%rcx
      table:     8-byte entries of "jmpq <fn>; nopl (%rax)"

Without IFCC, indirect calls load the raw function pointer and call it.
Pointer slots live in .data and carry ``R_X86_64_RELATIVE`` relocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import HmacDrbg
from ..errors import ToolchainError
from ..x86 import Assembler, ExternalFixup, Mem
from ..x86.registers import R8, R9, RAX, RBP, RCX, RDI, RDX, RSI, RSP, Reg
from .ir import DataObject, FunctionSpec, ProgramSpec

__all__ = [
    "CompilerFlags", "CompiledFunction", "CompiledProgram", "Compiler",
    "JUMP_TABLE_PREFIX", "STACK_CHK_FAIL",
]

JUMP_TABLE_PREFIX = "__llvm_jump_instr_table_0_"
STACK_CHK_FAIL = "__stack_chk_fail"
CANARY_FS_OFFSET = 0x28

_SCRATCH: tuple[Reg, ...] = (RAX, RCX, RDX, RSI, RDI, R8, R9)


@dataclass(frozen=True)
class CompilerFlags:
    """Instrumentation switches (clang flag analogues)."""

    stack_protector: bool = False  # -fstack-protector-all
    ifcc: bool = False             # -fcfi / IFCC patch


@dataclass
class CompiledFunction:
    """One compiled text block (a function or the IFCC jump table)."""

    name: str
    code: bytes
    insn_count: int
    fixups: list[ExternalFixup] = field(default_factory=list)
    #: additional symbols inside this block: (name, offset, size)
    extra_symbols: list[tuple[str, int, int]] = field(default_factory=list)


@dataclass
class CompiledProgram:
    """Compiler output, ready for the static linker."""

    name: str
    flags: CompilerFlags
    functions: list[CompiledFunction]
    data_objects: list[DataObject]
    libc_imports: list[str]
    bss_size: int
    entry: str

    @property
    def insn_count(self) -> int:
        return sum(f.insn_count for f in self.functions)


class Compiler:
    """Compiles a :class:`~repro.toolchain.ir.ProgramSpec`."""

    def __init__(self, flags: CompilerFlags | None = None) -> None:
        self.flags = flags or CompilerFlags()

    def compile(self, program: ProgramSpec) -> CompiledProgram:
        program.validate()
        drbg = HmacDrbg(b"cc-" + program.name.encode() + program.seed)

        address_taken = [f.name for f in program.functions if f.address_taken]
        table_entries = 0
        entry_symbol_of: dict[str, str] = {}
        if self.flags.ifcc and address_taken:
            table_entries = _next_pow2(max(len(address_taken), 2))
            entry_symbol_of = {
                name: f"{JUMP_TABLE_PREFIX}{i}"
                for i, name in enumerate(address_taken)
            }
        self._table_bytes = table_entries * 8

        data_objects = list(program.data_objects)
        libc_imports = list(program.libc_imports)
        compiled: list[CompiledFunction] = []

        for spec in program.functions:
            rng = drbg.fork(spec.name.encode())
            slots = self._make_pointer_slots(
                spec, address_taken, entry_symbol_of, rng
            )
            data_objects.extend(slots)
            compiled.append(
                self._compile_function(spec, [s.name for s in slots], rng)
            )

        if self.flags.stack_protector and STACK_CHK_FAIL not in libc_imports:
            libc_imports.append(STACK_CHK_FAIL)

        if table_entries:
            if "abort" not in libc_imports:
                libc_imports.append("abort")
            compiled.append(
                self._build_jump_table(address_taken, table_entries)
            )

        if program.entry not in {f.name for f in compiled}:
            compiled.insert(0, self._build_start(program))

        return CompiledProgram(
            name=program.name,
            flags=self.flags,
            functions=compiled,
            data_objects=data_objects,
            libc_imports=libc_imports,
            bss_size=program.bss_size,
            entry=program.entry,
        )

    # ------------------------------------------------------------ pieces

    def _make_pointer_slots(
        self,
        spec: FunctionSpec,
        address_taken: list[str],
        entry_symbol_of: dict[str, str],
        rng: HmacDrbg,
    ) -> list[DataObject]:
        """One 8-byte .data slot per indirect call site."""
        slots = []
        for i in range(spec.indirect_calls):
            if not address_taken:
                raise ToolchainError(
                    f"{spec.name} has indirect calls but no address-taken "
                    "functions exist"
                )
            target_fn = rng.choice(address_taken)
            target = entry_symbol_of.get(target_fn, target_fn)
            slots.append(
                DataObject(
                    name=f"__fnptr_{spec.name}_{i}",
                    size=8,
                    pointers=[(0, target)],
                )
            )
        return slots

    def _compile_function(
        self, spec: FunctionSpec, pointer_slots: list[str], rng: HmacDrbg
    ) -> CompiledFunction:
        asm = Assembler()
        sp = self.flags.stack_protector
        frame = 8 * (spec.frame_slots + 1)  # +1 keeps (%rsp) for the canary

        # -- prologue ------------------------------------------------------
        asm.push(RBP)
        asm.mov_rr(RSP, RBP)
        asm.alu_imm("sub", frame, RSP)
        if sp:
            asm.mov_load(Mem(seg="fs", disp=CANARY_FS_OFFSET), RAX)
            asm.mov_store(RAX, Mem(base=RSP))

        # -- body ------------------------------------------------------------
        block_labels = [asm.label(f".{spec.name}.b{i}") for i in range(spec.n_blocks)]
        lo, hi = spec.ops_per_block
        call_sites = _distribute(spec.direct_calls, spec.n_blocks, rng)
        icall_sites = _distribute(list(range(spec.indirect_calls)), spec.n_blocks, rng)

        for block in range(spec.n_blocks):
            asm.bind(block_labels[block])
            for _ in range(rng.randint(lo, hi)):
                self._emit_body_op(asm, rng, spec.frame_slots, sp, spec.store_bias)
            for callee in call_sites.get(block, ()):
                asm.call_symbol(callee)
            for idx in icall_sites.get(block, ()):
                self._emit_indirect_call(asm, pointer_slots[idx])
            # Occasional forward conditional branch keeps the CFG realistic
            # without ever creating unreachable blocks (fall-through covers
            # every block).
            if block + 2 < spec.n_blocks and rng.randint(0, 2) == 0:
                target = rng.randint(block + 1, spec.n_blocks - 1)
                asm.alu_imm("cmp", rng.randint(0, 255), RAX)
                asm.jcc_label(rng.choice(("je", "jne", "jl", "jg")), block_labels[target])

        # -- epilogue ----------------------------------------------------------
        if sp:
            fail = asm.label(f".{spec.name}.chk_fail")
            asm.mov_load(Mem(seg="fs", disp=CANARY_FS_OFFSET), RAX)
            asm.alu_load("cmp", Mem(base=RSP), RAX)
            asm.jcc_label("jne", fail)
            asm.alu_imm("add", frame, RSP)
            asm.pop(RBP)
            asm.ret()
            asm.bind(fail)
            asm.call_symbol(STACK_CHK_FAIL)
            asm.ud2()  # __stack_chk_fail does not return
        else:
            asm.alu_imm("add", frame, RSP)
            asm.pop(RBP)
            asm.ret()

        return CompiledFunction(
            name=spec.name,
            code=asm.finish(),
            insn_count=asm.instruction_count,
            fixups=list(asm.external_fixups),
        )

    def _emit_body_op(
        self,
        asm: Assembler,
        rng: HmacDrbg,
        frame_slots: int,
        sp: bool,
        store_bias: int = 0,
    ) -> None:
        # Slot 0 == (%rsp) holds the canary when stack protection is on;
        # ordinary locals start one slot up (identical layout either way,
        # so instrumented and plain builds differ only by the canary code).
        first_slot = 1
        kind = rng.randint(0, 6 + store_bias)
        if kind > 6:
            kind = 2  # extra weight lands on stack stores
        reg = rng.choice(_SCRATCH)
        other = rng.choice(_SCRATCH)
        slot = Mem(base=RSP, disp=8 * rng.randint(first_slot, max(frame_slots, 1)))
        if kind == 0:
            asm.mov_imm(rng.randint(0, 1 << 16), reg)
        elif kind == 1:
            asm.alu_rr(rng.choice(("add", "sub", "xor", "and", "or")), other, reg)
        elif kind == 2:
            asm.mov_store(reg, slot)
        elif kind == 3:
            asm.mov_load(slot, reg)
        elif kind == 4:
            asm.alu_imm(rng.choice(("add", "sub", "cmp")), rng.randint(1, 1 << 12), reg)
        elif kind == 5:
            asm.imul_rr(other, reg)
        else:
            asm.shift_imm(rng.choice(("shl", "shr", "sar")), rng.randint(1, 31), reg)

    def _emit_indirect_call(self, asm: Assembler, slot_symbol: str) -> None:
        if self.flags.ifcc:
            table_base = f"{JUMP_TABLE_PREFIX}0"
            mask = self._table_bytes - 8
            asm.mov_load_symbol(slot_symbol, RCX)
            asm.lea_symbol(table_base, RAX)
            asm.alu_rr("sub", RAX.as_bits(32), RCX.as_bits(32))
            asm.alu_imm("and", mask, RCX)
            asm.alu_rr("add", RAX, RCX)
            asm.call_reg(RCX)
        else:
            asm.mov_load_symbol(slot_symbol, RCX)
            asm.call_reg(RCX)

    _table_bytes: int = 0  # set while compiling a program with IFCC

    def _build_jump_table(
        self, address_taken: list[str], table_entries: int
    ) -> CompiledFunction:
        """8-byte entries: ``jmpq <target>; nopl (%rax)``, bundle-aligned."""
        asm = Assembler(bundle=False)  # entries are exactly 8 bytes; 32-byte
        # bundles divide evenly so no entry can straddle a boundary.
        symbols: list[tuple[str, int, int]] = []
        for i in range(table_entries):
            target = address_taken[i] if i < len(address_taken) else "abort"
            symbols.append((f"{JUMP_TABLE_PREFIX}{i}", asm.offset, 8))
            asm.jmp_symbol(target)
            asm.nop(3)
        return CompiledFunction(
            # distinct from the entry-name prefix: policies and tests match
            # entries by JUMP_TABLE_PREFIX and must not see the block symbol
            name="__ifcc_jump_table_block",
            code=asm.finish(),
            insn_count=asm.instruction_count,
            fixups=list(asm.external_fixups),
            extra_symbols=symbols,
        )

    def _build_start(self, program: ProgramSpec) -> CompiledFunction:
        """Synthesise ``_start``: align the stack, call main, return."""
        if not any(f.name == "main" for f in program.functions):
            raise ToolchainError(
                f"{program.name}: no entry {program.entry!r} and no main() "
                "to synthesise one from"
            )
        asm = Assembler()
        asm.alu_imm("sub", 8, RSP)
        asm.call_symbol("main")
        asm.alu_imm("add", 8, RSP)
        asm.ret()
        return CompiledFunction(
            name=program.entry,
            code=asm.finish(),
            insn_count=asm.instruction_count,
            fixups=list(asm.external_fixups),
        )

    # `compile` wires _table_bytes before functions are compiled ------------

    def compile_with_stats(self, program: ProgramSpec) -> CompiledProgram:
        return self.compile(program)


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _distribute(items: list, n_blocks: int, rng: HmacDrbg) -> dict[int, list]:
    """Assign each item to a block (deterministically random)."""
    placed: dict[int, list] = {}
    for item in items:
        block = rng.randint(0, n_blocks - 1)
        placed.setdefault(block, []).append(item)
    return placed
