"""EnGarde: Mutually-Trusted Inspection of SGX Enclaves — reproduction.

A full Python reproduction of Nguyen & Ganapathy, ICDCS 2017, including
every substrate the paper depends on:

``repro.crypto``
    From-scratch SHA-256 / HMAC / DRBG / RSA / AES and the provisioning
    channel protocol (the OpenSSL slice of Figure 2).
``repro.x86``
    x86-64 encoder, assembler, NaCl-style decoder and structural
    validator (the NaCl disassembler of the paper).
``repro.elf``
    ELF64 writer/reader for statically-linked position-independent
    executables.
``repro.sgx``
    A software SGX machine (the OpenSGX analogue): EPC with hardware-keyed
    page encryption, enclave lifecycle + measurement, SGX2 dynamic-memory
    instructions, host OS with trampoline, EPID-style attestation, and the
    10K-cycles-per-SGX-instruction cost model.
``repro.toolchain``
    A mini compiler/linker standing in for clang/LLVM + musl: stack-
    protector and IFCC instrumentation passes, synthetic musl-libc with a
    golden hash database, and the paper's seven benchmark workloads.
``repro.core``
    EnGarde itself: the in-enclave inspection pipeline, the three policy
    modules of section 5, and the mutual-trust provisioning protocol.
``repro.harness``
    Regenerates every table/figure of the paper's evaluation.

Quickstart::

    from repro import quickstart_provision
    result = quickstart_provision()
    assert result.accepted
"""

from .core import (
    CloudProvider,
    ComplianceReport,
    EnclaveClient,
    EnGarde,
    IfccPolicy,
    InspectionOutcome,
    LibraryLinkingPolicy,
    PolicyContext,
    PolicyModule,
    PolicyRegistry,
    PolicyResult,
    ProvisioningResult,
    StackProtectionPolicy,
    expected_mrenclave,
    provision,
)
from .sgx import CostModel, CycleMeter, SgxMachine, SgxParams
from .toolchain import (
    Compiler,
    CompilerFlags,
    FunctionSpec,
    ProgramSpec,
    build_libc,
    link,
)
from .toolchain.workloads import PAPER_BENCHMARKS, build_workload

__version__ = "1.0.0"

__all__ = [
    "EnGarde", "InspectionOutcome",
    "PolicyModule", "PolicyRegistry", "PolicyResult", "PolicyContext",
    "LibraryLinkingPolicy", "StackProtectionPolicy", "IfccPolicy",
    "ComplianceReport",
    "CloudProvider", "EnclaveClient", "ProvisioningResult",
    "provision", "expected_mrenclave",
    "SgxMachine", "SgxParams", "CycleMeter", "CostModel",
    "Compiler", "CompilerFlags", "ProgramSpec", "FunctionSpec",
    "build_libc", "link", "build_workload", "PAPER_BENCHMARKS",
    "quickstart_provision",
    "__version__",
]


def quickstart_provision(benchmark: str = "mcf", scale: float = 0.05):
    """One-call demo: build a compliant workload, run the full protocol.

    Returns the :class:`~repro.core.ProvisioningResult`; see
    ``examples/quickstart.py`` for the narrated version.
    """
    from .harness import runner

    libc = build_libc()
    binary = build_workload(benchmark, libc=libc, scale=scale)
    policies = PolicyRegistry([LibraryLinkingPolicy(libc.reference_hashes())])
    provider = CloudProvider(
        policies,
        params=SgxParams(epc_pages=4096, heap_initial_pages=512),
        rsa_bits=1024,
        client_pages=max(runner._pages_for(binary) + 16, 64),
    )
    client = EnclaveClient(binary.elf, policies=policies, benchmark=benchmark)
    return provision(provider, client)
