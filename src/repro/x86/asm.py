"""Label-resolving assembler with NaCl bundle discipline.

Sits on top of :mod:`repro.x86.encoder`.  Supports:

* local labels with rel32 branch/call fixups,
* *external* fixups (symbolic calls / RIP-relative LEAs) left for the
  static linker to patch (:mod:`repro.toolchain.linker`),
* the NaCl constraint that no instruction may overlap a 32-byte bundle
  boundary — the assembler transparently inserts canonical NOPs, and
  `align()` force-starts a fresh bundle (used for function entries and
  IFCC jump tables).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import EncodeError
from .encoder import Enc
from .insn import Mem
from .registers import Reg

__all__ = ["Label", "ExternalFixup", "Assembler", "BUNDLE_SIZE"]

BUNDLE_SIZE = 32

_I32 = struct.Struct("<i")


@dataclass(eq=False)
class Label:
    """A position in the instruction stream, bound at most once."""

    name: str
    offset: int | None = None

    @property
    def bound(self) -> bool:
        return self.offset is not None


@dataclass(frozen=True)
class ExternalFixup:
    """A rel32 slot referring to a symbol resolved at link time.

    *patch_offset* is where the 4-byte rel32 lives; *next_offset* is the end
    of the instruction (x86 relative operands are relative to the *next*
    instruction); *addend* shifts the target (e.g. to address into a table).
    """

    symbol: str
    patch_offset: int
    next_offset: int
    addend: int = 0


class Assembler:
    """Emit instructions into a growing buffer, enforcing bundling."""

    def __init__(self, *, bundle: bool = True) -> None:
        self._buf = bytearray()
        self._bundle = bundle
        self._labels: list[Label] = []
        # (patch_offset, next_offset, label) triples awaiting resolution
        self._local_fixups: list[tuple[int, int, Label]] = []
        self.external_fixups: list[ExternalFixup] = []
        self.instruction_count = 0

    # ------------------------------------------------------------ basics

    @property
    def offset(self) -> int:
        return len(self._buf)

    def label(self, name: str = "") -> Label:
        lbl = Label(name or f".L{len(self._labels)}")
        self._labels.append(lbl)
        return lbl

    def bind(self, label: Label) -> None:
        if label.bound:
            raise EncodeError(f"label {label.name} bound twice")
        label.offset = self.offset

    def raw(self, data: bytes, instructions: int) -> None:
        """Append pre-encoded bytes counting as *instructions* instructions."""
        self._emit(data, count=instructions)

    def _emit(self, encoded: bytes, count: int = 1) -> None:
        if self._bundle:
            pos = len(self._buf) % BUNDLE_SIZE
            if pos + len(encoded) > BUNDLE_SIZE:
                pad = BUNDLE_SIZE - pos
                padding = Enc.nop_pad(pad)
                self._buf += padding
                self.instruction_count += _nop_count(pad)
        self._buf += encoded
        self.instruction_count += count

    def align(self, boundary: int = BUNDLE_SIZE) -> None:
        """Pad with NOPs so the next instruction starts a fresh boundary."""
        rem = len(self._buf) % boundary
        if rem:
            pad = boundary - rem
            self._buf += Enc.nop_pad(pad)
            self.instruction_count += _nop_count(pad)

    # -------------------------------------------------- data processing

    def mov_rr(self, src: Reg, dst: Reg) -> None:
        self._emit(Enc.mov_rr(src, dst))

    def mov_store(self, src: Reg, mem: Mem) -> None:
        self._emit(Enc.mov_store(src, mem))

    def mov_load(self, mem: Mem, dst: Reg) -> None:
        self._emit(Enc.mov_load(mem, dst))

    def mov_imm(self, value: int, dst: Reg) -> None:
        self._emit(Enc.mov_imm(value, dst))

    def mov_imm_store(self, value: int, mem: Mem, size: int = 64) -> None:
        self._emit(Enc.mov_imm_store(value, mem, size))

    def lea(self, mem: Mem, dst: Reg) -> None:
        self._emit(Enc.lea(mem, dst))

    def alu_rr(self, op: str, src: Reg, dst: Reg) -> None:
        self._emit(Enc.alu_rr(op, src, dst))

    def alu_store(self, op: str, src: Reg, mem: Mem) -> None:
        self._emit(Enc.alu_store(op, src, mem))

    def alu_load(self, op: str, mem: Mem, dst: Reg) -> None:
        self._emit(Enc.alu_load(op, mem, dst))

    def alu_imm(self, op: str, value: int, dst: Reg | Mem, size: int = 64) -> None:
        self._emit(Enc.alu_imm(op, value, dst, size))

    def test_rr(self, src: Reg, dst: Reg) -> None:
        self._emit(Enc.test_rr(src, dst))

    def imul_rr(self, src: Reg | Mem, dst: Reg) -> None:
        self._emit(Enc.imul_rr(src, dst))

    def shift_imm(self, op: str, amount: int, dst: Reg | Mem, size: int = 64) -> None:
        self._emit(Enc.shift_imm(op, amount, dst, size))

    def unary(self, op: str, dst: Reg | Mem, size: int = 64) -> None:
        self._emit(Enc.unary(op, dst, size))

    def push(self, reg: Reg) -> None:
        self._emit(Enc.push(reg))

    def pop(self, reg: Reg) -> None:
        self._emit(Enc.pop(reg))

    def nop(self, length: int = 1) -> None:
        self._emit(Enc.nop(length))

    def ret(self) -> None:
        self._emit(Enc.ret())

    def leave(self) -> None:
        self._emit(Enc.leave())

    def ud2(self) -> None:
        self._emit(Enc.ud2())

    # ------------------------------------------------------ control flow

    def call_label(self, label: Label) -> None:
        self._emit_rel32(b"\xe8", label)

    def jmp_label(self, label: Label) -> None:
        self._emit_rel32(b"\xe9", label)

    def jcc_label(self, cond: str, label: Label) -> None:
        encoded = Enc.jcc_rel32(cond, 0)
        self._emit_rel32(encoded[:-4], label, preencoded=True)

    def call_reg(self, reg: Reg) -> None:
        self._emit(Enc.call_rm(reg))

    def call_mem(self, mem: Mem) -> None:
        self._emit(Enc.call_rm(mem))

    def jmp_reg(self, reg: Reg) -> None:
        self._emit(Enc.jmp_rm(reg))

    def call_symbol(self, symbol: str) -> None:
        """Direct call to an external symbol (rel32 patched by the linker)."""
        self._emit_external(b"\xe8", symbol)

    def jmp_symbol(self, symbol: str) -> None:
        """Direct jump to an external symbol (used by jump-table entries)."""
        self._emit_external(b"\xe9", symbol)

    def lea_symbol(self, symbol: str, dst: Reg, addend: int = 0) -> None:
        """RIP-relative LEA of an external symbol's address into *dst*."""
        self._emit_rip_operand(Enc.lea(Mem(rip_relative=True, disp=0), dst), symbol, addend)

    def mov_load_symbol(self, symbol: str, dst: Reg, addend: int = 0) -> None:
        """RIP-relative load of an external symbol's 8-byte value into *dst*."""
        self._emit_rip_operand(
            Enc.mov_load(Mem(rip_relative=True, disp=0), dst), symbol, addend
        )

    def mov_store_symbol(self, src: Reg, symbol: str, addend: int = 0) -> None:
        """RIP-relative store of *src* into an external symbol's 8-byte slot."""
        self._emit_rip_operand(
            Enc.mov_store(src, Mem(rip_relative=True, disp=0)), symbol, addend
        )

    def _emit_rip_operand(self, encoded: bytes, symbol: str, addend: int) -> None:
        # rel32 is the trailing 4 bytes of a RIP-relative encoding with no
        # immediate (lea/mov reg forms only).
        self._reserve_bundle(len(encoded))
        patch = len(self._buf) + len(encoded) - 4
        self._buf += encoded
        self.instruction_count += 1
        self.external_fixups.append(
            ExternalFixup(symbol, patch, len(self._buf), addend)
        )

    def _emit_rel32(self, opcode: bytes, label: Label, preencoded: bool = False) -> None:
        total = len(opcode) + 4
        self._reserve_bundle(total)
        patch = len(self._buf) + len(opcode)
        self._buf += opcode + b"\x00\x00\x00\x00"
        self.instruction_count += 1
        self._local_fixups.append((patch, len(self._buf), label))

    def _emit_external(self, opcode: bytes, symbol: str) -> None:
        total = len(opcode) + 4
        self._reserve_bundle(total)
        patch = len(self._buf) + len(opcode)
        self._buf += opcode + b"\x00\x00\x00\x00"
        self.instruction_count += 1
        self.external_fixups.append(ExternalFixup(symbol, patch, len(self._buf)))

    def _reserve_bundle(self, length: int) -> None:
        if self._bundle:
            pos = len(self._buf) % BUNDLE_SIZE
            if pos + length > BUNDLE_SIZE:
                pad = BUNDLE_SIZE - pos
                self._buf += Enc.nop_pad(pad)
                self.instruction_count += _nop_count(pad)

    # ------------------------------------------------------------ output

    def finish(self) -> bytes:
        """Resolve local fixups and return the encoded bytes.

        External fixups remain in :attr:`external_fixups`; the linker
        rebases their offsets and patches them after layout.
        """
        for patch, next_off, label in self._local_fixups:
            if not label.bound:
                raise EncodeError(f"unbound label {label.name}")
            rel = label.offset - next_off
            self._buf[patch:patch + 4] = _I32.pack(rel)
        return bytes(self._buf)


def _nop_count(pad: int) -> int:
    """Number of NOP instructions `Enc.nop_pad` emits for *pad* bytes."""
    full, rem = divmod(pad, 9)
    return full + (1 if rem else 0)
