"""x86-64 register model.

Registers are identified by their hardware number (0-15) plus a width in
bits.  The encoder uses the number directly in ModRM/SIB fields and sets the
relevant REX extension bits for numbers >= 8; the decoder reverses this.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Reg", "GPR64", "GPR32",
    "RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI",
    "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D",
    "reg_name", "reg_by_name",
]


@dataclass(frozen=True)
class Reg:
    """A general-purpose register: hardware number + operand width."""

    num: int
    bits: int  # 64 or 32

    def __post_init__(self) -> None:
        if not 0 <= self.num <= 15:
            raise ValueError(f"register number out of range: {self.num}")
        if self.bits not in (32, 64):
            raise ValueError(f"unsupported register width: {self.bits}")

    @property
    def name(self) -> str:
        return reg_name(self.num, self.bits)

    @property
    def needs_rex_bit(self) -> bool:
        return self.num >= 8

    @property
    def low3(self) -> int:
        """The low 3 bits used in ModRM/SIB fields."""
        return self.num & 0b111

    def as_bits(self, bits: int) -> "Reg":
        """The same hardware register at a different width."""
        return Reg(self.num, bits)

    def __repr__(self) -> str:
        return f"%{self.name}"


_NAMES64 = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
_NAMES32 = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
)


def reg_name(num: int, bits: int) -> str:
    """AT&T-style register name for a (number, width) pair."""
    table = _NAMES64 if bits == 64 else _NAMES32
    return table[num]


def reg_by_name(name: str) -> Reg:
    """Look up a register by its AT&T name (without the % sigil)."""
    name = name.lstrip("%").lower()
    if name in _NAMES64:
        return Reg(_NAMES64.index(name), 64)
    if name in _NAMES32:
        return Reg(_NAMES32.index(name), 32)
    raise KeyError(f"unknown register {name!r}")


GPR64 = tuple(Reg(i, 64) for i in range(16))
GPR32 = tuple(Reg(i, 32) for i in range(16))

(RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
 R8, R9, R10, R11, R12, R13, R14, R15) = GPR64
(EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI,
 R8D, R9D, R10D, R11D, R12D, R13D, R14D, R15D) = GPR32
