"""An x86-64 interpreter over the supported ISA subset.

The paper stops at *static* inspection ("One can also imagine an
extension of EnGarde that instruments client code to enforce policies at
runtime...", section 1).  This interpreter is that extension's substrate:
it executes the machine code our toolchain emits — inside the simulated
enclave, against EPC-permission-checked memory — so the loaded client
image genuinely *runs*, stack canaries genuinely trip, and IFCC masking
genuinely confines corrupted function pointers.

The interpreter is memory-agnostic: callers supply a :class:`MemoryBus`
(the enclave adapter lives in :mod:`repro.core.runtime`).  Execution is
fuel-limited and single-threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..errors import DecodeError, ReproError
from .decoder import decode_one
from .insn import Imm, Instruction, Mem
from .registers import Reg

__all__ = [
    "MemoryBus", "CpuState", "Interpreter", "ExecutionFault",
    "FuelExhausted", "HaltExecution", "HALT_ADDRESS",
]

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

#: return address that terminates execution (planted at the stack top)
HALT_ADDRESS = 0


class ExecutionFault(ReproError):
    """The simulated CPU faulted (bad fetch, bad access, ud2...)."""


class FuelExhausted(ExecutionFault):
    """The instruction budget ran out (runaway guard)."""


class HaltExecution(Exception):
    """Raised by hooks to stop execution deliberately (not an error)."""

    def __init__(self, reason: str = "halt") -> None:
        super().__init__(reason)
        self.reason = reason


class MemoryBus(Protocol):
    """What the interpreter needs from its environment."""

    def read(self, addr: int, size: int) -> bytes: ...

    def write(self, addr: int, data: bytes) -> None: ...

    def fetch(self, addr: int, size: int) -> bytes: ...


@dataclass
class CpuState:
    """Architectural state: 16 GPRs, RIP, and the arithmetic flags."""

    regs: list[int] = field(default_factory=lambda: [0] * 16)
    rip: int = 0
    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False

    def get(self, reg: Reg) -> int:
        value = self.regs[reg.num]
        return value & (_MASK32 if reg.bits == 32 else _MASK64)

    def set(self, reg: Reg, value: int) -> None:
        # 32-bit writes zero-extend to 64 bits (x86-64 semantics).
        if reg.bits == 32:
            self.regs[reg.num] = value & _MASK32
        else:
            self.regs[reg.num] = value & _MASK64

    @property
    def rsp(self) -> int:
        return self.regs[4]

    @rsp.setter
    def rsp(self, value: int) -> None:
        self.regs[4] = value & _MASK64


def _signed(value: int, bits: int) -> int:
    sign_bit = 1 << (bits - 1)
    return (value & ((1 << bits) - 1)) - ((value & sign_bit) << 1)


class Interpreter:
    """Executes decoded instructions against a :class:`MemoryBus`.

    *hooks* maps absolute addresses to callables invoked when RIP reaches
    them *instead of* executing — the runtime layer uses this to intercept
    ``__stack_chk_fail``/``abort``/``exit`` and to stub host services.  A
    hook returning ``None`` behaves like a ``ret``; it may also raise
    :class:`HaltExecution`.
    """

    def __init__(
        self,
        memory: MemoryBus,
        *,
        fs_base_read: Callable[[int, int], bytes] | None = None,
        hooks: dict[int, Callable[["Interpreter"], None]] | None = None,
        fuel: int = 1_000_000,
    ) -> None:
        self.memory = memory
        self.state = CpuState()
        self.hooks = hooks or {}
        self.fuel = fuel
        self.executed = 0
        # %fs-segment reads (the canary) come from thread-local storage,
        # which is not part of the loaded image; the runtime supplies it.
        self._fs_read = fs_base_read or (lambda off, size: b"\x00" * size)
        self.call_depth = 0

    # ------------------------------------------------------------ driver

    def run(self, entry: int, stack_top: int) -> CpuState:
        """Execute from *entry* until the HALT return address pops."""
        state = self.state
        state.rip = entry
        state.rsp = stack_top
        # Plant the sentinel return address.
        self.memory.write(stack_top, HALT_ADDRESS.to_bytes(8, "little"))
        try:
            while True:
                self.step()
        except HaltExecution:
            pass
        return state

    def step(self) -> Instruction | None:
        """Fetch, decode, and execute one instruction."""
        if self.executed >= self.fuel:
            raise FuelExhausted(
                f"fuel exhausted after {self.executed} instructions "
                f"at rip={self.state.rip:#x}"
            )
        rip = self.state.rip
        if rip == HALT_ADDRESS:
            raise HaltExecution("returned to runtime")

        hook = self.hooks.get(rip)
        if hook is not None:
            self.executed += 1
            hook(self)
            self._do_ret()  # hooks behave like functions that return
            return None

        window = self.memory.fetch(rip, 15)
        try:
            insn = decode_one(window, 0)
        except DecodeError as exc:
            raise ExecutionFault(f"decode fault at {rip:#x}: {exc}") from exc
        self.executed += 1
        self.state.rip = rip + insn.length
        self._execute(insn, rip)
        return insn

    # --------------------------------------------------------- operands

    def _ea(self, mem: Mem, insn_end: int) -> int:
        if mem.seg == "fs":
            raise ExecutionFault("fs-relative effective address has no linear form")
        if mem.rip_relative:
            return (insn_end + mem.disp) & _MASK64
        addr = mem.disp
        if mem.base is not None:
            addr += self.state.regs[mem.base.num]
        if mem.index is not None:
            addr += self.state.regs[mem.index.num] * mem.scale
        return addr & _MASK64

    def _load(self, op, size_bits: int, insn_end: int) -> int:
        if isinstance(op, Reg):
            return self.state.get(op)
        if isinstance(op, Imm):
            return op.value & (_MASK32 if size_bits == 32 else _MASK64)
        if isinstance(op, Mem):
            nbytes = size_bits // 8
            if op.seg == "fs":
                raw = self._fs_read(op.disp, nbytes)
            else:
                raw = self.memory.read(self._ea(op, insn_end), nbytes)
            return int.from_bytes(raw, "little")
        raise ExecutionFault(f"unsupported operand {op!r}")

    def _store(self, op, value: int, size_bits: int, insn_end: int) -> None:
        if isinstance(op, Reg):
            self.state.set(op, value)
            return
        if isinstance(op, Mem):
            nbytes = size_bits // 8
            value &= (1 << size_bits) - 1
            self.memory.write(self._ea(op, insn_end), value.to_bytes(nbytes, "little"))
            return
        raise ExecutionFault(f"cannot store to {op!r}")

    @staticmethod
    def _width(insn: Instruction) -> int:
        for op in insn.operands:
            if isinstance(op, Reg):
                return op.bits
        return 64

    # ------------------------------------------------------------ flags

    def _set_logic_flags(self, result: int, bits: int) -> None:
        s = self.state
        result &= (1 << bits) - 1
        s.zf = result == 0
        s.sf = bool(result >> (bits - 1))
        s.cf = False
        s.of = False

    def _set_add_flags(self, a: int, b: int, bits: int) -> int:
        mask = (1 << bits) - 1
        result = (a + b) & mask
        s = self.state
        s.zf = result == 0
        s.sf = bool(result >> (bits - 1))
        s.cf = (a + b) > mask
        s.of = (_signed(a, bits) + _signed(b, bits)) != _signed(result, bits)
        return result

    def _set_sub_flags(self, a: int, b: int, bits: int) -> int:
        """flags and result of a - b."""
        mask = (1 << bits) - 1
        result = (a - b) & mask
        s = self.state
        s.zf = result == 0
        s.sf = bool(result >> (bits - 1))
        s.cf = a < b  # unsigned borrow
        s.of = (_signed(a, bits) - _signed(b, bits)) != _signed(result, bits)
        return result

    def _cond(self, mnemonic: str) -> bool:
        s = self.state
        table = {
            "jo": s.of, "jno": not s.of,
            "jb": s.cf, "jae": not s.cf,
            "je": s.zf, "jne": not s.zf,
            "jbe": s.cf or s.zf, "ja": not (s.cf or s.zf),
            "js": s.sf, "jns": not s.sf,
            "jp": False, "jnp": True,  # parity untracked; deterministic
            "jl": s.sf != s.of, "jge": s.sf == s.of,
            "jle": s.zf or (s.sf != s.of), "jg": not s.zf and s.sf == s.of,
        }
        try:
            return table[mnemonic]
        except KeyError:
            raise ExecutionFault(f"unknown condition {mnemonic}") from None

    # ------------------------------------------------------ stack helpers

    def _push(self, value: int) -> None:
        self.state.rsp = (self.state.rsp - 8) & _MASK64
        self.memory.write(self.state.rsp, (value & _MASK64).to_bytes(8, "little"))

    def _pop(self) -> int:
        value = int.from_bytes(self.memory.read(self.state.rsp, 8), "little")
        self.state.rsp = (self.state.rsp + 8) & _MASK64
        return value

    def _do_ret(self) -> None:
        self.state.rip = self._pop()
        self.call_depth -= 1
        if self.state.rip == HALT_ADDRESS:
            raise HaltExecution("returned to runtime")

    # ---------------------------------------------------------- execute

    def _execute(self, insn: Instruction, rip: int) -> None:
        m = insn.mnemonic
        end = rip + insn.length
        s = self.state

        if m in ("nop", "nopl"):
            return
        if m == "mov":
            src, dst = insn.operands
            bits = self._width(insn)
            self._store(dst, self._load(src, bits, end), bits, end)
            return
        if m == "lea":
            mem, dst = insn.operands
            s.set(dst, self._ea(mem, end))
            return
        if m.startswith("cmov"):
            src, dst = insn.operands
            bits = self._width(insn)
            if self._cond("j" + m[4:]):
                self._store(dst, self._load(src, bits, end), bits, end)
            elif bits == 32 and isinstance(dst, Reg):
                # cmov always zero-extends the (unchanged) 32-bit dest
                s.set(dst, s.get(dst))
            return
        if m == "xchg":
            a, b = insn.operands
            bits = self._width(insn)
            va = self._load(a, bits, end)
            vb = self._load(b, bits, end)
            self._store(a, vb, bits, end)
            self._store(b, va, bits, end)
            return
        if m == "movsxd":
            src, dst = insn.operands
            value = _signed(self._load(src, 32, end), 32)
            s.set(dst, value & _MASK64)
            return
        if m in ("add", "sub", "and", "or", "xor", "adc", "sbb"):
            src, dst = insn.operands
            bits = self._width(insn)
            a = self._load(dst, bits, end)
            b = self._load(src, bits, end)
            if m == "add":
                result = self._set_add_flags(a, b, bits)
            elif m == "sub":
                result = self._set_sub_flags(a, b, bits)
            elif m == "adc":
                result = self._set_add_flags(a, (b + s.cf) & ((1 << bits) - 1), bits)
            elif m == "sbb":
                result = self._set_sub_flags(a, (b + s.cf) & ((1 << bits) - 1), bits)
            else:
                result = {"and": a & b, "or": a | b, "xor": a ^ b}[m]
                self._set_logic_flags(result, bits)
            self._store(dst, result, bits, end)
            return
        if m == "cmp":
            src, dst = insn.operands
            bits = self._width(insn)
            self._set_sub_flags(
                self._load(dst, bits, end), self._load(src, bits, end), bits
            )
            return
        if m == "test":
            src, dst = insn.operands
            bits = self._width(insn)
            self._set_logic_flags(
                self._load(dst, bits, end) & self._load(src, bits, end), bits
            )
            return
        if m == "imul":
            if len(insn.operands) == 2:
                src, dst = insn.operands
                bits = self._width(insn)
                result = (_signed(self._load(dst, bits, end), bits)
                          * _signed(self._load(src, bits, end), bits))
                self._set_logic_flags(result & ((1 << bits) - 1), bits)
                self._store(dst, result, bits, end)
                return
            raise ExecutionFault("one-operand imul unsupported")
        if m in ("shl", "shr", "sar"):
            amount_op, dst = insn.operands
            bits = self._width(insn)
            amount = self._load(amount_op, 8, end) & (bits - 1)
            value = self._load(dst, bits, end)
            if m == "shl":
                result = (value << amount) & ((1 << bits) - 1)
            elif m == "shr":
                result = value >> amount
            else:
                result = (_signed(value, bits) >> amount) & ((1 << bits) - 1)
            self._set_logic_flags(result, bits)
            self._store(dst, result, bits, end)
            return
        if m in ("inc", "dec"):
            (dst,) = insn.operands
            bits = self._width(insn)
            value = self._load(dst, bits, end)
            delta = 1 if m == "inc" else -1
            carry = s.cf  # inc/dec preserve CF
            result = (self._set_add_flags(value, delta & ((1 << bits) - 1), bits)
                      if m == "inc" else self._set_sub_flags(value, 1, bits))
            s.cf = carry
            self._store(dst, result, bits, end)
            return
        if m in ("neg", "not"):
            (dst,) = insn.operands
            bits = self._width(insn)
            value = self._load(dst, bits, end)
            if m == "neg":
                result = self._set_sub_flags(0, value, bits)
            else:
                result = (~value) & ((1 << bits) - 1)
            self._store(dst, result, bits, end)
            return
        if m == "push":
            (src,) = insn.operands
            self._push(self._load(src, 64, end))
            return
        if m == "pop":
            (dst,) = insn.operands
            self._store(dst, self._pop(), 64, end)
            return
        if m == "leave":
            s.rsp = s.regs[5]  # mov %rbp,%rsp
            s.regs[5] = self._pop()
            return
        if m == "callq":
            target = (insn.target if insn.target is not None
                      else self._load(insn.operands[0], 64, end))
            # relative targets were decoded text-relative; the runtime
            # rebases decode offsets by fetching at absolute rip, so
            # insn.target here is already absolute (offset 0 fetch base).
            if insn.target is not None:
                target = rip + (insn.target - insn.offset)
            self._push(s.rip)
            self.call_depth += 1
            hook = self.hooks.get(target)
            if hook is not None:
                hook(self)
                self._do_ret()
                return
            s.rip = target
            return
        if m == "jmpq":
            if insn.target is not None:
                s.rip = rip + (insn.target - insn.offset)
            else:
                s.rip = self._load(insn.operands[0], 64, end)
            return
        if m in ("ret", "retq"):
            self._do_ret()
            return
        if m.startswith("j"):
            if insn.target is None:
                raise ExecutionFault(f"conditional branch without target at {rip:#x}")
            if self._cond(m):
                s.rip = rip + (insn.target - insn.offset)
            return
        if m == "ud2":
            raise ExecutionFault(f"ud2 executed at {rip:#x}")
        if m == "int3":
            raise ExecutionFault(f"breakpoint trap at {rip:#x}")
        if m == "hlt":
            raise ExecutionFault(f"hlt in user code at {rip:#x}")
        if m == "syscall":
            raise ExecutionFault(
                f"syscall at {rip:#x}: enclave code cannot invoke OS services"
            )
        if m in ("mul", "div", "idiv"):
            raise ExecutionFault(f"{m} unsupported by this interpreter")
        raise ExecutionFault(f"unimplemented mnemonic {m!r} at {rip:#x}")
