"""Decoded-instruction representation.

Mirrors the metadata NaCl's disassembler attaches to each instruction (the
paper, section 4 "Binary Disassembly": "the number of prefix bytes, number
of opcode bytes and number of displacement bytes").  Policy modules consume
these records, so the fields favour queryability over compactness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .registers import Reg, reg_name

__all__ = ["Mem", "Imm", "Instruction", "Operand"]

# Segment override markers (we only model %fs and %gs, which is all the
# stack-protector idiom needs).
SEG_FS = "fs"
SEG_GS = "gs"


@dataclass(frozen=True)
class Mem:
    """A memory operand: seg:[base + index*scale + disp] or RIP-relative."""

    base: Reg | None = None
    index: Reg | None = None
    scale: int = 1
    disp: int = 0
    seg: str | None = None  # "fs", "gs", or None
    rip_relative: bool = False

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")
        if self.rip_relative and (self.base or self.index):
            raise ValueError("RIP-relative addressing takes no base/index")

    def __str__(self) -> str:
        prefix = f"%{self.seg}:" if self.seg else ""
        disp = f"{self.disp:#x}" if self.disp else ""
        if self.rip_relative:
            return f"{prefix}{disp}(%rip)"
        parts = ""
        if self.base is not None:
            parts += f"%{self.base.name}"
        if self.index is not None:
            parts += f",%{self.index.name},{self.scale}"
        if parts:
            return f"{prefix}{disp}({parts})"
        return f"{prefix}{disp or '0x0'}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand with its encoded width in bytes."""

    value: int
    size: int  # 1, 2, 4, or 8 bytes as encoded

    def __str__(self) -> str:
        return f"${self.value:#x}"


Operand = Reg | Mem | Imm


@dataclass(frozen=True)
class Instruction:
    """One decoded x86-64 instruction.

    *operands* are in AT&T order (source first, destination last) to match
    the listings in the paper.  Branch-like instructions store their decoded
    absolute *target* when it is statically known (rel8/rel32 forms).
    """

    offset: int               # address relative to the text-section start
    raw: bytes                # the exact encoded bytes
    mnemonic: str             # e.g. "mov", "callq", "jne"
    operands: tuple[Operand, ...] = ()
    #: NaCl-style byte-structure metadata
    num_prefix_bytes: int = 0
    num_opcode_bytes: int = 1
    num_displacement_bytes: int = 0
    num_immediate_bytes: int = 0
    has_modrm: bool = False
    #: statically-known absolute branch/call target (text-relative), or None
    target: int | None = None

    @property
    def length(self) -> int:
        return len(self.raw)

    @property
    def end(self) -> int:
        return self.offset + len(self.raw)

    # -- classification helpers used by the policy modules ---------------

    @property
    def is_direct_call(self) -> bool:
        return self.mnemonic == "callq" and self.target is not None

    @property
    def is_indirect_call(self) -> bool:
        return self.mnemonic == "callq" and self.target is None

    @property
    def is_direct_jump(self) -> bool:
        return self.mnemonic in ("jmp", "jmpq") and self.target is not None

    @property
    def is_indirect_jump(self) -> bool:
        return self.mnemonic in ("jmp", "jmpq") and self.target is None

    @property
    def is_conditional_branch(self) -> bool:
        return self.mnemonic.startswith("j") and self.mnemonic not in ("jmp", "jmpq")

    @property
    def is_return(self) -> bool:
        return self.mnemonic in ("ret", "retq")

    @property
    def is_terminator(self) -> bool:
        """True if control never falls through to the next instruction."""
        return self.is_return or self.mnemonic in ("jmp", "jmpq", "ud2", "hlt")

    @property
    def is_control_transfer(self) -> bool:
        return (
            self.mnemonic in ("callq", "jmp", "jmpq", "ret", "retq")
            or self.is_conditional_branch
        )

    def reads_fs_offset(self, disp: int) -> bool:
        """True if any memory operand reads %fs:disp (stack-canary idiom)."""
        return any(
            isinstance(op, Mem) and op.seg == "fs" and op.disp == disp
            and op.base is None and op.index is None
            for op in self.operands
        )

    def memory_operand(self) -> Mem | None:
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    def __str__(self) -> str:
        ops = ", ".join(self._fmt(op) for op in self.operands)
        text = f"{self.offset:#x}: {self.mnemonic}"
        if ops:
            text += f" {ops}"
        if self.target is not None:
            text += f" -> {self.target:#x}"
        return text

    @staticmethod
    def _fmt(op: Operand) -> str:
        if isinstance(op, Reg):
            return f"%{reg_name(op.num, op.bits)}"
        return str(op)
