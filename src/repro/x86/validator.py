"""NaCl-style structural validation of disassembled code.

The paper (section 3) lists the constraints NaCl's disassembler imposes and
EnGarde inherits:

* no instruction may overlap a 32-byte boundary,
* all control transfers must target valid instruction starts,
* all valid instructions must be reachable from the start address.

`validate` enforces all three over a decoded instruction list.  Reachability
treats the entry point plus any caller-supplied *roots* (function symbols,
relocation targets — e.g. IFCC jump-table entries reached only through
indirect calls) as sources, and propagates through fall-through edges and
direct branch/call targets.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable

from ..errors import ValidationError
from .asm import BUNDLE_SIZE
from .insn import Instruction

__all__ = [
    "validate",
    "validate_fast",
    "check_bundles",
    "check_targets",
    "check_reachability",
    "check_reachability_fast",
]


def check_bundles(instructions: list[Instruction], bundle_size: int = BUNDLE_SIZE) -> None:
    """Reject any instruction overlapping a *bundle_size*-byte boundary."""
    for insn in instructions:
        first_bundle = insn.offset // bundle_size
        last_bundle = (insn.end - 1) // bundle_size
        if first_bundle != last_bundle:
            raise ValidationError(
                f"instruction at {insn.offset:#x} ({insn.mnemonic}, "
                f"{insn.length} bytes) overlaps a {bundle_size}-byte boundary"
            )


def check_targets(
    instructions: list[Instruction],
    starts: "set[int] | None" = None,
) -> set[int]:
    """Check all static branch targets land on instruction starts.

    Returns the set of valid instruction-start offsets for reuse.  Pass a
    precomputed *starts* set (or dict keyed by offset) to skip rebuilding
    it.
    """
    if starts is None:
        starts = {insn.offset for insn in instructions}
    for insn in instructions:
        if insn.target is None:
            continue
        if insn.target not in starts:
            raise ValidationError(
                f"{insn.mnemonic} at {insn.offset:#x} targets {insn.target:#x}, "
                "which is not a valid instruction start"
            )
    return starts


def check_reachability(
    instructions: list[Instruction],
    entry: int = 0,
    roots: Iterable[int] = (),
    by_offset: "dict[int, int] | None" = None,
) -> None:
    """Check every instruction is reachable from *entry* or a root.

    NOP padding inserted for bundle alignment after an unconditional
    terminator is exempt (it can never execute, and compilers routinely
    emit it); everything else must be reachable.  Pass a precomputed
    offset->index map as *by_offset* to skip rebuilding it.
    """
    if by_offset is None:
        by_offset = {insn.offset: i for i, insn in enumerate(instructions)}
    if entry not in by_offset and instructions:
        raise ValidationError(f"entry point {entry:#x} is not an instruction start")

    reachable = [False] * len(instructions)
    stack = []
    for origin in [entry, *roots]:
        idx = by_offset.get(origin)
        if idx is None:
            raise ValidationError(f"root {origin:#x} is not an instruction start")
        stack.append(idx)

    while stack:
        idx = stack.pop()
        if idx >= len(instructions) or reachable[idx]:
            continue
        reachable[idx] = True
        insn = instructions[idx]
        if insn.target is not None:
            tgt = by_offset.get(insn.target)
            if tgt is not None and not reachable[tgt]:
                stack.append(tgt)
        if not insn.is_terminator and idx + 1 < len(instructions):
            if not reachable[idx + 1]:
                stack.append(idx + 1)

    for idx, insn in enumerate(instructions):
        if reachable[idx]:
            continue
        if insn.mnemonic in ("nop", "nopl"):
            continue  # dead alignment padding
        raise ValidationError(
            f"unreachable instruction at {insn.offset:#x} ({insn.mnemonic})"
        )


def check_reachability_fast(
    instructions: list[Instruction],
    entry: int,
    roots: Iterable[int],
    by_offset: dict[int, int],
    term_idx: list[int],
    branch_idx: list[int],
) -> None:
    """Interval-based reachability, behaviourally identical to
    :func:`check_reachability`.

    Fall-through chains are contiguous index runs ending at the next
    terminator, so instead of pushing successors one instruction at a time
    the worklist marks whole ``[idx, next_terminator]`` spans with a single
    ``bytearray`` slice-assign and enqueues only the branch targets inside
    the span.  Requires the sorted index lists the streamed prescan
    collects: *term_idx* (terminator instructions) and *branch_idx*
    (instructions with a static target).  Error messages and the
    first-offender ordering match the reference pass exactly.
    """
    n = len(instructions)
    if entry not in by_offset and instructions:
        raise ValidationError(f"entry point {entry:#x} is not an instruction start")

    covered = bytearray(n)
    stack = []
    for origin in [entry, *roots]:
        idx = by_offset.get(origin)
        if idx is None:
            raise ValidationError(f"root {origin:#x} is not an instruction start")
        stack.append(idx)

    nterm = len(term_idx)
    nbranch = len(branch_idx)
    while stack:
        idx = stack.pop()
        if idx >= n or covered[idx]:
            continue
        j = bisect_left(term_idx, idx)
        span_end = term_idx[j] if j < nterm else n - 1
        covered[idx:span_end + 1] = b"\x01" * (span_end + 1 - idx)
        k = bisect_left(branch_idx, idx)
        while k < nbranch and branch_idx[k] <= span_end:
            tgt = by_offset.get(instructions[branch_idx[k]].target)
            if tgt is not None and not covered[tgt]:
                stack.append(tgt)
            k += 1

    if covered.count(0):
        for idx, flag in enumerate(covered):
            if flag:
                continue
            insn = instructions[idx]
            if insn.mnemonic in ("nop", "nopl"):
                continue  # dead alignment padding
            raise ValidationError(
                f"unreachable instruction at {insn.offset:#x} ({insn.mnemonic})"
            )


def validate(
    instructions: list[Instruction],
    *,
    entry: int = 0,
    roots: Iterable[int] = (),
    bundle_size: int = BUNDLE_SIZE,
) -> None:
    """Run all three NaCl constraints; raises :class:`ValidationError`."""
    if not instructions:
        raise ValidationError("empty instruction stream")
    check_bundles(instructions, bundle_size)
    # The offset->index map serves both as the target start-set and the
    # reachability index — built once for the whole validation.
    by_offset = {insn.offset: i for i, insn in enumerate(instructions)}
    check_targets(instructions, by_offset.keys())
    check_reachability(instructions, entry, roots, by_offset)


def validate_fast(
    instructions: list[Instruction],
    *,
    entry: int = 0,
    roots: Iterable[int] = (),
    bundle_size: int = BUNDLE_SIZE,
    by_offset: dict[int, int],
    bundle_violation: tuple[int, str, int] | None,
    branch_idx: list[int],
    term_idx: list[int],
) -> None:
    """:func:`validate` over prescan artifacts collected during streaming.

    The streamed decode loop already walked every instruction once, so the
    three constraint passes reuse its byproducts instead of rescanning:
    the first bundle offender (recorded, not raised, during decode — decode
    errors must keep precedence exactly as in the phased order), the sorted
    branch/terminator index lists, and the offset->index map.  Check order
    and every error message match :func:`validate`.
    """
    if not instructions:
        raise ValidationError("empty instruction stream")
    if bundle_violation is not None:
        offset, mnemonic, length = bundle_violation
        raise ValidationError(
            f"instruction at {offset:#x} ({mnemonic}, "
            f"{length} bytes) overlaps a {bundle_size}-byte boundary"
        )
    for i in branch_idx:
        insn = instructions[i]
        if insn.target not in by_offset:
            raise ValidationError(
                f"{insn.mnemonic} at {insn.offset:#x} targets {insn.target:#x}, "
                "which is not a valid instruction start"
            )
    check_reachability_fast(
        instructions, entry, roots, by_offset, term_idx, branch_idx
    )
