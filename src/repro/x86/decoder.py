"""Table-driven x86-64 decoder (the NaCl-style disassembler core).

Decodes the same byte sequences the encoder produces — plus anything else
within the supported subset — into :class:`~repro.x86.insn.Instruction`
records carrying NaCl-style metadata (prefix/opcode/displacement/immediate
byte counts).  Used by EnGarde's in-enclave disassembly stage.

Unknown opcodes raise :class:`~repro.errors.DecodeError`; EnGarde converts
that into a rejection of the client's binary, exactly as NaCl's validator
rejects binaries it cannot disassemble unambiguously.

This is the hot path of the whole inspection pipeline, so the decode loop
is engineered accordingly:

* opcode selection is a 256-entry handler dispatch table (plus a second
  table for the ``0F`` page) built once at import, not a sequential
  if/elif chain walked per instruction;
* :func:`iter_decode` drives a single resumable cursor across the region
  instead of re-slicing and re-bounds-checking from scratch per
  instruction;
* register operands come from the interned :data:`~repro.x86.registers.GPR64`
  / :data:`~repro.x86.registers.GPR32` banks instead of fresh ``Reg``
  allocations.

The pre-optimization decoder is preserved verbatim in
:mod:`repro.x86.refdecode`; differential tests assert both produce
identical instruction streams and identical error messages.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from ..errors import DecodeError
from .insn import Imm, Instruction, Mem
from .opcodes import (
    CC_BY_CODE,
    GROUP1,
    GROUP2,
    GROUP3,
    GROUP5,
    PREFIX_FS,
    PREFIX_GS,
    PREFIX_OPSIZE,
)
from .registers import GPR32, GPR64, Reg

__all__ = [
    "decode_one", "decode_all", "decode_extent", "iter_decode",
    "StreamDecoder",
]

_I8 = struct.Struct("<b").unpack_from
_I32 = struct.Struct("<i").unpack_from
_I64 = struct.Struct("<q").unpack_from

# ALU opcodes of the 0x01/0x03 families, derived from the group table.
_ALU_MR = {i * 8 + 0x01: name for i, name in enumerate(GROUP1.values())}
_ALU_RM = {i * 8 + 0x03: name for i, name in enumerate(GROUP1.values())}
# reg -> r/m and r/m -> reg mnemonics by opcode, covering mov/test too.
_MR_MNEM = {**_ALU_MR, 0x89: "mov", 0x85: "test"}
_RM_MNEM = {**_ALU_RM, 0x8B: "mov"}

_CMOV_MNEM = tuple("cmov" + CC_BY_CODE[cc][1:] for cc in range(16))

_MAX_INSN = 15  # architectural limit

_INSN_NEW = Instruction.__new__


class _Cursor:
    """Resumable byte reader with bounds checking over the code buffer.

    One cursor decodes a whole region: per-instruction state (prefix
    count, REX byte, segment override, operand width) lives on the cursor
    and is reset by :func:`_decode_next`, so linear decoding never
    re-slices or re-scans bytes it has already consumed.
    """

    __slots__ = ("code", "pos", "start", "rex", "seg", "wbits", "bank",
                 "n_prefix", "n_opcode")

    def __init__(self, code: bytes, pos: int) -> None:
        self.code = code
        self.pos = pos
        self.start = pos

    def u8(self) -> int:
        try:
            b = self.code[self.pos]
        except IndexError:
            raise DecodeError(
                f"truncated instruction at offset {self.start:#x}"
            ) from None
        self.pos += 1
        return b

    def peek(self) -> int:
        try:
            return self.code[self.pos]
        except IndexError:
            raise DecodeError(
                f"truncated instruction at offset {self.start:#x}"
            ) from None

    def i8(self) -> int:
        pos = self.pos
        if pos + 1 > len(self.code):
            raise DecodeError(f"truncated instruction at offset {self.start:#x}")
        self.pos = pos + 1
        return _I8(self.code, pos)[0]

    def i32(self) -> int:
        pos = self.pos
        if pos + 4 > len(self.code):
            raise DecodeError(f"truncated instruction at offset {self.start:#x}")
        self.pos = pos + 4
        return _I32(self.code, pos)[0]

    def i64(self) -> int:
        pos = self.pos
        if pos + 8 > len(self.code):
            raise DecodeError(f"truncated instruction at offset {self.start:#x}")
        self.pos = pos + 8
        return _I64(self.code, pos)[0]


def _build(
    cur: _Cursor,
    mnemonic: str,
    operands: tuple = (),
    disp: int = 0,
    imm: int = 0,
    modrm: bool = False,
    target: int | None = None,
) -> Instruction:
    """Materialise the Instruction for the bytes [cur.start, cur.pos).

    Field-for-field equivalent to calling ``Instruction(...)``; writes the
    frozen dataclass's ``__dict__`` directly to skip the per-field
    ``object.__setattr__`` round trips of the generated ``__init__`` (this
    runs once per decoded instruction).  Equality with the ordinary
    constructor is pinned by tests.
    """
    start = cur.start
    pos = cur.pos
    if pos - start > _MAX_INSN:
        raise DecodeError(f"instruction longer than 15 bytes at {start:#x}")
    insn = _INSN_NEW(Instruction)
    d = insn.__dict__
    d["offset"] = start
    d["raw"] = cur.code[start:pos]
    d["mnemonic"] = mnemonic
    d["operands"] = operands
    d["num_prefix_bytes"] = cur.n_prefix
    d["num_opcode_bytes"] = cur.n_opcode
    d["num_displacement_bytes"] = disp
    d["num_immediate_bytes"] = imm
    d["has_modrm"] = modrm
    d["target"] = target
    return insn


def _parse_modrm(cur: _Cursor, rm_bits: int) -> tuple[int, Reg | Mem, int]:
    """Parse ModRM (+SIB +disp).  Returns (reg_field, rm_operand, disp_bytes)."""
    rex = cur.rex
    seg = cur.seg
    modrm = cur.u8()
    mod = modrm >> 6
    reg_field = ((rex & 0b100) << 1) | ((modrm >> 3) & 0b111)
    rm = modrm & 0b111

    if mod == 0b11:
        bank = GPR64 if rm_bits == 64 else GPR32
        return reg_field, bank[((rex & 1) << 3) | rm], 0

    disp_bytes = 0
    if rm == 0b100:
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        index_num = ((rex & 0b10) << 2) | ((sib >> 3) & 0b111)
        base_num = ((rex & 1) << 3) | (sib & 0b111)
        index = None if index_num == 0b100 else GPR64[index_num]
        if (sib & 0b111) == 0b101 and mod == 0b00:
            disp = cur.i32()
            disp_bytes = 4
            operand = Mem(base=None, index=index, scale=scale, disp=disp, seg=seg)
        else:
            base = GPR64[base_num]
            if mod == 0b01:
                disp, disp_bytes = cur.i8(), 1
            elif mod == 0b10:
                disp, disp_bytes = cur.i32(), 4
            else:
                disp = 0
            operand = Mem(base=base, index=index, scale=scale, disp=disp, seg=seg)
    elif rm == 0b101 and mod == 0b00:
        disp = cur.i32()
        disp_bytes = 4
        operand = Mem(disp=disp, seg=seg, rip_relative=True)
    else:
        base = GPR64[((rex & 1) << 3) | rm]
        if mod == 0b01:
            disp, disp_bytes = cur.i8(), 1
        elif mod == 0b10:
            disp, disp_bytes = cur.i32(), 4
        else:
            disp = 0
        operand = Mem(base=base, disp=disp, seg=seg)
    return reg_field, operand, disp_bytes


# --------------------------------------------------------------- handlers
#
# One function per opcode family.  Each receives the cursor (positioned
# just past the opcode byte) and the opcode byte itself, and returns the
# finished Instruction.  The dispatch tables below map opcode -> handler.

def _h_mr(cur: _Cursor, op: int) -> Instruction:  # ALU/mov/test reg -> r/m
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, _MR_MNEM[op], (cur.bank[reg_field], rm_op),
                  disp=dbytes, modrm=True)


def _h_rm(cur: _Cursor, op: int) -> Instruction:  # ALU/mov r/m -> reg
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, _RM_MNEM[op], (rm_op, cur.bank[reg_field]),
                  disp=dbytes, modrm=True)


def _h_xchg(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, "xchg", (cur.bank[reg_field], rm_op),
                  disp=dbytes, modrm=True)


def _h_lea(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    if not isinstance(rm_op, Mem):
        raise DecodeError(f"lea with register operand at {cur.start:#x}")
    return _build(cur, "lea", (rm_op, cur.bank[reg_field]),
                  disp=dbytes, modrm=True)


def _h_movsxd(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, 32)
    return _build(cur, "movsxd", (rm_op, GPR64[reg_field]),
                  disp=dbytes, modrm=True)


def _h_push(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "push", (GPR64[((cur.rex & 1) << 3) | (op - 0x50)],))


def _h_pop(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "pop", (GPR64[((cur.rex & 1) << 3) | (op - 0x58)],))


def _h_jcc8(cur: _Cursor, op: int) -> Instruction:
    rel = cur.i8()
    return _build(cur, CC_BY_CODE[op - 0x70], imm=1, target=cur.pos + rel)


def _h_group1(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    mnem = GROUP1[reg_field & 0b111]
    if op == 0x81:
        value, isize = cur.i32(), 4
    else:
        value, isize = cur.i8(), 1
    return _build(cur, mnem, (Imm(value, isize), rm_op),
                  disp=dbytes, imm=isize, modrm=True)


def _h_nop(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "nop")


def _h_mov_imm_reg(cur: _Cursor, op: int) -> Instruction:
    dst = cur.bank[((cur.rex & 1) << 3) | (op - 0xB8)]
    if cur.wbits == 64:
        value, isize = cur.i64(), 8
    else:
        value, isize = cur.i32(), 4
    return _build(cur, "mov", (Imm(value, isize), dst), imm=isize)


def _h_group2(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    ext = reg_field & 0b111
    if ext not in GROUP2:
        raise DecodeError(f"unsupported shift /{ext} at {cur.start:#x}")
    amount = cur.u8()
    return _build(cur, GROUP2[ext], (Imm(amount, 1), rm_op),
                  disp=dbytes, imm=1, modrm=True)


def _h_ret(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "ret")


def _h_mov_imm_rm(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    if reg_field & 0b111:
        raise DecodeError(f"unsupported opcode c7 /{reg_field & 7} at {cur.start:#x}")
    value = cur.i32()
    return _build(cur, "mov", (Imm(value, 4), rm_op),
                  disp=dbytes, imm=4, modrm=True)


def _h_leave(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "leave")


def _h_int3(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "int3")


def _h_call_rel32(cur: _Cursor, op: int) -> Instruction:
    rel = cur.i32()
    return _build(cur, "callq", imm=4, target=cur.pos + rel)


def _h_jmp_rel32(cur: _Cursor, op: int) -> Instruction:
    rel = cur.i32()
    return _build(cur, "jmpq", imm=4, target=cur.pos + rel)


def _h_jmp_rel8(cur: _Cursor, op: int) -> Instruction:
    rel = cur.i8()
    return _build(cur, "jmpq", imm=1, target=cur.pos + rel)


def _h_hlt(cur: _Cursor, op: int) -> Instruction:
    return _build(cur, "hlt")


def _h_group3(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    ext = reg_field & 0b111
    if ext not in GROUP3:
        raise DecodeError(f"unsupported opcode f7 /{ext} at {cur.start:#x}")
    if ext == 0:  # test imm32
        value = cur.i32()
        return _build(cur, "test", (Imm(value, 4), rm_op),
                      disp=dbytes, imm=4, modrm=True)
    return _build(cur, GROUP3[ext], (rm_op,), disp=dbytes, modrm=True)


def _h_group5(cur: _Cursor, op: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, 64)
    ext = reg_field & 0b111
    if ext not in GROUP5:
        raise DecodeError(f"unsupported opcode ff /{ext} at {cur.start:#x}")
    mnem = GROUP5[ext]
    if mnem in ("inc", "dec") and isinstance(rm_op, Reg):
        rm_op = cur.bank[rm_op.num]
    return _build(cur, mnem, (rm_op,), disp=dbytes, modrm=True)


# -- two-byte (0F) page -------------------------------------------------

def _h_twobyte(cur: _Cursor, op: int) -> Instruction:
    op2 = cur.u8()
    cur.n_opcode = 2
    handler = _DISPATCH_0F[op2]
    if handler is None:
        raise DecodeError(
            f"unsupported two-byte opcode 0f {op2:02x} at {cur.start:#x}"
        )
    return handler(cur, op2)


def _h_syscall(cur: _Cursor, op2: int) -> Instruction:
    return _build(cur, "syscall")


def _h_ud2(cur: _Cursor, op2: int) -> Instruction:
    return _build(cur, "ud2")


def _h_nopl(cur: _Cursor, op2: int) -> Instruction:
    _, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, "nopl", (rm_op,), disp=dbytes, modrm=True)


def _h_cmov(cur: _Cursor, op2: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, _CMOV_MNEM[op2 - 0x40], (rm_op, cur.bank[reg_field]),
                  disp=dbytes, modrm=True)


def _h_jcc32(cur: _Cursor, op2: int) -> Instruction:
    rel = cur.i32()
    return _build(cur, CC_BY_CODE[op2 - 0x80], imm=4, target=cur.pos + rel)


def _h_imul(cur: _Cursor, op2: int) -> Instruction:
    reg_field, rm_op, dbytes = _parse_modrm(cur, cur.wbits)
    return _build(cur, "imul", (rm_op, cur.bank[reg_field]),
                  disp=dbytes, modrm=True)


# ------------------------------------------------------- dispatch tables

_DISPATCH: list = [None] * 256
_DISPATCH_0F: list = [None] * 256

for _op in _MR_MNEM:
    _DISPATCH[_op] = _h_mr
for _op in _RM_MNEM:
    _DISPATCH[_op] = _h_rm
_DISPATCH[0x0F] = _h_twobyte
for _op in range(0x50, 0x58):
    _DISPATCH[_op] = _h_push
for _op in range(0x58, 0x60):
    _DISPATCH[_op] = _h_pop
_DISPATCH[0x63] = _h_movsxd
for _op in range(0x70, 0x80):
    _DISPATCH[_op] = _h_jcc8
_DISPATCH[0x81] = _DISPATCH[0x83] = _h_group1
_DISPATCH[0x87] = _h_xchg
_DISPATCH[0x8D] = _h_lea
_DISPATCH[0x90] = _h_nop
for _op in range(0xB8, 0xC0):
    _DISPATCH[_op] = _h_mov_imm_reg
_DISPATCH[0xC1] = _h_group2
_DISPATCH[0xC3] = _h_ret
_DISPATCH[0xC7] = _h_mov_imm_rm
_DISPATCH[0xC9] = _h_leave
_DISPATCH[0xCC] = _h_int3
_DISPATCH[0xE8] = _h_call_rel32
_DISPATCH[0xE9] = _h_jmp_rel32
_DISPATCH[0xEB] = _h_jmp_rel8
_DISPATCH[0xF4] = _h_hlt
_DISPATCH[0xF7] = _h_group3
_DISPATCH[0xFF] = _h_group5

_DISPATCH_0F[0x05] = _h_syscall
_DISPATCH_0F[0x0B] = _h_ud2
_DISPATCH_0F[0x1F] = _h_nopl
for _op in range(0x40, 0x50):
    _DISPATCH_0F[_op] = _h_cmov
for _op in range(0x80, 0x90):
    _DISPATCH_0F[_op] = _h_jcc32
_DISPATCH_0F[0xAF] = _h_imul

del _op


# ------------------------------------------------------------ decode loop

def _decode_next(cur: _Cursor) -> Instruction:
    """Decode the instruction at the cursor, advancing it past the end."""
    code = cur.code
    pos = cur.start = cur.pos
    limit = len(code)
    if pos >= limit:
        raise DecodeError(f"truncated instruction at offset {pos:#x}")
    b = code[pos]

    # -- legacy prefixes --------------------------------------------------
    seg: str | None = None
    opsize = False
    n_prefix = 0
    while b == PREFIX_FS or b == PREFIX_GS or b == PREFIX_OPSIZE:
        if b == PREFIX_OPSIZE:
            if opsize:
                raise DecodeError(f"duplicate operand-size prefix at {cur.start:#x}")
            opsize = True
        else:
            if seg is not None:
                raise DecodeError(f"duplicate segment prefix at {cur.start:#x}")
            seg = "fs" if b == PREFIX_FS else "gs"
        pos += 1
        n_prefix += 1
        if n_prefix > 4:
            raise DecodeError(f"too many prefixes at {cur.start:#x}")
        if pos >= limit:
            raise DecodeError(f"truncated instruction at offset {cur.start:#x}")
        b = code[pos]

    # -- REX --------------------------------------------------------------
    rex = 0
    if 0x40 <= b <= 0x4F:
        rex = b
        n_prefix += 1
        pos += 1
        if pos >= limit:
            raise DecodeError(f"truncated instruction at offset {cur.start:#x}")
        b = code[pos]

    cur.pos = pos + 1
    cur.rex = rex
    cur.seg = seg
    cur.n_prefix = n_prefix
    cur.n_opcode = 1
    if rex & 0b1000:
        cur.wbits = 64
        cur.bank = GPR64
    else:
        cur.wbits = 32
        cur.bank = GPR32

    # The operand-size prefix is only meaningful (and only emitted) for the
    # canonical NOP forms in our subset; anywhere else it is ambiguous.
    if opsize and b != 0x90 and not (b == 0x0F and cur.peek() == 0x1F):
        raise DecodeError(f"operand-size prefix on non-NOP opcode {b:#04x}")

    handler = _DISPATCH[b]
    if handler is None:
        raise DecodeError(f"unsupported opcode {b:#04x} at offset {cur.start:#x}")
    return handler(cur, b)


def decode_one(code: bytes, offset: int) -> Instruction:
    """Decode a single instruction starting at *offset* within *code*."""
    if type(code) is not bytes:
        code = bytes(code)
    return _decode_next(_Cursor(code, offset))


def iter_decode(code: bytes, start: int = 0, end: int | None = None) -> Iterator[Instruction]:
    """Linearly decode [start, end) — the NaCl 'sequential decode' pass.

    Runs a single resumable cursor over the region: each instruction picks
    up exactly where the previous one ended, with no per-instruction
    cursor construction or re-slicing.
    """
    if type(code) is not bytes:
        code = bytes(code)
    end = len(code) if end is None else end
    cur = _Cursor(code, start)
    while cur.pos < end:
        insn = _decode_next(cur)
        if insn.end > end:
            raise DecodeError(
                f"instruction at {insn.offset:#x} extends past region end {end:#x}"
            )
        yield insn


def decode_all(code: bytes, start: int = 0, end: int | None = None) -> list[Instruction]:
    """Decode a whole region, materialising the instruction list."""
    return list(iter_decode(code, start, end))


def decode_extent(
    code: bytes, start: int, end: int, out: list[Instruction] | None = None,
) -> tuple[list[Instruction], int]:
    """Decode one extent of a larger region: [start, stop) within *code*.

    Unlike :func:`iter_decode` with an ``end``, the *extent* boundary is
    not the region boundary: the decode stops once the cursor reaches
    *end*, but instructions may legally extend past it (the caller
    detects that as a stitch mismatch), and the past-the-end error is
    raised against ``len(code)`` — exactly the error a whole-buffer
    ``iter_decode(code, 0, len(code))`` would raise at the same byte.

    Returns ``(instructions, pos)`` where *pos* is the cursor position
    after the last decoded instruction.  A concatenation of extent
    decodes whose positions stitch exactly (each extent's *pos* equals
    the next extent's *start*) is provably identical to the single
    linear decode, because both drive the same resumable cursor over
    the same bytes from the same offsets.

    Pass *out* (a list) to receive instructions as they decode — on a
    :class:`DecodeError` the caller then still holds every instruction
    completed before the failure, which the extent-split merge needs to
    replay the serial decode's partial charges exactly.
    """
    if type(code) is not bytes:
        code = bytes(code)
    limit = len(code)
    cur = _Cursor(code, start)
    if out is None:
        out = []
    append = out.append
    while cur.pos < end:
        insn = _decode_next(cur)
        if insn.end > limit:
            raise DecodeError(
                f"instruction at {insn.offset:#x} extends past region end "
                f"{limit:#x}"
            )
        append(insn)
    return out, cur.pos


class StreamDecoder:
    """Chunk-resumable linear decode over a byte stream.

    Drives the same resumable :class:`_Cursor` as :func:`iter_decode`, but
    over a buffer that grows as channel records arrive.  ``feed`` decodes
    every instruction that *provably* fits in the bytes received so far —
    the cursor never starts an instruction unless a full ``_MAX_INSN``-byte
    lookahead window is available, so a chunk boundary can never manufacture
    a spurious truncation error.  ``finish`` drains the tail once the region
    end is known, applying the same past-the-end check as
    :func:`iter_decode`.

    The decoded token sequence (and any :class:`DecodeError`, message
    included) is identical to a whole-buffer :func:`decode_all` of the
    concatenated chunks; tests pin this at adversarial split points.
    """

    __slots__ = ("_code", "_cur", "_finished")

    def __init__(self, start: int = 0) -> None:
        self._code = b""
        self._cur = _Cursor(b"", start)
        self._finished = False

    @property
    def pos(self) -> int:
        """Offset of the next undecoded byte."""
        return self._cur.pos

    @property
    def buffered(self) -> int:
        """Total bytes fed so far."""
        return len(self._code)

    def feed(self, chunk: bytes) -> list[Instruction]:
        """Absorb *chunk*, returning the newly completed instructions."""
        if self._finished:
            raise ValueError("feed() after finish()")
        if chunk:
            self._code += bytes(chunk)
            self._cur.code = self._code
        out: list[Instruction] = []
        append = out.append
        cur = self._cur
        # Decode only while the architectural 15-byte lookahead is fully
        # buffered: any error raised here would also be raised by the
        # whole-buffer decode, and no truncation can be a chunking artifact.
        safe = len(self._code) - _MAX_INSN
        while cur.pos <= safe:
            append(_decode_next(cur))
        return out

    def finish(self, end: int | None = None) -> list[Instruction]:
        """Drain the remaining tail; the stream ends at *end* (default: all
        bytes fed).  Applies :func:`iter_decode`'s region-end check."""
        self._finished = True
        cur = self._cur
        cur.code = self._code
        end = len(self._code) if end is None else end
        out: list[Instruction] = []
        append = out.append
        while cur.pos < end:
            insn = _decode_next(cur)
            if insn.end > end:
                raise DecodeError(
                    f"instruction at {insn.offset:#x} extends past region end {end:#x}"
                )
            append(insn)
        return out
