"""x86-64 instruction encoder.

Encodes the subset of the ISA the mini toolchain emits and the EnGarde
policy idioms require: 32/64-bit MOV/LEA/ALU forms, %fs-segment absolute
addressing (stack canaries), RIP-relative LEA (PIE address materialisation),
push/pop, shifts, direct and indirect calls/jumps, conditional branches, and
the canonical multi-byte NOPs.

Every function returns raw bytes; label resolution lives one layer up in
:mod:`repro.x86.asm`.
"""

from __future__ import annotations

import struct

from ..errors import EncodeError
from .insn import Imm, Mem
from .opcodes import ALU_INDEX, CC_CODES, NOPS, PREFIX_FS, PREFIX_GS, REX_BASE
from .registers import Reg

__all__ = ["encode_modrm", "Enc"]

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")


def _fits8(v: int) -> bool:
    return -128 <= v <= 127


def _fits32(v: int) -> bool:
    return -(1 << 31) <= v < (1 << 31)


def encode_modrm(reg_field: int, rm: Reg | Mem) -> tuple[int, int, int, bytes]:
    """Encode ModRM (+SIB +disp) for *rm* with *reg_field* in ModRM.reg.

    Returns (rex_r, rex_x, rex_b, encoded_bytes).  *reg_field* is the full
    4-bit register number (or opcode extension digit, which never exceeds 7).
    """
    rex_r = (reg_field >> 3) & 1
    reg3 = reg_field & 0b111

    if isinstance(rm, Reg):
        modrm = (0b11 << 6) | (reg3 << 3) | rm.low3
        return rex_r, 0, (rm.num >> 3) & 1, bytes((modrm,))

    if rm.rip_relative:
        modrm = (0b00 << 6) | (reg3 << 3) | 0b101
        return rex_r, 0, 0, bytes((modrm,)) + _I32.pack(rm.disp)

    base, index, scale, disp = rm.base, rm.index, rm.scale, rm.disp

    if base is None and index is None:
        # Absolute disp32: ModRM rm=100 + SIB base=101/index=100 (none).
        if not _fits32(disp):
            raise EncodeError(f"absolute displacement {disp:#x} exceeds 32 bits")
        modrm = (0b00 << 6) | (reg3 << 3) | 0b100
        return rex_r, 0, 0, bytes((modrm, 0x25)) + _I32.pack(disp)

    if not _fits32(disp):
        raise EncodeError(f"displacement {disp:#x} exceeds 32 bits")

    # Choose mod by displacement size.  (%rbp/%r13 base cannot use mod=00.)
    if disp == 0 and (base is None or base.low3 != 0b101):
        mod, disp_bytes = 0b00, b""
    elif _fits8(disp):
        mod, disp_bytes = 0b01, _I8.pack(disp)
    else:
        mod, disp_bytes = 0b10, _I32.pack(disp)

    if index is None and base is not None and base.low3 != 0b100:
        # Simple [base + disp], no SIB needed.
        modrm = (mod << 6) | (reg3 << 3) | base.low3
        return rex_r, 0, (base.num >> 3) & 1, bytes((modrm,)) + disp_bytes

    # SIB required: base is rsp/r12, or an index is present, or index-only.
    if index is not None and index.low3 == 0b100 and index.num == 4:
        raise EncodeError("%rsp cannot be an index register")
    scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[scale]
    index_bits = index.low3 if index is not None else 0b100
    rex_x = ((index.num >> 3) & 1) if index is not None else 0

    if base is None:
        # Index-only: SIB base=101 with mod=00 means disp32 follows.
        modrm = (0b00 << 6) | (reg3 << 3) | 0b100
        sib = (scale_bits << 6) | (index_bits << 3) | 0b101
        return rex_r, rex_x, 0, bytes((modrm, sib)) + _I32.pack(disp)

    modrm = (mod << 6) | (reg3 << 3) | 0b100
    sib = (scale_bits << 6) | (index_bits << 3) | base.low3
    return rex_r, rex_x, (base.num >> 3) & 1, bytes((modrm, sib)) + disp_bytes


def _seg_prefix(rm: Reg | Mem) -> bytes:
    if isinstance(rm, Mem) and rm.seg:
        if rm.seg == "fs":
            return bytes((PREFIX_FS,))
        if rm.seg == "gs":
            return bytes((PREFIX_GS,))
        raise EncodeError(f"unsupported segment {rm.seg!r}")
    return b""


def _build(
    opcode: bytes,
    reg_field: int,
    rm: Reg | Mem,
    *,
    size: int,
    imm: bytes = b"",
) -> bytes:
    """Assemble prefixes + REX + opcode + ModRM/SIB/disp + immediate."""
    rex_r, rex_x, rex_b, tail = encode_modrm(reg_field, rm)
    rex = REX_BASE | ((size == 64) << 3) | (rex_r << 2) | (rex_x << 1) | rex_b
    out = _seg_prefix(rm)
    if rex != REX_BASE:
        out += bytes((rex,))
    return out + opcode + tail + imm


class Enc:
    """Namespace of encoders.  All return the raw instruction bytes.

    Operand order follows AT&T convention (source, destination), matching
    both the paper's listings and the decoded representation.
    """

    # ------------------------------------------------------------- moves

    @staticmethod
    def mov_rr(src: Reg, dst: Reg) -> bytes:
        _check_same_width(src, dst)
        return _build(b"\x89", src.num, dst, size=src.bits)

    @staticmethod
    def mov_store(src: Reg, mem: Mem) -> bytes:
        return _build(b"\x89", src.num, mem, size=src.bits)

    @staticmethod
    def mov_load(mem: Mem, dst: Reg) -> bytes:
        return _build(b"\x8b", dst.num, mem, size=dst.bits)

    @staticmethod
    def mov_imm(value: int, dst: Reg) -> bytes:
        if dst.bits == 64:
            if _fits32(value):
                return _build(b"\xc7", 0, dst, size=64, imm=_I32.pack(value))
            if 0 <= value < (1 << 64):
                value = value - (1 << 64) if value >= (1 << 63) else value
            rex = REX_BASE | 0b1000 | ((dst.num >> 3) & 1)
            return bytes((rex, 0xB8 + dst.low3)) + _I64.pack(value)
        if not (-(1 << 31) <= value < (1 << 32)):
            raise EncodeError(f"immediate {value:#x} exceeds 32 bits")
        prefix = bytes((REX_BASE | 1,)) if dst.num >= 8 else b""
        return prefix + bytes((0xB8 + dst.low3,)) + _U32.pack(value & 0xFFFFFFFF)

    @staticmethod
    def mov_imm_store(value: int, mem: Mem, size: int = 64) -> bytes:
        if not _fits32(value):
            raise EncodeError("mov to memory takes at most a 32-bit immediate")
        return _build(b"\xc7", 0, mem, size=size, imm=_I32.pack(value))

    @staticmethod
    def lea(mem: Mem, dst: Reg) -> bytes:
        if mem.seg:
            raise EncodeError("lea ignores segment overrides; refusing to encode one")
        return _build(b"\x8d", dst.num, mem, size=dst.bits)

    @staticmethod
    def movsxd(src: Reg | Mem, dst: Reg) -> bytes:
        if dst.bits != 64:
            raise EncodeError("movsxd destination must be 64-bit")
        return _build(b"\x63", dst.num, src, size=64)

    # --------------------------------------------------------------- ALU

    @staticmethod
    def alu_rr(op: str, src: Reg, dst: Reg) -> bytes:
        idx = _alu_index(op)
        _check_same_width(src, dst)
        return _build(bytes((idx * 8 + 0x01,)), src.num, dst, size=src.bits)

    @staticmethod
    def alu_store(op: str, src: Reg, mem: Mem) -> bytes:
        idx = _alu_index(op)
        return _build(bytes((idx * 8 + 0x01,)), src.num, mem, size=src.bits)

    @staticmethod
    def alu_load(op: str, mem: Mem, dst: Reg) -> bytes:
        idx = _alu_index(op)
        return _build(bytes((idx * 8 + 0x03,)), dst.num, mem, size=dst.bits)

    @staticmethod
    def alu_imm(op: str, value: int, dst: Reg | Mem, size: int = 64) -> bytes:
        idx = _alu_index(op)
        if isinstance(dst, Reg):
            size = dst.bits
        if _fits8(value):
            return _build(b"\x83", idx, dst, size=size, imm=_I8.pack(value))
        if not _fits32(value):
            raise EncodeError(f"ALU immediate {value:#x} exceeds 32 bits")
        return _build(b"\x81", idx, dst, size=size, imm=_I32.pack(value))

    @staticmethod
    def test_rr(src: Reg, dst: Reg) -> bytes:
        _check_same_width(src, dst)
        return _build(b"\x85", src.num, dst, size=src.bits)

    @staticmethod
    def imul_rr(src: Reg | Mem, dst: Reg) -> bytes:
        return _build(b"\x0f\xaf", dst.num, src, size=dst.bits)

    @staticmethod
    def cmov(cond: str, src: Reg | Mem, dst: Reg) -> bytes:
        """cmovcc r, r/m (0F 40+cc).  *cond* may be "e", "cmove" or "je"."""
        if cond.startswith("cmov"):
            cond = cond[4:]
        cc = _cc(cond)
        return _build(bytes((0x0F, 0x40 + cc)), dst.num, src, size=dst.bits)

    @staticmethod
    def xchg_rr(a: Reg, b: Reg) -> bytes:
        """xchg between two registers (87 /r)."""
        _check_same_width(a, b)
        return _build(b"\x87", a.num, b, size=a.bits)

    @staticmethod
    def xchg_rm(reg: Reg, mem: Mem) -> bytes:
        """xchg between a register and memory (87 /r, implicitly atomic)."""
        return _build(b"\x87", reg.num, mem, size=reg.bits)

    @staticmethod
    def shift_imm(op: str, amount: int, dst: Reg | Mem, size: int = 64) -> bytes:
        ext = {"shl": 4, "shr": 5, "sar": 7}.get(op)
        if ext is None:
            raise EncodeError(f"unknown shift {op!r}")
        if not 0 <= amount <= 63:
            raise EncodeError(f"shift amount {amount} out of range")
        if isinstance(dst, Reg):
            size = dst.bits
        return _build(b"\xc1", ext, dst, size=size, imm=bytes((amount,)))

    @staticmethod
    def unary(op: str, dst: Reg | Mem, size: int = 64) -> bytes:
        ext = {"not": 2, "neg": 3, "mul": 4, "imul": 5, "div": 6, "idiv": 7}.get(op)
        if ext is None:
            raise EncodeError(f"unknown unary op {op!r}")
        if isinstance(dst, Reg):
            size = dst.bits
        return _build(b"\xf7", ext, dst, size=size)

    @staticmethod
    def incdec(op: str, dst: Reg | Mem, size: int = 64) -> bytes:
        ext = {"inc": 0, "dec": 1}[op]
        if isinstance(dst, Reg):
            size = dst.bits
        return _build(b"\xff", ext, dst, size=size)

    # ------------------------------------------------------------- stack

    @staticmethod
    def push(reg: Reg) -> bytes:
        prefix = bytes((REX_BASE | 1,)) if reg.num >= 8 else b""
        return prefix + bytes((0x50 + reg.low3,))

    @staticmethod
    def pop(reg: Reg) -> bytes:
        prefix = bytes((REX_BASE | 1,)) if reg.num >= 8 else b""
        return prefix + bytes((0x58 + reg.low3,))

    # ----------------------------------------------------- control flow

    @staticmethod
    def call_rel32(rel: int) -> bytes:
        return b"\xe8" + _I32.pack(rel)

    @staticmethod
    def jmp_rel32(rel: int) -> bytes:
        return b"\xe9" + _I32.pack(rel)

    @staticmethod
    def jmp_rel8(rel: int) -> bytes:
        return b"\xeb" + _I8.pack(rel)

    @staticmethod
    def jcc_rel32(cond: str, rel: int) -> bytes:
        cc = _cc(cond)
        return bytes((0x0F, 0x80 + cc)) + _I32.pack(rel)

    @staticmethod
    def jcc_rel8(cond: str, rel: int) -> bytes:
        cc = _cc(cond)
        return bytes((0x70 + cc,)) + _I8.pack(rel)

    @staticmethod
    def call_rm(target: Reg | Mem) -> bytes:
        # Indirect call defaults to 64-bit; no REX.W needed.
        return _build(b"\xff", 2, target, size=32)

    @staticmethod
    def jmp_rm(target: Reg | Mem) -> bytes:
        return _build(b"\xff", 4, target, size=32)

    @staticmethod
    def ret() -> bytes:
        return b"\xc3"

    @staticmethod
    def leave() -> bytes:
        return b"\xc9"

    @staticmethod
    def ud2() -> bytes:
        return b"\x0f\x0b"

    @staticmethod
    def int3() -> bytes:
        return b"\xcc"

    @staticmethod
    def hlt() -> bytes:
        return b"\xf4"

    @staticmethod
    def syscall() -> bytes:
        return b"\x0f\x05"

    @staticmethod
    def nop(length: int = 1) -> bytes:
        """A single NOP instruction of exactly *length* bytes (1..9)."""
        try:
            return NOPS[length]
        except KeyError:
            raise EncodeError(f"no canonical NOP of {length} bytes") from None

    @staticmethod
    def nop_pad(length: int) -> bytes:
        """NOP filler totalling *length* bytes (multiple instructions ok)."""
        out = bytearray()
        while length > 9:
            out += NOPS[9]
            length -= 9
        if length:
            out += NOPS[length]
        return bytes(out)


def _alu_index(op: str) -> int:
    try:
        return ALU_INDEX[op]
    except KeyError:
        raise EncodeError(f"unknown ALU op {op!r}") from None


def _cc(cond: str) -> int:
    mnemonic = cond if cond.startswith("j") else "j" + cond
    try:
        return CC_CODES[mnemonic]
    except KeyError:
        raise EncodeError(f"unknown condition {cond!r}") from None


def _check_same_width(a: Reg, b: Reg) -> None:
    if a.bits != b.bits:
        raise EncodeError(f"operand width mismatch: %{a.name} vs %{b.name}")
