"""x86-64 substrate: registers, encoder, assembler, decoder, validator.

The paper builds EnGarde's disassembler on Google Native Client's 64-bit
disassembler; this package is our from-scratch equivalent.  The encoder and
assembler exist so the mini toolchain can emit *real machine code* for the
policies to inspect — nothing in the pipeline operates on mocked bytes.
"""

from .asm import BUNDLE_SIZE, Assembler, ExternalFixup, Label
from .decoder import (
    StreamDecoder,
    decode_all,
    decode_extent,
    decode_one,
    iter_decode,
)
from .encoder import Enc
from .insn import Imm, Instruction, Mem, Operand
from .registers import (
    EAX, EBP, EBX, ECX, EDI, EDX, ESI, ESP,
    R8, R8D, R9, R9D, R10, R10D, R11, R11D,
    R12, R12D, R13, R13D, R14, R14D, R15, R15D,
    RAX, RBP, RBX, RCX, RDI, RDX, RSI, RSP,
    GPR32, GPR64, Reg, reg_by_name, reg_name,
)
from .validator import (
    check_bundles,
    check_reachability,
    check_reachability_fast,
    check_targets,
    validate,
    validate_fast,
)

__all__ = [
    "Assembler", "Label", "ExternalFixup", "BUNDLE_SIZE",
    "Enc",
    "decode_one", "decode_all", "decode_extent", "iter_decode",
    "StreamDecoder",
    "Instruction", "Mem", "Imm", "Operand",
    "Reg", "reg_name", "reg_by_name", "GPR64", "GPR32",
    "RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI",
    "R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
    "EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
    "R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D",
    "validate", "validate_fast", "check_bundles", "check_targets",
    "check_reachability", "check_reachability_fast",
]
