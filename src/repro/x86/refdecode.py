"""Frozen pre-optimization decoder: the differential-testing oracle.

This is the sequential if/elif-chain decoder exactly as it existed before
the dispatch-table rewrite in :mod:`repro.x86.decoder`.  It is **kept
verbatim** (only renamed) so that the hot-path benchmark and the
differential-equivalence tests can measure the optimized decoder against
a known-good executable reference instead of a remembered one: both
decoders must produce identical :class:`~repro.x86.insn.Instruction`
records (and identical :class:`~repro.errors.DecodeError` messages) for
every input, which ``tests/test_perf_differential.py`` asserts over the
golden corpus and the service variant fleet.

Do not optimize this module — its slowness is the point.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from ..errors import DecodeError
from .insn import Imm, Instruction, Mem
from .opcodes import (
    CC_BY_CODE,
    GROUP1,
    GROUP2,
    GROUP3,
    GROUP5,
    PREFIX_FS,
    PREFIX_GS,
    PREFIX_OPSIZE,
)
from .registers import Reg

__all__ = ["ref_decode_one", "ref_decode_all", "ref_iter_decode"]

_I8 = struct.Struct("<b")
_I32 = struct.Struct("<i")
_I64 = struct.Struct("<q")

# ALU opcodes of the 0x01/0x03 families, derived from the group table.
_ALU_MR = {i * 8 + 0x01: name for i, name in enumerate(GROUP1.values())}
_ALU_RM = {i * 8 + 0x03: name for i, name in enumerate(GROUP1.values())}

_MAX_INSN = 15  # architectural limit


class _Cursor:
    """Byte reader with bounds checking over the code buffer."""

    __slots__ = ("code", "pos", "start")

    def __init__(self, code: bytes, pos: int) -> None:
        self.code = code
        self.pos = pos
        self.start = pos

    def u8(self) -> int:
        try:
            b = self.code[self.pos]
        except IndexError:
            raise DecodeError(
                f"truncated instruction at offset {self.start:#x}"
            ) from None
        self.pos += 1
        return b

    def peek(self) -> int:
        try:
            return self.code[self.pos]
        except IndexError:
            raise DecodeError(
                f"truncated instruction at offset {self.start:#x}"
            ) from None

    def i8(self) -> int:
        return _I8.unpack_from(self._take(1))[0]

    def i32(self) -> int:
        return _I32.unpack_from(self._take(4))[0]

    def i64(self) -> int:
        return _I64.unpack_from(self._take(8))[0]

    def _take(self, n: int) -> bytes:
        if self.pos + n > len(self.code):
            raise DecodeError(f"truncated instruction at offset {self.start:#x}")
        chunk = self.code[self.pos:self.pos + n]
        self.pos += n
        return chunk


def _parse_modrm(
    cur: _Cursor, rex: int, seg: str | None, reg_bits: int, rm_bits: int
) -> tuple[int, Reg | Mem, int]:
    """Parse ModRM (+SIB +disp).  Returns (reg_field, rm_operand, disp_bytes)."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg_field = (((rex >> 2) & 1) << 3) | ((modrm >> 3) & 0b111)
    rm = modrm & 0b111

    if mod == 0b11:
        return reg_field, Reg((((rex & 1) << 3) | rm), rm_bits), 0

    disp_bytes = 0
    if rm == 0b100:
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        index_num = (((rex >> 1) & 1) << 3) | ((sib >> 3) & 0b111)
        base_num = ((rex & 1) << 3) | (sib & 0b111)
        index = None if index_num == 0b100 else Reg(index_num, 64)
        if (sib & 0b111) == 0b101 and mod == 0b00:
            disp = cur.i32()
            disp_bytes = 4
            operand = Mem(base=None, index=index, scale=scale, disp=disp, seg=seg)
        else:
            base = Reg(base_num, 64)
            if mod == 0b01:
                disp, disp_bytes = cur.i8(), 1
            elif mod == 0b10:
                disp, disp_bytes = cur.i32(), 4
            else:
                disp = 0
            operand = Mem(base=base, index=index, scale=scale, disp=disp, seg=seg)
    elif rm == 0b101 and mod == 0b00:
        disp = cur.i32()
        disp_bytes = 4
        operand = Mem(disp=disp, seg=seg, rip_relative=True)
    else:
        base = Reg(((rex & 1) << 3) | rm, 64)
        if mod == 0b01:
            disp, disp_bytes = cur.i8(), 1
        elif mod == 0b10:
            disp, disp_bytes = cur.i32(), 4
        else:
            disp = 0
        operand = Mem(base=base, disp=disp, seg=seg)
    return reg_field, operand, disp_bytes


def ref_decode_one(code: bytes, offset: int) -> Instruction:
    """Decode a single instruction starting at *offset* within *code*."""
    cur = _Cursor(code, offset)

    # -- legacy prefixes --------------------------------------------------
    seg: str | None = None
    opsize = False
    n_prefix = 0
    while True:
        b = cur.peek()
        if b == PREFIX_FS:
            if seg is not None:
                raise DecodeError(f"duplicate segment prefix at {offset:#x}")
            seg = "fs"
        elif b == PREFIX_GS:
            if seg is not None:
                raise DecodeError(f"duplicate segment prefix at {offset:#x}")
            seg = "gs"
        elif b == PREFIX_OPSIZE:
            if opsize:
                raise DecodeError(f"duplicate operand-size prefix at {offset:#x}")
            opsize = True
        else:
            break
        cur.u8()
        n_prefix += 1
        if n_prefix > 4:
            raise DecodeError(f"too many prefixes at {offset:#x}")

    # -- REX --------------------------------------------------------------
    rex = 0
    if 0x40 <= cur.peek() <= 0x4F:
        rex = cur.u8()
        n_prefix += 1
    wbits = 64 if rex & 0b1000 else 32

    op = cur.u8()
    n_opcode = 1

    # The operand-size prefix is only meaningful (and only emitted) for the
    # canonical NOP forms in our subset; anywhere else it is ambiguous.
    if opsize and op != 0x90 and not (op == 0x0F and cur.peek() == 0x1F):
        raise DecodeError(f"operand-size prefix on non-NOP opcode {op:#04x}")

    def make(
        mnemonic: str,
        operands: tuple = (),
        *,
        disp: int = 0,
        imm: int = 0,
        modrm: bool = False,
        target: int | None = None,
        opcode_bytes: int | None = None,
    ) -> Instruction:
        raw = bytes(code[cur.start:cur.pos])
        if len(raw) > _MAX_INSN:
            raise DecodeError(f"instruction longer than 15 bytes at {offset:#x}")
        return Instruction(
            offset=offset,
            raw=raw,
            mnemonic=mnemonic,
            operands=operands,
            num_prefix_bytes=n_prefix,
            num_opcode_bytes=opcode_bytes if opcode_bytes is not None else n_opcode,
            num_displacement_bytes=disp,
            num_immediate_bytes=imm,
            has_modrm=modrm,
            target=target,
        )

    # -- two-byte opcodes ---------------------------------------------------
    if op == 0x0F:
        op2 = cur.u8()
        n_opcode = 2
        if op2 == 0x05:
            return make("syscall")
        if op2 == 0x0B:
            return make("ud2")
        if op2 == 0x1F:
            _, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
            return make("nopl", (rm_op,), disp=dbytes, modrm=True)
        if 0x40 <= op2 <= 0x4F:
            reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
            mnem = "cmov" + CC_BY_CODE[op2 - 0x40][1:]
            return make(mnem, (rm_op, Reg(reg_field, wbits)), disp=dbytes, modrm=True)
        if 0x80 <= op2 <= 0x8F:
            rel = cur.i32()
            return make(CC_BY_CODE[op2 - 0x80], imm=4, target=cur.pos + rel)
        if op2 == 0xAF:
            reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
            return make("imul", (rm_op, Reg(reg_field, wbits)), disp=dbytes, modrm=True)
        raise DecodeError(f"unsupported two-byte opcode 0f {op2:02x} at {offset:#x}")

    # -- one-byte opcodes ---------------------------------------------------
    if op in _ALU_MR or op in (0x89, 0x85):
        mnem = {0x89: "mov", 0x85: "test"}.get(op) or _ALU_MR[op]
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        return make(mnem, (Reg(reg_field, wbits), rm_op), disp=dbytes, modrm=True)

    if op in _ALU_RM or op == 0x8B:
        mnem = "mov" if op == 0x8B else _ALU_RM[op]
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        return make(mnem, (rm_op, Reg(reg_field, wbits)), disp=dbytes, modrm=True)

    if op == 0x87:  # xchg r/m, r
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        return make("xchg", (Reg(reg_field, wbits), rm_op), disp=dbytes, modrm=True)

    if op == 0x8D:  # lea
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        if not isinstance(rm_op, Mem):
            raise DecodeError(f"lea with register operand at {offset:#x}")
        return make("lea", (rm_op, Reg(reg_field, wbits)), disp=dbytes, modrm=True)

    if op == 0x63:  # movsxd
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, 64, 32)
        return make("movsxd", (rm_op, Reg(reg_field, 64)), disp=dbytes, modrm=True)

    if 0x50 <= op <= 0x57:
        return make("push", (Reg(((rex & 1) << 3) | (op - 0x50), 64),))
    if 0x58 <= op <= 0x5F:
        return make("pop", (Reg(((rex & 1) << 3) | (op - 0x58), 64),))

    if 0x70 <= op <= 0x7F:
        rel = cur.i8()
        return make(CC_BY_CODE[op - 0x70], imm=1, target=cur.pos + rel)

    if op in (0x81, 0x83):  # group 1
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        mnem = GROUP1[reg_field & 0b111]
        if op == 0x81:
            value, isize = cur.i32(), 4
        else:
            value, isize = cur.i8(), 1
        return make(mnem, (Imm(value, isize), rm_op), disp=dbytes, imm=isize, modrm=True)

    if op == 0x90:
        return make("nop")

    if 0xB8 <= op <= 0xBF:  # mov imm -> reg
        dst = Reg(((rex & 1) << 3) | (op - 0xB8), wbits)
        if wbits == 64:
            value, isize = cur.i64(), 8
        else:
            value, isize = cur.i32(), 4
        return make("mov", (Imm(value, isize), dst), imm=isize)

    if op == 0xC1:  # group 2 shifts, imm8
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        ext = reg_field & 0b111
        if ext not in GROUP2:
            raise DecodeError(f"unsupported shift /{ext} at {offset:#x}")
        amount = cur.u8()
        return make(GROUP2[ext], (Imm(amount, 1), rm_op), disp=dbytes, imm=1, modrm=True)

    if op == 0xC3:
        return make("ret")

    if op == 0xC7:  # mov imm32 -> r/m
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        if reg_field & 0b111:
            raise DecodeError(f"unsupported opcode c7 /{reg_field & 7} at {offset:#x}")
        value = cur.i32()
        return make("mov", (Imm(value, 4), rm_op), disp=dbytes, imm=4, modrm=True)

    if op == 0xC9:
        return make("leave")

    if op == 0xCC:
        return make("int3")

    if op == 0xE8:
        rel = cur.i32()
        return make("callq", imm=4, target=cur.pos + rel)
    if op == 0xE9:
        rel = cur.i32()
        return make("jmpq", imm=4, target=cur.pos + rel)
    if op == 0xEB:
        rel = cur.i8()
        return make("jmpq", imm=1, target=cur.pos + rel)

    if op == 0xF4:
        return make("hlt")

    if op == 0xF7:  # group 3
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, wbits)
        ext = reg_field & 0b111
        if ext not in GROUP3:
            raise DecodeError(f"unsupported opcode f7 /{ext} at {offset:#x}")
        if ext == 0:  # test imm32
            value = cur.i32()
            return make("test", (Imm(value, 4), rm_op), disp=dbytes, imm=4, modrm=True)
        return make(GROUP3[ext], (rm_op,), disp=dbytes, modrm=True)

    if op == 0xFF:  # group 5
        reg_field, rm_op, dbytes = _parse_modrm(cur, rex, seg, wbits, 64)
        ext = reg_field & 0b111
        if ext not in GROUP5:
            raise DecodeError(f"unsupported opcode ff /{ext} at {offset:#x}")
        mnem = GROUP5[ext]
        if mnem in ("inc", "dec") and isinstance(rm_op, Reg):
            rm_op = Reg(rm_op.num, wbits)
        return make(mnem, (rm_op,), disp=dbytes, modrm=True)

    raise DecodeError(f"unsupported opcode {op:#04x} at offset {offset:#x}")


def ref_iter_decode(code: bytes, start: int = 0, end: int | None = None) -> Iterator[Instruction]:
    """Linearly decode [start, end) — the NaCl 'sequential decode' pass."""
    end = len(code) if end is None else end
    pos = start
    while pos < end:
        insn = ref_decode_one(code, pos)
        if insn.end > end:
            raise DecodeError(
                f"instruction at {pos:#x} extends past region end {end:#x}"
            )
        yield insn
        pos = insn.end


def ref_decode_all(code: bytes, start: int = 0, end: int | None = None) -> list[Instruction]:
    """Decode a whole region, materialising the instruction list."""
    return list(ref_iter_decode(code, start, end))
