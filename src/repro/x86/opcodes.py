"""Shared opcode constants: ALU group indices, condition codes, NOP forms.

The encoder and decoder both key off these tables so they cannot drift
apart; round-trip property tests (encode -> decode -> compare) pin the
correspondence.
"""

from __future__ import annotations

__all__ = [
    "ALU_OPS", "ALU_INDEX", "CC_CODES", "CC_BY_CODE",
    "GROUP1", "GROUP2", "GROUP3", "GROUP5", "NOPS",
    "REX_BASE", "PREFIX_FS", "PREFIX_GS", "PREFIX_OPSIZE",
]

# Group-1 ALU operations: opcode /digit and the 0x01/0x03-family base.
ALU_OPS = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
ALU_INDEX = {name: i for i, name in enumerate(ALU_OPS)}

# Condition codes for Jcc (0x70+cc rel8, 0x0F 0x80+cc rel32).  The decoder
# normalises to the first listed mnemonic.
CC_CODES = {
    "jo": 0x0, "jno": 0x1,
    "jb": 0x2, "jc": 0x2, "jnae": 0x2,
    "jae": 0x3, "jnb": 0x3, "jnc": 0x3,
    "je": 0x4, "jz": 0x4,
    "jne": 0x5, "jnz": 0x5,
    "jbe": 0x6, "jna": 0x6,
    "ja": 0x7, "jnbe": 0x7,
    "js": 0x8, "jns": 0x9,
    "jp": 0xA, "jnp": 0xB,
    "jl": 0xC, "jge": 0xD,
    "jle": 0xE, "jg": 0xF,
}
CC_BY_CODE = {
    0x0: "jo", 0x1: "jno", 0x2: "jb", 0x3: "jae", 0x4: "je", 0x5: "jne",
    0x6: "jbe", 0x7: "ja", 0x8: "js", 0x9: "jns", 0xA: "jp", 0xB: "jnp",
    0xC: "jl", 0xD: "jge", 0xE: "jle", 0xF: "jg",
}

# Group opcodes: ModRM.reg selects the operation.
GROUP1 = dict(enumerate(ALU_OPS))                      # 0x81 / 0x83
GROUP2 = {4: "shl", 5: "shr", 7: "sar"}                # 0xC1
GROUP3 = {0: "test", 2: "not", 3: "neg",               # 0xF7
          4: "mul", 5: "imul", 6: "div", 7: "idiv"}
GROUP5 = {0: "inc", 1: "dec", 2: "callq", 4: "jmpq", 6: "push"}  # 0xFF

# Canonical multi-byte NOP encodings (Intel SDM recommended forms), used by
# the assembler for 32-byte bundle padding.
NOPS = {
    1: bytes((0x90,)),
    2: bytes((0x66, 0x90)),
    3: bytes((0x0F, 0x1F, 0x00)),
    4: bytes((0x0F, 0x1F, 0x40, 0x00)),
    5: bytes((0x0F, 0x1F, 0x44, 0x00, 0x00)),
    6: bytes((0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00)),
    7: bytes((0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00)),
    8: bytes((0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00)),
    9: bytes((0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00)),
}

REX_BASE = 0x40
PREFIX_FS = 0x64
PREFIX_GS = 0x65
PREFIX_OPSIZE = 0x66
