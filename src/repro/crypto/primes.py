"""Prime generation for RSA: trial division + Miller-Rabin.

Primes are drawn from a caller-supplied :class:`~repro.crypto.mac.HmacDrbg`
so that key generation is deterministic under a fixed seed — essential for
reproducible enclave-provisioning experiments.
"""

from __future__ import annotations

import math

from .mac import HmacDrbg

__all__ = ["is_probable_prime", "generate_prime", "SMALL_PRIMES"]

# Primes below 1000, used for cheap trial division before Miller-Rabin.


def _sieve(limit: int) -> tuple[int, ...]:
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    for p in range(2, int(limit ** 0.5) + 1):
        if flags[p]:
            flags[p * p:: p] = bytearray(len(flags[p * p:: p]))
    return tuple(i for i, f in enumerate(flags) if f)


SMALL_PRIMES = _sieve(1000)

# Product of all small primes: one gcd against this replaces the whole
# trial-division loop for large candidates.  gcd(n, primorial) > 1 iff
# some small prime divides n, so accept/reject decisions (and therefore
# the DRBG draw sequence and every generated key) are unchanged.
_PRIMORIAL = math.prod(SMALL_PRIMES)
_SMALL_PRIME_SET = frozenset(SMALL_PRIMES)


def is_probable_prime(n: int, rounds: int = 40, rng: HmacDrbg | None = None) -> bool:
    """Miller-Rabin primality test.

    With 40 rounds the error probability is below 2**-80.  When *rng* is
    None, witnesses are the first *rounds* small primes (deterministic and
    adequate for the sizes used here).
    """
    if n < 2:
        return False
    if n <= SMALL_PRIMES[-1]:
        return n in _SMALL_PRIME_SET
    if math.gcd(n, _PRIMORIAL) != 1:
        return False

    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for i in range(rounds):
        if rng is None:
            a = SMALL_PRIMES[i % len(SMALL_PRIMES)]
        else:
            a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: HmacDrbg) -> int:
    """Generate a random prime with exactly *bits* bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly 2*bits bits (the standard RSA trick).
    """
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2))  # full size
        candidate |= 1  # odd
        if is_probable_prime(candidate, rng=rng):
            return candidate
