"""Frozen reference crypto: the differential oracles for the fast kernels.

This module is a verbatim freeze of the straightforward pure-Python
primitives that :mod:`repro.crypto` shipped before the provisioning
data-plane overhaul: the word-at-a-time T-table AES with the per-call
CTR loop, the textbook SHA-256 compression loop, and the
re-pad-every-call HMAC.  The optimized implementations in
:mod:`repro.crypto.aes` / :mod:`~repro.crypto.sha256` /
:mod:`~repro.crypto.mac` are required to be **byte-identical** to these
oracles for every input; the benchmark
(``benchmarks/bench_provisioning.py``) and the differential tests
enforce that, and the known-answer self-check at the bottom of this file
pins the oracles themselves to FIPS-197 / FIPS 180-4 / RFC 4231 vectors
at import time.

Do not modify this module for performance.  It exists so future perf
work always has a slow-but-obviously-correct implementation to diff
against (the same role :mod:`repro.x86.refdecode` plays for the
decoder).
"""

from __future__ import annotations

import hashlib
import struct

from ..errors import CryptoError

__all__ = [
    "RefAes",
    "ref_aes_ctr",
    "RefSHA256",
    "ref_sha256",
    "ref_hmac_sha256",
    "ref_channel_hmac",
    "ref_constant_time_eq",
]

BLOCK = 16

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table construction (frozen copy).
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gmul(x, 3)
    exp[255] = exp[0]  # generator order is 255, so exp wraps

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = bytearray(256)
    for i in range(256):
        q = inv(i)
        s = q
        for shift in (1, 2, 3, 4):
            s ^= ((q << shift) | (q >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_MUL9 = bytes(_gmul(i, 9) for i in range(256))
_MUL11 = bytes(_gmul(i, 11) for i in range(256))
_MUL13 = bytes(_gmul(i, 13) for i in range(256))
_MUL14 = bytes(_gmul(i, 14) for i in range(256))
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)

_T0 = tuple(
    (_gmul(s, 2) << 24) | (s << 16) | (s << 8) | _gmul(s, 3) for s in _SBOX
)
_T1 = tuple(((t >> 8) | (t << 24)) & 0xFFFFFFFF for t in _T0)
_T2 = tuple(((t >> 16) | (t << 16)) & 0xFFFFFFFF for t in _T0)
_T3 = tuple(((t >> 24) | (t << 8)) & 0xFFFFFFFF for t in _T0)

_INV_SHIFT = (0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3)

_WORDS = struct.Struct(">4I")


class RefAes:
    """AES block cipher for 128/192/256-bit keys (frozen reference)."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._rk = self._expand_key(key)  # flat list of 32-bit words

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        rk = self._rk
        s0, s1, s2, s3 = _WORDS.unpack(block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        t0_tab, t1_tab, t2_tab, t3_tab = _T0, _T1, _T2, _T3
        for r in range(1, self.rounds):
            k = 4 * r
            t0 = (t0_tab[s0 >> 24] ^ t1_tab[(s1 >> 16) & 0xFF]
                  ^ t2_tab[(s2 >> 8) & 0xFF] ^ t3_tab[s3 & 0xFF] ^ rk[k])
            t1 = (t0_tab[s1 >> 24] ^ t1_tab[(s2 >> 16) & 0xFF]
                  ^ t2_tab[(s3 >> 8) & 0xFF] ^ t3_tab[s0 & 0xFF] ^ rk[k + 1])
            t2 = (t0_tab[s2 >> 24] ^ t1_tab[(s3 >> 16) & 0xFF]
                  ^ t2_tab[(s0 >> 8) & 0xFF] ^ t3_tab[s1 & 0xFF] ^ rk[k + 2])
            t3 = (t0_tab[s3 >> 24] ^ t1_tab[(s0 >> 16) & 0xFF]
                  ^ t2_tab[(s1 >> 8) & 0xFF] ^ t3_tab[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        sbox = _SBOX
        o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
        o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
        return _WORDS.pack(o0, o1, o2, o3)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        round_keys = [
            _WORDS.pack(*self._rk[4 * r:4 * r + 4]) for r in range(self.rounds + 1)
        ]
        state = bytes(a ^ b for a, b in zip(block, round_keys[self.rounds]))
        for rnd in range(self.rounds - 1, 0, -1):
            state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
            state = bytes(a ^ b for a, b in zip(state, round_keys[rnd]))
            out = bytearray(16)
            for c in range(0, 16, 4):
                s0, s1, s2, s3 = state[c:c + 4]
                out[c] = _MUL14[s0] ^ _MUL11[s1] ^ _MUL13[s2] ^ _MUL9[s3]
                out[c + 1] = _MUL9[s0] ^ _MUL14[s1] ^ _MUL11[s2] ^ _MUL13[s3]
                out[c + 2] = _MUL13[s0] ^ _MUL9[s1] ^ _MUL14[s2] ^ _MUL11[s3]
                out[c + 3] = _MUL11[s0] ^ _MUL13[s1] ^ _MUL9[s2] ^ _MUL14[s3]
            state = bytes(out)
        state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
        return bytes(a ^ b for a, b in zip(state, round_keys[0]))


def ref_aes_ctr(
    key: bytes, nonce: bytes, data: bytes, initial_counter: int = 0
) -> bytes:
    """CTR-mode keystream XOR, one ``encrypt_block`` call per counter.

    This is the exact pre-overhaul ``aes_ctr``: the key schedule is
    re-expanded on every call and the keystream is produced block by
    block — the cost model the fast path is measured against.
    """
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    cipher = RefAes(key)
    nblocks = (len(data) + BLOCK - 1) // BLOCK
    keystream = bytearray(nblocks * BLOCK)
    encrypt = cipher.encrypt_block
    pack = struct.Struct(">Q").pack
    for i in range(nblocks):
        keystream[i * BLOCK:(i + 1) * BLOCK] = encrypt(
            nonce + pack(initial_counter + i)
        )
    mask = int.from_bytes(keystream[:len(data)], "big")
    value = int.from_bytes(data, "big") ^ mask
    return value.to_bytes(len(data), "big")


# ---------------------------------------------------------------------------
# SHA-256 (frozen copy of the loop-based compression function).
# ---------------------------------------------------------------------------

_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF

BLOCK_SIZE = 64
DIGEST_SIZE = 32


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


class RefSHA256:
    """Incremental SHA-256 with the textbook compression loop (frozen)."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_IV)
        self._buffer = bytearray()  # partial block, always < BLOCK_SIZE
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if type(data) is not bytes:
            if not isinstance(data, (bytes, bytearray, memoryview)):
                raise TypeError(f"expected bytes-like, got {type(data).__name__}")
            view = memoryview(data)
            if view.itemsize != 1:
                try:
                    view = view.cast("B")
                except TypeError:
                    view = memoryview(view.tobytes())
            data = view
        nbytes = len(data)
        self._length += nbytes
        buffer = self._buffer
        compress = self._compress
        start = 0
        if buffer:
            need = BLOCK_SIZE - len(buffer)
            if nbytes < need:
                buffer += data
                return
            buffer += data[:need]
            compress(buffer)
            buffer.clear()
            start = need
        end = start + ((nbytes - start) - (nbytes - start) % BLOCK_SIZE)
        for offset in range(start, end, BLOCK_SIZE):
            compress(data[offset:offset + BLOCK_SIZE])
        if end < nbytes:
            buffer += data[end:]

    def digest(self) -> bytes:
        clone = self.copy()
        bit_length = clone._length * 8
        pad_len = (55 - clone._length) % 64
        clone.update(b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_length))
        assert not clone._buffer
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "RefSHA256":
        clone = RefSHA256()
        clone._h = list(self._h)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 64):
            s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK)

        a, b, c, d, e, f, g, h = self._h
        for i in range(64):
            s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _K[i] + w[i]) & _MASK
            s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & _MASK
            h, g, f, e = g, f, e, (d + temp1) & _MASK
            d, c, b, a = c, b, a, (temp1 + temp2) & _MASK

        self._h = [
            (x + y) & _MASK for x, y in zip(self._h, (a, b, c, d, e, f, g, h))
        ]


def ref_sha256(data: bytes) -> bytes:
    """One-shot digest using the frozen from-scratch implementation."""
    return RefSHA256(data).digest()


# ---------------------------------------------------------------------------
# HMAC-SHA256 (frozen: full key preparation on every call).
# ---------------------------------------------------------------------------


def ref_hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104 over the frozen SHA-256.

    Unlike the pre-overhaul ``hmac_sha256`` (which delegated the digest
    to :mod:`hashlib`), the oracle runs entirely on :class:`RefSHA256`
    so a differential failure always localises to exactly one fast
    kernel.  The output is identical either way; the RFC 4231 self-check
    below pins it.
    """
    if len(key) > BLOCK_SIZE:
        key = ref_sha256(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")
    inner = bytes(b ^ 0x36 for b in key)
    outer = bytes(b ^ 0x5C for b in key)
    return ref_sha256(outer + ref_sha256(inner + message))


def ref_channel_hmac(key: bytes, message: bytes) -> bytes:
    """The pre-overhaul ``hmac_sha256`` verbatim: full ipad/opad key
    preparation on every call, digests delegated to :mod:`hashlib`.

    This is the *cost model* the channel's reference mode replays for
    record MACs — the pre-PR record layer hashed with C-speed digests
    but re-prepared the key per record.  For kernel-localised
    differential checks use :func:`ref_hmac_sha256` instead.
    """
    if len(key) > BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(BLOCK_SIZE, b"\x00")
    inner = bytes(b ^ 0x36 for b in key)
    outer = bytes(b ^ 0x5C for b in key)
    return hashlib.sha256(
        outer + hashlib.sha256(inner + message).digest()
    ).digest()


def ref_constant_time_eq(a: bytes, b: bytes) -> bool:
    """The original hand-rolled zip-loop comparison from the channel."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


# ---------------------------------------------------------------------------
# Import-time known-answer pins.  If any of these fail the oracle itself
# is broken and no differential result can be trusted, so fail loudly.
# ---------------------------------------------------------------------------


def _self_check() -> None:
    # FIPS-197 appendix C.3 (AES-256).
    key = bytes(range(32))
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    ct = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
    if RefAes(key).encrypt_block(pt) != ct:
        raise AssertionError("RefAes failed the FIPS-197 known answer")
    # FIPS 180-4: SHA-256("abc").
    if ref_sha256(b"abc") != bytes.fromhex(
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    ):
        raise AssertionError("RefSHA256 failed the FIPS 180-4 known answer")
    # RFC 4231 test case 2.
    if ref_hmac_sha256(b"Jefe", b"what do ya want for nothing?") != bytes.fromhex(
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    ):
        raise AssertionError("ref_hmac_sha256 failed the RFC 4231 known answer")


_self_check()
