"""HMAC-SHA256 and a deterministic HMAC-DRBG (NIST SP 800-90A).

The DRBG is the single source of randomness for the whole reproduction:
RSA keygen, AES session keys, workload generation, and the simulated
hardware's device keys all draw from seeded instances, which makes every
experiment bit-for-bit reproducible.
"""

from __future__ import annotations

from .sha256 import BLOCK_SIZE, DIGEST_SIZE, sha256_fast

__all__ = ["hmac_sha256", "HmacDrbg"]


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104, built on our SHA-256 primitive."""
    if len(key) > BLOCK_SIZE:
        key = sha256_fast(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")
    inner = bytes(b ^ 0x36 for b in key)
    outer = bytes(b ^ 0x5C for b in key)
    return sha256_fast(outer + sha256_fast(inner + message))


class HmacDrbg:
    """Deterministic random bit generator (HMAC-DRBG, SHA-256 variant).

    >>> drbg = HmacDrbg(b"seed")
    >>> drbg.generate(8) == HmacDrbg(b"seed").generate(8)
    True
    """

    #: SP 800-90A reseed interval; generous for our workloads.
    RESEED_INTERVAL = 1 << 32

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        self._key = b"\x00" * DIGEST_SIZE
        self._value = b"\x01" * DIGEST_SIZE
        self._reseed_counter = 1
        self._update(seed + personalization)

    def _update(self, provided: bytes | None = None) -> None:
        data = provided or b""
        self._key = hmac_sha256(self._key, self._value + b"\x00" + data)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + data)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, n: int) -> bytes:
        """Return *n* pseudorandom bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        if self._reseed_counter > self.RESEED_INTERVAL:
            raise RuntimeError("DRBG reseed required")
        out = bytearray()
        while len(out) < n:
            self._value = hmac_sha256(self._key, self._value)
            out += self._value
        self._update()
        self._reseed_counter += 1
        return bytes(out[:n])

    # Convenience helpers used throughout the toolchain and simulator. ----

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive), rejection-sampled."""
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        nbytes = (span.bit_length() + 7) // 8 + 1
        limit = (1 << (8 * nbytes)) - (1 << (8 * nbytes)) % span
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            if candidate < limit:
                return lo + candidate % span

    def randbits(self, k: int) -> int:
        """Integer with exactly *k* random bits (top bit may be 0)."""
        if k <= 0:
            raise ValueError("k must be positive")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.generate(nbytes), "big")
        return value >> (8 * nbytes - k)

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child DRBG bound to *label*."""
        return HmacDrbg(self.generate(DIGEST_SIZE), personalization=label)
