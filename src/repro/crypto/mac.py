"""HMAC-SHA256 and a deterministic HMAC-DRBG (NIST SP 800-90A).

The DRBG is the single source of randomness for the whole reproduction:
RSA keygen, AES session keys, workload generation, and the simulated
hardware's device keys all draw from seeded instances, which makes every
experiment bit-for-bit reproducible.

HMAC here is midstate-cached: preparing a key costs two compression
calls (the ipad/opad blocks), after which every MAC under that key is
two state clones plus the message compressions.  The record layer MACs
thousands of records under four fixed session keys per provisioning run,
so this is the difference between "key preparation dominates" and "the
message itself dominates".  Outputs are byte-identical to the frozen
:func:`repro.crypto.ref.ref_hmac_sha256` oracle (RFC 4231-pinned).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from .sha256 import BLOCK_SIZE, DIGEST_SIZE, sha256_fast

__all__ = ["hmac_sha256", "HmacKey", "hmac_key", "constant_time_eq", "HmacDrbg"]

_IPAD_TAB = bytes(b ^ 0x36 for b in range(256))
_OPAD_TAB = bytes(b ^ 0x5C for b in range(256))


class HmacKey:
    """Prepared HMAC-SHA256 key: cloneable inner/outer midstates."""

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes) -> None:
        if len(key) > BLOCK_SIZE:
            key = sha256_fast(key)
        block = key.ljust(BLOCK_SIZE, b"\x00")
        self._inner = hashlib.sha256(block.translate(_IPAD_TAB))
        self._outer = hashlib.sha256(block.translate(_OPAD_TAB))

    def mac(self, *parts: bytes) -> bytes:
        """HMAC over the concatenation of *parts* (no join is performed)."""
        inner = self._inner.copy()
        for part in parts:
            inner.update(part)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()


_KEY_CACHE: "OrderedDict[bytes, HmacKey]" = OrderedDict()
_KEY_CACHE_CAP = 256
_KEY_CACHE_LOCK = threading.Lock()


def hmac_key(key: bytes) -> HmacKey:
    """Return a (cached) prepared key; safe because keystreams are not —
    only midstates of public-structure padding blocks are stored."""
    key = bytes(key)
    with _KEY_CACHE_LOCK:
        prepared = _KEY_CACHE.get(key)
        if prepared is not None:
            _KEY_CACHE.move_to_end(key)
            return prepared
    prepared = HmacKey(key)
    with _KEY_CACHE_LOCK:
        _KEY_CACHE[key] = prepared
        if len(_KEY_CACHE) > _KEY_CACHE_CAP:
            _KEY_CACHE.popitem(last=False)
    return prepared


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104, built on our SHA-256 primitive."""
    return hmac_key(key).mac(message)


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Constant-time equality for fixed-length tags.

    The length check returns early by design: record tag lengths are
    public protocol constants, so a mismatch leaks nothing.  For equal
    lengths the comparison runs in time independent of *where* the
    buffers differ — one wide XOR accumulator over the whole width, no
    data-dependent short-circuit.  Shared by the channel's record MACs
    and any future tag checks (one implementation to audit).
    """
    if len(a) != len(b):
        return False
    return int.from_bytes(a, "big") ^ int.from_bytes(b, "big") == 0


class HmacDrbg:
    """Deterministic random bit generator (HMAC-DRBG, SHA-256 variant).

    >>> drbg = HmacDrbg(b"seed")
    >>> drbg.generate(8) == HmacDrbg(b"seed").generate(8)
    True
    """

    #: SP 800-90A reseed interval; generous for our workloads.
    RESEED_INTERVAL = 1 << 32

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        self._key = b"\x00" * DIGEST_SIZE
        self._value = b"\x01" * DIGEST_SIZE
        self._reseed_counter = 1
        self._update(seed + personalization)

    def _update(self, provided: bytes | None = None) -> None:
        # SP 800-90A HMAC_DRBG_Update: the second round runs whenever
        # provided_data was given — including an explicit empty string.
        # (`provided or b""` would collapse b"" into the None path and
        # silently skip the round; a regression test pins both paths.)
        data = b"" if provided is None else provided
        self._key = hmac_sha256(self._key, self._value + b"\x00" + data)
        self._value = hmac_sha256(self._key, self._value)
        if provided is not None:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + data)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, n: int) -> bytes:
        """Return *n* pseudorandom bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        if self._reseed_counter > self.RESEED_INTERVAL:
            raise RuntimeError("DRBG reseed required")
        out = bytearray()
        while len(out) < n:
            self._value = hmac_sha256(self._key, self._value)
            out += self._value
        self._update()
        self._reseed_counter += 1
        return bytes(out[:n])

    # Convenience helpers used throughout the toolchain and simulator. ----

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] (inclusive), rejection-sampled."""
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        nbytes = (span.bit_length() + 7) // 8 + 1
        limit = (1 << (8 * nbytes)) - (1 << (8 * nbytes)) % span
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            if candidate < limit:
                return lo + candidate % span

    def randbits(self, k: int) -> int:
        """Integer with exactly *k* random bits (top bit may be 0)."""
        if k <= 0:
            raise ValueError("k must be positive")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.generate(nbytes), "big")
        return value >> (8 * nbytes - k)

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child DRBG bound to *label*."""
        return HmacDrbg(self.generate(DIGEST_SIZE), personalization=label)
