"""From-scratch AES (FIPS 197) with CBC and CTR modes.

The provisioning channel encrypts the client's binary with a 256-bit AES key
(paper section 3).  The S-box is derived from GF(2^8) inversion plus the
affine map at import time; single blocks use the classic 32-bit T-table
formulation, and bulk CTR keystream uses a *columnar* batch engine: the
state of W counter blocks is held as 16 position-major byte chunks so that
AddRoundKey+SubBytes collapse into one ``bytes.translate`` per chunk per
round (the round-key byte is fused into the translation table), ShiftRows
becomes a free chunk relabeling, and MixColumns runs as whole-chunk big-int
XORs plus one xtime translate.  That turns ~600 Python operations per block
into ~80 Python operations per *batch*, which is what lets pure Python
stream an Nginx-sized binary through the channel in well under a second.

Everything here is byte-identical to the frozen oracle in
:mod:`repro.crypto.ref`; the test suite and
``benchmarks/bench_provisioning.py`` enforce that, on top of the FIPS-197
known-answer vectors.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict

from ..errors import CryptoError

__all__ = [
    "Aes",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "aes_ctr",
    "ctr_xor",
    "pkcs7_pad",
    "pkcs7_unpad",
]

BLOCK = 16

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table construction.
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gmul(x, 3)
    exp[255] = exp[0]  # generator order is 255, so exp wraps

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = bytearray(256)
    for i in range(256):
        q = inv(i)
        s = q
        for shift in (1, 2, 3, 4):
            s ^= ((q << shift) | (q >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_MUL9 = bytes(_gmul(i, 9) for i in range(256))
_MUL11 = bytes(_gmul(i, 11) for i in range(256))
_MUL13 = bytes(_gmul(i, 13) for i in range(256))
_MUL14 = bytes(_gmul(i, 14) for i in range(256))
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)

# Encryption T-tables: T0[x] packs MixColumns(SubBytes(x)) for a byte in
# row 0 of a column; T1..T3 are byte rotations of T0.
_T0 = tuple(
    (_gmul(s, 2) << 24) | (s << 16) | (s << 8) | _gmul(s, 3) for s in _SBOX
)
_T1 = tuple(((t >> 8) | (t << 24)) & 0xFFFFFFFF for t in _T0)
_T2 = tuple(((t >> 16) | (t << 16)) & 0xFFFFFFFF for t in _T0)
_T3 = tuple(((t >> 24) | (t << 8)) & 0xFFFFFFFF for t in _T0)

# InvShiftRows source index for each position of the (column-major) state.
_INV_SHIFT = (0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3)

_WORDS = struct.Struct(">4I")

# --------------------------------------------------------------------------
# Columnar CTR batch-engine tables.
#
# The engine represents W counter blocks as 16 chunks of W bytes, chunk p
# holding byte p of every block.  AddRoundKey-then-SubBytes for a fixed
# round-key byte k is the single byte map x -> SBOX[x ^ k], precomposed as
# ``_XOR_TABS[k].translate(_SBOX)``; xtime (the GF(2^8) doubling inside
# MixColumns) is a byte map too.  ShiftRows only permutes *positions*, so
# on chunks it is a free relabeling through ``_SR_SRC``.
# --------------------------------------------------------------------------

_XTIME_TAB = bytes(_xtime(b) for b in range(256))
_XOR_TABS = tuple(bytes(b ^ k for b in range(256)) for k in range(256))
# _SR_SRC[p]: state position that ShiftRows moves into position p
# (position p = 4*column + row, matching the block's byte order).
_SR_SRC = tuple((p % 4) + 4 * (((p // 4) + (p % 4)) % 4) for p in range(16))

_BYTE_RANGE = bytes(range(256))

#: below this many blocks the per-block T-table path wins (batch setup cost)
_BATCH_MIN_BLOCKS = 8
#: engine segment bound: caps chunk/bigint sizes during one batch pass
_SEGMENT_BLOCKS = 1 << 16


def _counter_chunk(j: int, counter0: int, nblocks: int) -> bytes:
    """Byte *j* (0 = most significant) of counters counter0..+nblocks-1."""
    shift = 8 * (7 - j)
    first = (counter0 >> shift) & 0xFF
    if shift >= 64 or (counter0 >> shift) == ((counter0 + nblocks - 1) >> shift):
        return bytes((first,)) * nblocks
    if shift == 0:
        lo = counter0 & 0xFF
        head = _BYTE_RANGE[lo:]
        if len(head) >= nblocks:
            return head[:nblocks]
        remaining = nblocks - len(head)
        return b"".join(
            (head, _BYTE_RANGE * (remaining // 256), _BYTE_RANGE[:remaining % 256])
        )
    # Runs of 2**shift identical bytes, clipped to the requested window.
    pieces = []
    c = counter0
    end = counter0 + nblocks
    while c < end:
        run_end = min((((c >> shift) + 1) << shift), end)
        pieces.append(bytes(((c >> shift) & 0xFF,)) * (run_end - c))
        c = run_end
    return b"".join(pieces)


class Aes:
    """AES block cipher for 128/192/256-bit keys."""

    #: process-wide schedule cache for :meth:`for_key` (sessions reuse a
    #: handful of derived keys; re-expanding per record dominated CTR cost)
    _KEY_CACHE: "OrderedDict[bytes, Aes]" = OrderedDict()
    _KEY_CACHE_CAP = 64
    _KEY_CACHE_LOCK = threading.Lock()

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._key_bytes = bytes(key)
        self._rk = self._expand_key(key)  # flat list of 32-bit words
        self._ctr_tables: tuple[list, list] | None = None  # lazy, CTR only

    @classmethod
    def for_key(cls, key: bytes) -> "Aes":
        """Return a (cached) cipher for *key*, reusing its key schedule."""
        key = bytes(key)
        cache = cls._KEY_CACHE
        with cls._KEY_CACHE_LOCK:
            cipher = cache.get(key)
            if cipher is not None:
                cache.move_to_end(key)
                return cipher
        cipher = cls(key)
        with cls._KEY_CACHE_LOCK:
            cache[key] = cipher
            if len(cache) > cls._KEY_CACHE_CAP:
                cache.popitem(last=False)
        return cipher

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        rk = self._rk
        s0, s1, s2, s3 = _WORDS.unpack(block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        t0_tab, t1_tab, t2_tab, t3_tab = _T0, _T1, _T2, _T3
        for r in range(1, self.rounds):
            k = 4 * r
            t0 = (t0_tab[s0 >> 24] ^ t1_tab[(s1 >> 16) & 0xFF]
                  ^ t2_tab[(s2 >> 8) & 0xFF] ^ t3_tab[s3 & 0xFF] ^ rk[k])
            t1 = (t0_tab[s1 >> 24] ^ t1_tab[(s2 >> 16) & 0xFF]
                  ^ t2_tab[(s3 >> 8) & 0xFF] ^ t3_tab[s0 & 0xFF] ^ rk[k + 1])
            t2 = (t0_tab[s2 >> 24] ^ t1_tab[(s3 >> 16) & 0xFF]
                  ^ t2_tab[(s0 >> 8) & 0xFF] ^ t3_tab[s1 & 0xFF] ^ rk[k + 2])
            t3 = (t0_tab[s3 >> 24] ^ t1_tab[(s0 >> 16) & 0xFF]
                  ^ t2_tab[(s1 >> 8) & 0xFF] ^ t3_tab[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        sbox = _SBOX
        o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
        o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
        return _WORDS.pack(o0, o1, o2, o3)

    def decrypt_block(self, block: bytes) -> bytes:
        # Decryption is off the hot path (the channel uses CTR, which only
        # ever encrypts), so the straightforward byte-wise form is kept.
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        round_keys = [
            _WORDS.pack(*self._rk[4 * r:4 * r + 4]) for r in range(self.rounds + 1)
        ]
        state = bytes(a ^ b for a, b in zip(block, round_keys[self.rounds]))
        for rnd in range(self.rounds - 1, 0, -1):
            state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
            state = bytes(a ^ b for a, b in zip(state, round_keys[rnd]))
            out = bytearray(16)
            for c in range(0, 16, 4):
                s0, s1, s2, s3 = state[c:c + 4]
                out[c] = _MUL14[s0] ^ _MUL11[s1] ^ _MUL13[s2] ^ _MUL9[s3]
                out[c + 1] = _MUL9[s0] ^ _MUL14[s1] ^ _MUL11[s2] ^ _MUL13[s3]
                out[c + 2] = _MUL13[s0] ^ _MUL9[s1] ^ _MUL14[s2] ^ _MUL11[s3]
                out[c + 3] = _MUL11[s0] ^ _MUL13[s1] ^ _MUL9[s2] ^ _MUL14[s3]
            state = bytes(out)
        state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
        return bytes(a ^ b for a, b in zip(state, round_keys[0]))

    # ------------------------------------------------- columnar CTR engine

    def _batch_tables(self) -> tuple[list, list]:
        """Per-key fused round tables for the columnar engine (lazy).

        ``T[r][p]`` maps an input byte x at position p to
        ``SBOX[x ^ rk_{r-1}[p]]`` — the whole AddRoundKey+SubBytes step of
        round r as one translation; ``F[p]`` additionally folds in the
        final round key, so the last round is a single translate per chunk.
        """
        tables = self._ctr_tables
        if tables is not None:
            return tables
        rounds = self.rounds
        rkb = [
            _WORDS.pack(*self._rk[4 * r:4 * r + 4]) for r in range(rounds + 1)
        ]
        T: list = [None]
        for r in range(1, rounds + 1):
            T.append([_XOR_TABS[rkb[r - 1][p]].translate(_SBOX) for p in range(16)])
        F = [
            T[rounds][_SR_SRC[p]].translate(_XOR_TABS[rkb[rounds][p]])
            for p in range(16)
        ]
        tables = (T, F)
        self._ctr_tables = tables
        return tables

    def _ctr_batch(self, nonce: bytes, ranges) -> bytes:
        """Keystream for one engine pass over *ranges* of counter blocks."""
        T, F = self._batch_tables()
        width = sum(n for _, n in ranges)
        if len(ranges) == 1:
            counter0, nblocks = ranges[0]
            chunks = [_counter_chunk(j, counter0, nblocks) for j in range(8)]
        else:
            chunks = [
                b"".join(_counter_chunk(j, c0, n) for c0, n in ranges)
                for j in range(8)
            ]
        B = [bytes((nonce[p],)) * width for p in range(8)] + chunks
        frm = int.from_bytes
        xt = _XTIME_TAB
        for r in range(1, self.rounds):
            Tr = T[r]
            a = [frm(B[s].translate(Tr[s]), "big") for s in _SR_SRC]
            B = []
            for c4 in (0, 4, 8, 12):
                a0, a1, a2, a3 = a[c4], a[c4 + 1], a[c4 + 2], a[c4 + 3]
                t = a0 ^ a1 ^ a2 ^ a3
                B.append(
                    a0 ^ t
                    ^ frm((a0 ^ a1).to_bytes(width, "big").translate(xt), "big")
                )
                B.append(
                    a1 ^ t
                    ^ frm((a1 ^ a2).to_bytes(width, "big").translate(xt), "big")
                )
                B.append(
                    a2 ^ t
                    ^ frm((a2 ^ a3).to_bytes(width, "big").translate(xt), "big")
                )
                B.append(
                    a3 ^ t
                    ^ frm((a3 ^ a0).to_bytes(width, "big").translate(xt), "big")
                )
            B = [v.to_bytes(width, "big") for v in B]
        out = bytearray(16 * width)
        for p in range(16):
            out[p::16] = B[_SR_SRC[p]].translate(F[p])
        return bytes(out)

    def ctr_keystream(self, nonce: bytes, initial_counter: int, nblocks: int) -> bytes:
        """*nblocks* blocks of CTR keystream starting at *initial_counter*.

        Byte-identical to encrypting successive ``nonce || counter`` blocks
        with :meth:`encrypt_block` (the reference formulation); the columnar
        engine only changes the cost, not the bytes.
        """
        if len(nonce) != 8:
            raise CryptoError("CTR nonce must be 8 bytes")
        if nblocks <= 0:
            return b""
        if initial_counter < 0 or initial_counter + nblocks > 1 << 64:
            raise CryptoError("CTR counter window exceeds 2**64")
        if nblocks < _BATCH_MIN_BLOCKS:
            encrypt = self.encrypt_block
            pack = struct.Struct(">Q").pack
            return b"".join(
                encrypt(nonce + pack(initial_counter + i)) for i in range(nblocks)
            )
        if nblocks <= _SEGMENT_BLOCKS:
            return self._ctr_batch(nonce, ((initial_counter, nblocks),))
        pieces = []
        done = 0
        while done < nblocks:
            step = min(_SEGMENT_BLOCKS, nblocks - done)
            pieces.append(
                self._ctr_batch(nonce, ((initial_counter + done, step),))
            )
            done += step
        return b"".join(pieces)

    def warm_ctr_ranges(self, nonce: bytes, ranges) -> None:
        """Precompute keystream for many (counter, nblocks) ranges at once.

        One engine pass amortises the per-batch setup over a whole content
        stream; each range's keystream is published to the process-wide
        memo so both the sending and the receiving endpoint (and any
        retransmit) reuse it instead of recomputing.
        """
        if len(nonce) != 8:
            raise CryptoError("CTR nonce must be 8 bytes")
        todo = []
        for counter0, nblocks in ranges:
            if nblocks <= 0:
                continue
            if counter0 < 0 or counter0 + nblocks > 1 << 64:
                raise CryptoError("CTR counter window exceeds 2**64")
            if _memo_get(self._key_bytes, nonce, counter0, nblocks) is None:
                todo.append((counter0, int(nblocks)))
        while todo:
            group = []
            total = 0
            while todo and total + todo[0][1] <= _SEGMENT_BLOCKS:
                rng = todo.pop(0)
                group.append(rng)
                total += rng[1]
            if not group:  # single range larger than one segment
                rng = todo.pop(0)
                stream = self.ctr_keystream(nonce, rng[0], rng[1])
                _memo_put(self._key_bytes, nonce, rng[0], rng[1], stream)
                continue
            stream = self._ctr_batch(nonce, tuple(group))
            offset = 0
            for counter0, nblocks in group:
                size = nblocks * BLOCK
                _memo_put(
                    self._key_bytes, nonce, counter0, nblocks,
                    stream[offset:offset + size],
                )
                offset += size


# ---------------------------------------------------------------------------
# Cross-endpoint keystream memo.
#
# Both provisioning endpoints run in this process and CTR keystream is a
# pure function of (key, nonce, counter, length), so the stream computed by
# the sender can be reused verbatim by the receiver (and by ARQ
# retransmits, which are *required* to be byte-identical).  Bounded LRU;
# entries are page-sized record streams.
# ---------------------------------------------------------------------------

_KS_MEMO: "OrderedDict[tuple, bytes]" = OrderedDict()
_KS_MEMO_CAP = 512
_KS_MEMO_LOCK = threading.Lock()
#: don't bother memoising tiny records (handshake/verdict-sized)
_MEMO_MIN_BLOCKS = 4


def _memo_get(key: bytes, nonce: bytes, counter0: int, nblocks: int):
    token = (key, nonce, counter0, nblocks)
    with _KS_MEMO_LOCK:
        stream = _KS_MEMO.get(token)
        if stream is not None:
            _KS_MEMO.move_to_end(token)
        return stream


def _memo_put(key: bytes, nonce: bytes, counter0: int, nblocks: int, stream: bytes) -> None:
    token = (key, nonce, counter0, nblocks)
    with _KS_MEMO_LOCK:
        _KS_MEMO[token] = stream
        _KS_MEMO.move_to_end(token)
        while len(_KS_MEMO) > _KS_MEMO_CAP:
            _KS_MEMO.popitem(last=False)


# ---------------------------------------------------------------------------
# Modes of operation.
# ---------------------------------------------------------------------------


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a multiple of the AES block size (always adds 1..16 bytes)."""
    pad = BLOCK - len(data) % BLOCK
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, raising :class:`CryptoError` if malformed."""
    if not data or len(data) % BLOCK:
        raise CryptoError("padded data must be a non-empty block multiple")
    pad = data[-1]
    if not 1 <= pad <= BLOCK or data[-pad:] != bytes([pad]) * pad:
        raise CryptoError("bad PKCS#7 padding")
    return data[:-pad]


def aes_cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt with PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise CryptoError("IV must be 16 bytes")
    cipher = Aes(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(data), BLOCK):
        block = bytes(a ^ b for a, b in zip(data[i:i + BLOCK], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def aes_cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise CryptoError("IV must be 16 bytes")
    if not ciphertext or len(ciphertext) % BLOCK:
        raise CryptoError("ciphertext must be a non-empty block multiple")
    cipher = Aes(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK):
        block = ciphertext[i:i + BLOCK]
        out += bytes(a ^ b for a, b in zip(cipher.decrypt_block(block), prev))
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_xor(
    cipher: Aes, nonce: bytes, data, initial_counter: int = 0
) -> bytes:
    """CTR keystream XOR using an already-expanded cipher object.

    The record layer holds one :class:`Aes` per direction and calls this
    per record; the keystream memo turns the receive side of an in-process
    exchange (and ARQ retransmits) into a lookup.
    """
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    nbytes = len(data)
    if nbytes == 0:
        return b""
    nblocks = (nbytes + BLOCK - 1) // BLOCK
    stream = None
    if nblocks >= _MEMO_MIN_BLOCKS:
        stream = _memo_get(cipher._key_bytes, nonce, initial_counter, nblocks)
        if stream is None:
            stream = cipher.ctr_keystream(nonce, initial_counter, nblocks)
            _memo_put(cipher._key_bytes, nonce, initial_counter, nblocks, stream)
    else:
        stream = cipher.ctr_keystream(nonce, initial_counter, nblocks)
    # One wide XOR via big integers beats a per-byte loop by ~50x.
    mask = int.from_bytes(memoryview(stream)[:nbytes], "big")
    value = int.from_bytes(data, "big") ^ mask
    return value.to_bytes(nbytes, "big")


def ctr_xor_into(
    cipher: Aes,
    nonce: bytes,
    data,
    out: bytearray,
    out_offset: int,
    initial_counter: int = 0,
) -> int:
    """:func:`ctr_xor` writing the result into *out* at *out_offset*.

    The streamed receive path decrypts each record straight into the
    preallocated content buffer, skipping both the intermediate plaintext
    ``bytes`` object and the final join copy.  Keystream sourcing (memo,
    segmenting, counters) is shared with :func:`ctr_xor`, so the decrypted
    bytes are identical.  Returns the number of bytes written.
    """
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    nbytes = len(data)
    if nbytes == 0:
        return 0
    nblocks = (nbytes + BLOCK - 1) // BLOCK
    if nblocks >= _MEMO_MIN_BLOCKS:
        stream = _memo_get(cipher._key_bytes, nonce, initial_counter, nblocks)
        if stream is None:
            stream = cipher.ctr_keystream(nonce, initial_counter, nblocks)
            _memo_put(cipher._key_bytes, nonce, initial_counter, nblocks, stream)
    else:
        stream = cipher.ctr_keystream(nonce, initial_counter, nblocks)
    mask = int.from_bytes(memoryview(stream)[:nbytes], "big")
    value = int.from_bytes(data, "big") ^ mask
    out[out_offset:out_offset + nbytes] = value.to_bytes(nbytes, "big")
    return nbytes


def aes_ctr(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 0) -> bytes:
    """CTR-mode keystream XOR (encryption and decryption are identical).

    *nonce* is 8 bytes; the counter occupies the high bits of the low
    quadword of each counter block.
    """
    if len(key) not in (16, 24, 32):
        raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
    return ctr_xor(Aes.for_key(key), nonce, data, initial_counter)
