"""From-scratch AES (FIPS 197) with CBC and CTR modes.

The provisioning channel encrypts the client's binary with a 256-bit AES key
(paper section 3).  The S-box is derived from GF(2^8) inversion plus the
affine map at import time; the encryption path uses the classic 32-bit
T-table formulation so that pure Python sustains a few MiB/s, enough to
provision even the largest paper workload (Nginx, ~1.3 MiB of text) quickly.

Verified against the FIPS-197 known-answer vectors in the test suite.
"""

from __future__ import annotations

import struct

from ..errors import CryptoError

__all__ = [
    "Aes",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "aes_ctr",
    "pkcs7_pad",
    "pkcs7_unpad",
]

BLOCK = 16

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table construction.
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gmul(x, 3)
    exp[255] = exp[0]  # generator order is 255, so exp wraps

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = bytearray(256)
    for i in range(256):
        q = inv(i)
        s = q
        for shift in (1, 2, 3, 4):
            s ^= ((q << shift) | (q >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_MUL9 = bytes(_gmul(i, 9) for i in range(256))
_MUL11 = bytes(_gmul(i, 11) for i in range(256))
_MUL13 = bytes(_gmul(i, 13) for i in range(256))
_MUL14 = bytes(_gmul(i, 14) for i in range(256))
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)

# Encryption T-tables: T0[x] packs MixColumns(SubBytes(x)) for a byte in
# row 0 of a column; T1..T3 are byte rotations of T0.
_T0 = tuple(
    (_gmul(s, 2) << 24) | (s << 16) | (s << 8) | _gmul(s, 3) for s in _SBOX
)
_T1 = tuple(((t >> 8) | (t << 24)) & 0xFFFFFFFF for t in _T0)
_T2 = tuple(((t >> 16) | (t << 16)) & 0xFFFFFFFF for t in _T0)
_T3 = tuple(((t >> 24) | (t << 8)) & 0xFFFFFFFF for t in _T0)

# InvShiftRows source index for each position of the (column-major) state.
_INV_SHIFT = (0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3)

_WORDS = struct.Struct(">4I")


class Aes:
    """AES block cipher for 128/192/256-bit keys."""

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._rk = self._expand_key(key)  # flat list of 32-bit words

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = list(struct.unpack(f">{nk}I", key))
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[temp >> 24] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        rk = self._rk
        s0, s1, s2, s3 = _WORDS.unpack(block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        t0_tab, t1_tab, t2_tab, t3_tab = _T0, _T1, _T2, _T3
        for r in range(1, self.rounds):
            k = 4 * r
            t0 = (t0_tab[s0 >> 24] ^ t1_tab[(s1 >> 16) & 0xFF]
                  ^ t2_tab[(s2 >> 8) & 0xFF] ^ t3_tab[s3 & 0xFF] ^ rk[k])
            t1 = (t0_tab[s1 >> 24] ^ t1_tab[(s2 >> 16) & 0xFF]
                  ^ t2_tab[(s3 >> 8) & 0xFF] ^ t3_tab[s0 & 0xFF] ^ rk[k + 1])
            t2 = (t0_tab[s2 >> 24] ^ t1_tab[(s3 >> 16) & 0xFF]
                  ^ t2_tab[(s0 >> 8) & 0xFF] ^ t3_tab[s1 & 0xFF] ^ rk[k + 2])
            t3 = (t0_tab[s3 >> 24] ^ t1_tab[(s0 >> 16) & 0xFF]
                  ^ t2_tab[(s1 >> 8) & 0xFF] ^ t3_tab[s2 & 0xFF] ^ rk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        k = 4 * self.rounds
        sbox = _SBOX
        o0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[k]
        o1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[k + 1]
        o2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[k + 2]
        o3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[k + 3]
        return _WORDS.pack(o0, o1, o2, o3)

    def decrypt_block(self, block: bytes) -> bytes:
        # Decryption is off the hot path (the channel uses CTR, which only
        # ever encrypts), so the straightforward byte-wise form is kept.
        if len(block) != BLOCK:
            raise CryptoError("AES block must be 16 bytes")
        round_keys = [
            _WORDS.pack(*self._rk[4 * r:4 * r + 4]) for r in range(self.rounds + 1)
        ]
        state = bytes(a ^ b for a, b in zip(block, round_keys[self.rounds]))
        for rnd in range(self.rounds - 1, 0, -1):
            state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
            state = bytes(a ^ b for a, b in zip(state, round_keys[rnd]))
            out = bytearray(16)
            for c in range(0, 16, 4):
                s0, s1, s2, s3 = state[c:c + 4]
                out[c] = _MUL14[s0] ^ _MUL11[s1] ^ _MUL13[s2] ^ _MUL9[s3]
                out[c + 1] = _MUL9[s0] ^ _MUL14[s1] ^ _MUL11[s2] ^ _MUL13[s3]
                out[c + 2] = _MUL13[s0] ^ _MUL9[s1] ^ _MUL14[s2] ^ _MUL11[s3]
                out[c + 3] = _MUL11[s0] ^ _MUL13[s1] ^ _MUL9[s2] ^ _MUL14[s3]
            state = bytes(out)
        state = bytes(_INV_SBOX[state[_INV_SHIFT[i]]] for i in range(16))
        return bytes(a ^ b for a, b in zip(state, round_keys[0]))


# ---------------------------------------------------------------------------
# Modes of operation.
# ---------------------------------------------------------------------------


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a multiple of the AES block size (always adds 1..16 bytes)."""
    pad = BLOCK - len(data) % BLOCK
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, raising :class:`CryptoError` if malformed."""
    if not data or len(data) % BLOCK:
        raise CryptoError("padded data must be a non-empty block multiple")
    pad = data[-1]
    if not 1 <= pad <= BLOCK or data[-pad:] != bytes([pad]) * pad:
        raise CryptoError("bad PKCS#7 padding")
    return data[:-pad]


def aes_cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt with PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise CryptoError("IV must be 16 bytes")
    cipher = Aes(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(data), BLOCK):
        block = bytes(a ^ b for a, b in zip(data[i:i + BLOCK], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def aes_cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != BLOCK:
        raise CryptoError("IV must be 16 bytes")
    if not ciphertext or len(ciphertext) % BLOCK:
        raise CryptoError("ciphertext must be a non-empty block multiple")
    cipher = Aes(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK):
        block = ciphertext[i:i + BLOCK]
        out += bytes(a ^ b for a, b in zip(cipher.decrypt_block(block), prev))
        prev = block
    return pkcs7_unpad(bytes(out))


def aes_ctr(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 0) -> bytes:
    """CTR-mode keystream XOR (encryption and decryption are identical).

    *nonce* is 8 bytes; the counter occupies the high bits of the low
    quadword of each counter block.
    """
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    cipher = Aes(key)
    nblocks = (len(data) + BLOCK - 1) // BLOCK
    keystream = bytearray(nblocks * BLOCK)
    encrypt = cipher.encrypt_block
    pack = struct.Struct(">Q").pack
    for i in range(nblocks):
        keystream[i * BLOCK:(i + 1) * BLOCK] = encrypt(
            nonce + pack(initial_counter + i)
        )
    # One wide XOR via big integers beats a per-byte loop by ~50x.
    mask = int.from_bytes(keystream[:len(data)], "big")
    value = int.from_bytes(data, "big") ^ mask
    return value.to_bytes(len(data), "big")
