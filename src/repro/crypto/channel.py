"""The provisioning channel: RSA key exchange + authenticated AES transport.

Mirrors the protocol in the paper (section 3, "Overall Design"):

1. The bootstrap code in the fresh enclave generates an RSA key pair and
   sends the public key to the client (its fingerprint is also embedded in
   the attestation quote, binding the key to the measured enclave).
2. The client generates a 256-bit AES session key, encrypts it under the
   enclave's public key, and sends it back.
3. All subsequent content flows as encrypted blocks.  We use AES-CTR with
   an HMAC-SHA256 tag per record (encrypt-then-MAC) and a strictly
   monotonic sequence number, giving the "encrypted, authenticated channel"
   the paper requires.

Both endpoints share the :class:`SecureChannel` record layer; the handshake
helpers :func:`server_handshake` / :func:`client_handshake` run the key
exchange over a :class:`~repro.net.SimSocket`.

The record layer has two modes producing byte-identical wire traffic:
``optimized=True`` (the default) holds per-direction expanded AES
schedules and HMAC midstates for the whole session and assembles records
from memoryviews; ``optimized=False`` re-derives everything per record
through the frozen :mod:`repro.crypto.ref` oracles — the pre-overhaul
cost model, kept as the differential baseline.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass

from ..errors import CryptoError, ProtocolError
from ..faults.hooks import DROP, fault_hook
from ..net import SimSocket
from .aes import _MEMO_MIN_BLOCKS, Aes, ctr_xor, ctr_xor_into
from .mac import HmacDrbg, HmacKey, constant_time_eq, hmac_sha256
from .ref import ref_aes_ctr, ref_channel_hmac
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair

__all__ = [
    "SecureChannel",
    "ServerHandshake",
    "client_handshake",
    "AES_KEY_SIZE",
    "DEFAULT_RSA_BITS",
]

AES_KEY_SIZE = 32  # 256-bit AES, as in the paper
DEFAULT_RSA_BITS = 2048
TAG_SIZE = 32
_HDR = struct.Struct(">QI")  # sequence number, payload length

# Key-exchange message types.
_MSG_PUBKEY = b"EG-PUBKEY"
_MSG_KEYWRAP = b"EG-KEYWRAP"


@dataclass(frozen=True)
class _Record:
    seq: int
    payload: bytes


class SecureChannel:
    """Authenticated-encryption record layer over a :class:`SimSocket`.

    Each direction derives its own AES-CTR nonce and MAC key from the
    session key, so records cannot be reflected back to their sender.
    """

    #: payloads kept for :meth:`resend_from` (bounds retransmit memory)
    RESEND_WINDOW = 64

    def __init__(
        self,
        sock: SimSocket,
        session_key: bytes,
        *,
        is_server: bool,
        optimized: bool = True,
    ) -> None:
        if len(session_key) != AES_KEY_SIZE:
            raise CryptoError(f"session key must be {AES_KEY_SIZE} bytes")
        self._sock = sock
        self._send_seq = 0
        self._recv_seq = 0
        self.optimized = optimized
        #: (seq, plaintext payload) of the most recent sends
        self._sent_window: deque[tuple[int, bytes]] = deque(maxlen=self.RESEND_WINDOW)
        send_label, recv_label = (b"srv->cli", b"cli->srv") if is_server else (b"cli->srv", b"srv->cli")
        self._send_key = hmac_sha256(session_key, b"enc" + send_label)
        self._recv_key = hmac_sha256(session_key, b"enc" + recv_label)
        self._send_mac = hmac_sha256(session_key, b"mac" + send_label)
        self._recv_mac = hmac_sha256(session_key, b"mac" + recv_label)
        self._send_nonce = hmac_sha256(session_key, b"nonce" + send_label)[:8]
        self._recv_nonce = hmac_sha256(session_key, b"nonce" + recv_label)[:8]
        # Session-lifetime cipher state: expanded AES schedules and HMAC
        # midstates per direction.  The reference path derives these per
        # record instead; both emit identical bytes.
        self._send_aes = Aes.for_key(self._send_key)
        self._recv_aes = Aes.for_key(self._recv_key)
        self._send_hmac = HmacKey(self._send_mac)
        self._recv_hmac = HmacKey(self._recv_mac)

    # Each record gets a disjoint CTR-counter window: 2**20 blocks (16 MiB)
    # per sequence number, far above the socket frame limit per record.
    _CTR_WINDOW = 1 << 20

    def send(self, payload: bytes) -> None:
        """Encrypt, authenticate, and transmit one record."""
        self._sent_window.append((self._send_seq, payload))
        self._transmit(self._send_seq, payload)
        self._send_seq += 1

    def warm_send_keystream(self, lengths) -> None:
        """Precompute the CTR keystream for the next ``len(lengths)`` sends.

        *lengths* are upcoming payload sizes in order.  One columnar batch
        pass covers the whole stream; the per-record keystreams land in the
        process-wide memo where this channel's sends, the peer's receives,
        and any ARQ retransmit pick them up.  A no-op in reference mode.
        """
        if not self.optimized:
            return
        ranges = []
        seq = self._send_seq
        for i, length in enumerate(lengths):
            nblocks = -(-int(length) // 16)
            if nblocks >= _MEMO_MIN_BLOCKS:
                ranges.append(((seq + i) * self._CTR_WINDOW, nblocks))
        if ranges:
            self._send_aes.warm_ctr_ranges(self._send_nonce, ranges)

    def _transmit(self, seq: int, payload) -> None:
        header = _HDR.pack(seq, len(payload))
        if self.optimized:
            ciphertext = ctr_xor(
                self._send_aes, self._send_nonce, payload,
                initial_counter=seq * self._CTR_WINDOW,
            )
            tag = self._send_hmac.mac(header, ciphertext)
        else:
            ciphertext = ref_aes_ctr(
                self._send_key, self._send_nonce, bytes(payload),
                initial_counter=seq * self._CTR_WINDOW,
            )
            tag = ref_channel_hmac(self._send_mac, header + ciphertext)
        record = fault_hook(
            "crypto.channel.send", b"".join((header, ciphertext, tag)),
            error=CryptoError,
        )
        if record is DROP:
            return  # the record vanished in transit; the peer fails closed
        self._sock.send(record)

    def resend_from(self, seq: int) -> int:
        """Re-encrypt and re-transmit every buffered record from *seq* on.

        The retransmit half of the provisioning ARQ: a record re-encrypted
        under its original sequence number is byte-identical (CTR stream
        and MAC are functions of the sequence number), so replaying the
        window is safe.  Raises :class:`CryptoError` when *seq* has
        already slid out of the bounded window.  Returns the number of
        records re-sent.
        """
        if seq >= self._send_seq:
            return 0
        buffered = [entry for entry in self._sent_window if entry[0] >= seq]
        if not buffered or buffered[0][0] != seq:
            raise CryptoError(
                f"cannot retransmit from seq {seq}: outside the "
                f"{self.RESEND_WINDOW}-record resend window"
            )
        for record_seq, payload in buffered:
            self._transmit(record_seq, payload)
        return len(buffered)

    @property
    def expected_recv_seq(self) -> int:
        """The sequence number the next :meth:`recv` will insist on."""
        return self._recv_seq

    def drain_pending(self) -> int:
        """Flush queued frames after a broken record (pre-retransmit)."""
        return self._sock.drain()

    def recv(self) -> bytes:
        """Receive, verify, and decrypt one record."""
        record = fault_hook("crypto.channel.recv", self._sock.recv(),
                            error=CryptoError)
        if record is DROP:
            raise CryptoError(
                "[fault:crypto.channel.recv:drop] record lost before receipt"
            )
        if len(record) < _HDR.size + TAG_SIZE:
            raise CryptoError("record too short")
        if not self.optimized:
            return self._recv_reference(bytes(record))
        view = memoryview(record)
        header = view[:_HDR.size]
        ciphertext = view[_HDR.size:-TAG_SIZE]
        tag = view[-TAG_SIZE:]
        seq, length = _HDR.unpack(header)
        if seq != self._recv_seq:
            raise CryptoError(f"bad sequence number: expected {self._recv_seq}, got {seq}")
        expected = self._recv_hmac.mac(header, ciphertext)
        if not constant_time_eq(tag, expected):
            raise CryptoError("record MAC verification failed")
        if length != len(ciphertext):
            raise CryptoError("record length mismatch")
        self._recv_seq += 1
        return ctr_xor(
            self._recv_aes, self._recv_nonce, ciphertext,
            initial_counter=seq * self._CTR_WINDOW,
        )

    def recv_into(self, out: bytearray, offset: int) -> int:
        """:meth:`recv` decrypting straight into *out* at *offset*.

        The streamed provisioning loop preallocates one buffer for the
        announced content size and lands every record's plaintext in place:
        the session-lifetime HMAC midstates verify the record from
        memoryviews (no header/ciphertext copies) and the CTR XOR writes
        into the buffer, so the per-record path does zero redundant
        copies.  Wire handling (sequence, MAC, length checks, fault hook)
        is byte-for-byte the same as :meth:`recv`; reference-mode channels
        fall back to :meth:`recv` plus one slice-assign.  Returns the
        payload length.
        """
        record = fault_hook("crypto.channel.recv", self._sock.recv(),
                            error=CryptoError)
        if record is DROP:
            raise CryptoError(
                "[fault:crypto.channel.recv:drop] record lost before receipt"
            )
        if len(record) < _HDR.size + TAG_SIZE:
            raise CryptoError("record too short")
        if not self.optimized:
            payload = self._recv_reference(bytes(record))
            out[offset:offset + len(payload)] = payload
            return len(payload)
        view = memoryview(record)
        header = view[:_HDR.size]
        ciphertext = view[_HDR.size:-TAG_SIZE]
        tag = view[-TAG_SIZE:]
        seq, length = _HDR.unpack(header)
        if seq != self._recv_seq:
            raise CryptoError(f"bad sequence number: expected {self._recv_seq}, got {seq}")
        expected = self._recv_hmac.mac(header, ciphertext)
        if not constant_time_eq(tag, expected):
            raise CryptoError("record MAC verification failed")
        if length != len(ciphertext):
            raise CryptoError("record length mismatch")
        self._recv_seq += 1
        return ctr_xor_into(
            self._recv_aes, self._recv_nonce, ciphertext, out, offset,
            initial_counter=seq * self._CTR_WINDOW,
        )

    def _recv_reference(self, record: bytes) -> bytes:
        """Reference-mode record verification (pre-overhaul per-record cost)."""
        header = record[:_HDR.size]
        ciphertext = record[_HDR.size:-TAG_SIZE]
        tag = record[-TAG_SIZE:]
        seq, length = _HDR.unpack(header)
        if seq != self._recv_seq:
            raise CryptoError(f"bad sequence number: expected {self._recv_seq}, got {seq}")
        expected = ref_channel_hmac(self._recv_mac, header + ciphertext)
        if not constant_time_eq(tag, expected):
            raise CryptoError("record MAC verification failed")
        if length != len(ciphertext):
            raise CryptoError("record length mismatch")
        self._recv_seq += 1
        return ref_aes_ctr(
            self._recv_key, self._recv_nonce, ciphertext,
            initial_counter=seq * self._CTR_WINDOW,
        )


class ServerHandshake:
    """Enclave-side handshake, split into two phases.

    The simulation is single-threaded and protocol-driven, so the enclave
    first *sends* its public key (:meth:`send_public_key`), control returns
    to the client which wraps the session key, and the enclave then
    *completes* (:meth:`complete`) by unwrapping it:

    >>> hs = ServerHandshake(enclave_sock, rng, rsa_bits=512)   # doctest: +SKIP
    >>> keypair = hs.send_public_key()                          # doctest: +SKIP
    >>> channel, _ = client_handshake(client_sock, client_rng)  # doctest: +SKIP
    >>> enclave_channel = hs.complete()                         # doctest: +SKIP
    """

    def __init__(
        self,
        sock: SimSocket,
        rng: HmacDrbg,
        *,
        rsa_bits: int = DEFAULT_RSA_BITS,
        keypair: RsaPrivateKey | None = None,
        optimized: bool = True,
    ) -> None:
        self._sock = sock
        self._rng = rng
        self._rsa_bits = rsa_bits
        self._keypair = keypair
        self._sent = False
        self._optimized = optimized

    def send_public_key(self) -> RsaPrivateKey:
        """Phase 1: generate (if needed) and transmit the ephemeral key.

        Returns the private key so the caller can embed its public
        fingerprint in the attestation quote.
        """
        if self._sent:
            raise ProtocolError("public key already sent")
        if self._keypair is None:
            self._keypair = generate_keypair(self._rsa_bits, self._rng)
        pub = self._keypair.public_key
        n_bytes = pub.n.to_bytes(pub.size_bytes, "big")
        self._sock.send(_MSG_PUBKEY + struct.pack(">II", pub.e, len(n_bytes)) + n_bytes)
        self._sent = True
        return self._keypair

    def complete(self) -> SecureChannel:
        """Phase 2: receive the wrapped AES key and build the record layer."""
        if not self._sent:
            raise ProtocolError("must send the public key before completing")
        wrapped = self._sock.recv()
        if not wrapped.startswith(_MSG_KEYWRAP):
            raise ProtocolError("expected key-wrap message")
        assert self._keypair is not None
        session_key = self._keypair.decrypt(wrapped[len(_MSG_KEYWRAP):])
        if len(session_key) != AES_KEY_SIZE:
            raise ProtocolError(
                f"unwrapped session key has wrong size {len(session_key)}"
            )
        return SecureChannel(
            self._sock, session_key, is_server=True, optimized=self._optimized
        )


def client_handshake(
    sock: SimSocket,
    rng: HmacDrbg,
    *,
    expected_fingerprint: bytes | None = None,
    optimized: bool = True,
) -> tuple[SecureChannel, RsaPublicKey]:
    """Client-side handshake: receive the enclave key, wrap a fresh AES key.

    When *expected_fingerprint* is given (taken from a verified attestation
    quote), the received public key must match it — this is the binding that
    stops the cloud provider from inserting itself in the middle.
    """
    hello = sock.recv()
    if not hello.startswith(_MSG_PUBKEY):
        raise ProtocolError("expected public-key message")
    body = hello[len(_MSG_PUBKEY):]
    e, n_len = struct.unpack_from(">II", body)
    n = int.from_bytes(body[8:8 + n_len], "big")
    if len(body) != 8 + n_len:
        raise ProtocolError("malformed public-key message")
    pub = RsaPublicKey(n=n, e=e)
    if expected_fingerprint is not None and pub.fingerprint() != expected_fingerprint:
        raise ProtocolError("enclave public key does not match attested fingerprint")

    session_key = rng.generate(AES_KEY_SIZE)
    sock.send(_MSG_KEYWRAP + pub.encrypt(session_key, rng))
    return (
        SecureChannel(sock, session_key, is_server=False, optimized=optimized),
        pub,
    )
