"""Cryptographic substrate, implemented from scratch.

The paper's enclave bootstrap links OpenSSL's libcrypto/libssl (Figure 2
counts them at ~350 KLoC).  This package provides the slice of that
functionality EnGarde actually exercises: SHA-256, HMAC, a deterministic
DRBG, RSA with PKCS#1 v1.5-style padding, AES-256 with CBC/CTR modes, and
the provisioning channel protocol built from those pieces.
"""

from .aes import Aes, aes_cbc_decrypt, aes_cbc_encrypt, aes_ctr, pkcs7_pad, pkcs7_unpad
from .channel import (
    AES_KEY_SIZE,
    DEFAULT_RSA_BITS,
    SecureChannel,
    client_handshake,
    ServerHandshake,
)
from .mac import HmacDrbg, hmac_sha256
from .primes import generate_prime, is_probable_prime
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from .sha256 import SHA256, sha256, sha256_fast

__all__ = [
    "SHA256",
    "sha256",
    "sha256_fast",
    "hmac_sha256",
    "HmacDrbg",
    "is_probable_prime",
    "generate_prime",
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_keypair",
    "Aes",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "aes_ctr",
    "pkcs7_pad",
    "pkcs7_unpad",
    "SecureChannel",
    "ServerHandshake",
    "client_handshake",
    "AES_KEY_SIZE",
    "DEFAULT_RSA_BITS",
]
