"""From-scratch SHA-256 (FIPS 180-4).

EnGarde uses SHA-256 in three places: enclave measurement (EREPORT digests a
log of enclave-initialisation activity), the library-linking policy (hashes
of every musl-libc function), and HMAC/DRBG.  This module implements the
compression function directly so the reproduction does not silently depend on
OpenSSL; :class:`SHA256` is verified against :mod:`hashlib` in the test
suite.

For bulk hashing on hot paths callers may use :func:`sha256_fast`, which
delegates to :mod:`hashlib` (same algorithm, C speed).  Both produce
identical digests; tests assert this for arbitrary inputs.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["SHA256", "sha256", "sha256_fast", "BLOCK_SIZE", "DIGEST_SIZE"]

# The compression function is generated once at import time with every
# round unrolled over local variables (no schedule list, no rotr calls,
# round constants inlined as literals).  The generated code computes the
# exact FIPS 180-4 recurrence — same math, ~3x fewer bytecodes — and is
# pinned against both :mod:`hashlib` and the frozen loop implementation
# in :mod:`repro.crypto.ref` by the test suite.

BLOCK_SIZE = 64
DIGEST_SIZE = 32

# First 32 bits of the fractional parts of the cube roots of the first
# 64 primes (FIPS 180-4 section 4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _generate_compress():
    """Build the fully-unrolled compression function (see module docstring)."""

    def rotr(x: str, n: int) -> str:
        return f"({x}>>{n}|{x}<<{32 - n})"

    lines = [
        "def _compress(self, block):",
        "    " + ", ".join(f"w{i}" for i in range(16)) + " = _UNPACK16(block)",
    ]
    for i in range(16, 64):
        p, q = f"w{i - 15}", f"w{i - 2}"
        s0 = f"(({rotr(p, 7)}^{rotr(p, 18)})&{_MASK}^({p}>>3))"
        s1 = f"(({rotr(q, 17)}^{rotr(q, 19)})&{_MASK}^({q}>>10))"
        lines.append(
            f"    w{i} = (w{i - 16} + {s0} + w{i - 7} + {s1}) & {_MASK}"
        )
    names = "abcdefgh"
    lines.append("    a, b, c, d, e, f, g, h = self._h")
    for i in range(64):
        # Fixed variables, rotating roles: the variable playing role j in
        # round i is names[(j - i) % 8], so each round is two assignments.
        a, b, c, d, e, f, g, h = (names[(j - i) % 8] for j in range(8))
        s1 = f"(({rotr(e, 6)}^{rotr(e, 11)}^{rotr(e, 25)})&{_MASK})"
        ch = f"(({e}&{f})^(~{e}&{g}))"
        s0 = f"(({rotr(a, 2)}^{rotr(a, 13)}^{rotr(a, 22)})&{_MASK})"
        maj = f"(({a}&{b})^({a}&{c})^({b}&{c}))"
        lines.append(f"    t1 = {h} + {s1} + {ch} + {_K[i]} + w{i}")
        lines.append(f"    {d} = ({d} + t1) & {_MASK}")
        lines.append(f"    {h} = (t1 + {s0} + {maj}) & {_MASK}")
    lines.append("    hh = self._h")
    lines.append(
        "    self._h = ["
        + ", ".join(f"(hh[{j}] + {names[j]}) & {_MASK}" for j in range(8))
        + "]"
    )
    namespace = {"_UNPACK16": struct.Struct(">16I").unpack}
    exec(compile("\n".join(lines), "<sha256-compress>", "exec"), namespace)
    return namespace["_compress"]


class SHA256:
    """Incremental SHA-256, mirroring the :mod:`hashlib` interface."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_IV)
        self._buffer = bytearray()  # partial block, always < BLOCK_SIZE
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb *data* into the hash state.

        Copies nothing but the sub-block tail: full blocks are compressed
        straight out of the caller's buffer (bytes inputs are sliced
        directly; other bytes-like inputs through a memoryview), and the
        partial-block remainder is appended to a persistent bytearray
        rather than re-concatenated per call.
        """
        if type(data) is not bytes:
            if not isinstance(data, (bytes, bytearray, memoryview)):
                raise TypeError(f"expected bytes-like, got {type(data).__name__}")
            view = memoryview(data)
            if view.itemsize != 1:
                try:
                    view = view.cast("B")
                except TypeError:
                    view = memoryview(view.tobytes())
            data = view
        nbytes = len(data)
        self._length += nbytes
        buffer = self._buffer
        compress = self._compress
        start = 0
        if buffer:
            # Top up the pending partial block first.
            need = BLOCK_SIZE - len(buffer)
            if nbytes < need:
                buffer += data
                return
            buffer += data[:need]
            compress(buffer)
            buffer.clear()
            start = need
        end = start + ((nbytes - start) - (nbytes - start) % BLOCK_SIZE)
        for offset in range(start, end, BLOCK_SIZE):
            compress(data[offset:offset + BLOCK_SIZE])
        if end < nbytes:
            buffer += data[end:]

    def digest(self) -> bytes:
        """Return the digest of everything absorbed so far."""
        # Work on a copy so the caller can keep updating.
        clone = self.copy()
        bit_length = clone._length * 8
        pad_len = (55 - clone._length) % 64
        clone.update(b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_length))
        assert not clone._buffer
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def copy(self) -> "SHA256":
        clone = SHA256()
        clone._h = list(self._h)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        return clone

    # Unrolled FIPS 180-4 compression, generated at import (see above).
    _compress = _generate_compress()

    # ---------------------------------------------------------- midstates

    def midstate(self) -> tuple:
        """Snapshot of the absorbed state, resumable via :meth:`from_midstate`.

        Cheaper than :meth:`copy` when many continuations hang off one
        prefix (HMAC's per-key inner/outer states are the canonical use):
        the snapshot is immutable, so restoring never aliases the live
        hash object.
        """
        return (tuple(self._h), self._length, bytes(self._buffer))

    @classmethod
    def from_midstate(cls, state: tuple) -> "SHA256":
        """Rebuild a hash object that continues from a :meth:`midstate`."""
        h, length, buffer = state
        clone = cls()
        clone._h = list(h)
        clone._length = length
        clone._buffer = bytearray(buffer)
        return clone


def sha256(data: bytes) -> bytes:
    """One-shot digest using the from-scratch implementation."""
    return SHA256(data).digest()


def sha256_fast(data: bytes) -> bytes:
    """One-shot digest using :mod:`hashlib` (identical output, C speed)."""
    return hashlib.sha256(data).digest()
