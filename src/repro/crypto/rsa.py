"""Textbook-plus-padding RSA: keygen, PKCS#1 v1.5-style encrypt and sign.

EnGarde's provisioning channel (paper section 3, "Overall Design") has the
freshly-booted enclave generate a 2048-bit RSA key pair; the client wraps a
256-bit AES key under the enclave's public key.  The quoting enclave also
signs attestation quotes with a device key.  This module supplies both uses.

Padding follows the shape of PKCS#1 v1.5 (block type 02 for encryption with
non-zero random filler, block type 01 with 0xFF filler for signatures over a
SHA-256 DigestInfo).  It is implemented from scratch and is *not* intended to
resist real-world padding-oracle adversaries — the adversary in this
simulation is the simulated cloud provider, who never gets a decryption
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import CryptoError
from .mac import HmacDrbg
from .primes import generate_prime
from .sha256 import sha256_fast

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair"]

# DER prefix of a DigestInfo structure for SHA-256 (RFC 8017 section 9.2).
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

_MIN_PAD = 8  # PKCS#1 v1.5 minimum padding-string length


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def size_bits(self) -> int:
        return self.n.bit_length()

    def encrypt(self, plaintext: bytes, rng: HmacDrbg) -> bytes:
        """Encrypt *plaintext* with PKCS#1 v1.5 type-02 padding."""
        k = self.size_bytes
        if len(plaintext) > k - 3 - _MIN_PAD:
            raise CryptoError(
                f"plaintext too long for RSA-{self.size_bits}: "
                f"{len(plaintext)} > {k - 3 - _MIN_PAD} bytes"
            )
        pad_len = k - 3 - len(plaintext)
        filler = bytearray()
        while len(filler) < pad_len:
            filler += bytes(b for b in rng.generate(pad_len) if b != 0)
        block = b"\x00\x02" + bytes(filler[:pad_len]) + b"\x00" + plaintext
        c = pow(int.from_bytes(block, "big"), self.e, self.n)
        return c.to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5 SHA-256 signature.  Returns True/False."""
        k = self.size_bytes
        if len(signature) != k:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        block = pow(s, self.e, self.n).to_bytes(k, "big")
        expected = _signature_block(message, k)
        return block == expected

    def fingerprint(self) -> bytes:
        """SHA-256 fingerprint of the public key (used in attestation)."""
        n_bytes = self.n.to_bytes(self.size_bytes, "big")
        e_bytes = self.e.to_bytes(4, "big")
        return sha256_fast(b"rsa-public-key" + e_bytes + n_bytes)


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters for fast exponentiation."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @cached_property
    def _crt_params(self) -> tuple[int, int, int]:
        # (dp, dq, qinv), derived once per key.  ``cached_property``
        # stores into the instance ``__dict__`` directly, which a frozen
        # dataclass permits (only ``__setattr__`` is blocked).
        return (
            self.d % (self.p - 1),
            self.d % (self.q - 1),
            pow(self.q, -1, self.p),
        )

    def _private_op(self, c: int) -> int:
        # CRT: twice as fast as a single pow(c, d, n).
        dp, dq, qinv = self._crt_params
        m1 = pow(c % self.p, dp, self.p)
        m2 = pow(c % self.q, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and strip PKCS#1 v1.5 type-02 padding."""
        k = self.size_bytes
        if len(ciphertext) != k:
            raise CryptoError(f"ciphertext must be exactly {k} bytes")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.n:
            raise CryptoError("ciphertext out of range")
        block = self._private_op(c).to_bytes(k, "big")
        if block[:2] != b"\x00\x02":
            raise CryptoError("bad padding header")
        try:
            sep = block.index(b"\x00", 2)
        except ValueError:
            raise CryptoError("padding separator not found") from None
        if sep - 2 < _MIN_PAD:
            raise CryptoError("padding string too short")
        return block[sep + 1:]

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5 SHA-256 signature over *message*."""
        k = self.size_bytes
        block = _signature_block(message, k)
        s = self._private_op(int.from_bytes(block, "big"))
        return s.to_bytes(k, "big")


def _signature_block(message: bytes, k: int) -> bytes:
    digest_info = _SHA256_DIGEST_INFO + sha256_fast(message)
    pad_len = k - 3 - len(digest_info)
    if pad_len < _MIN_PAD:
        raise CryptoError(f"modulus too small for SHA-256 signature ({k} bytes)")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_info


def generate_keypair(bits: int, rng: HmacDrbg, e: int = 65537) -> RsaPrivateKey:
    """Generate an RSA key pair with an exactly *bits*-bit modulus."""
    if bits < 128:
        raise CryptoError("modulus must be at least 128 bits")
    if bits % 2:
        raise CryptoError("modulus size must be even")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; redraw
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
