"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro fig2
    python -m repro fig3 --scale 0.1
    python -m repro all --scale 1.0
    python -m repro demo            # one end-to-end provisioning run
    python -m repro inspect-batch --policy stack-protection --workers 4 \
        --repeats 3 --scale 0.1     # batched service + verdict cache
    python -m repro profile --scale 0.1 --top 20
                                    # cProfile the inspection hot path
    python -m repro chaos --seeds 0,1,2,3,4 --corpus-size 54
                                    # seeded fault-injection soak; exits
                                    # non-zero on any fail-closed violation
    python -m repro serve --port 0  # long-lived inspection daemon on TCP;
                                    # prints one JSON announce line, stops
                                    # gracefully on SIGTERM/SIGINT
    python -m repro serve --shards 4 --store /var/lib/engarde
                                    # sharded provider fleet, one TCP port
                                    # per shard, verdicts durable in the
                                    # shared content-addressed store
    python -m repro fleet-bench --shards 4 --clients 100
                                    # cold vs warm-restart fleet storm;
                                    # exits non-zero on any divergence
                                    # from the serial oracle or any hang
"""

from __future__ import annotations

import argparse
import sys
import time


def _figure(policy: str, number: int, scale: float, json_path: str | None) -> None:
    from .harness.export import cells_to_json
    from .harness.runner import run_figure
    from .harness.tables import render_comparison, render_figure

    titles = {
        3: "Figure 3: library-linking policy",
        4: "Figure 4: stack-protection policy",
        5: "Figure 5: IFCC policy",
    }
    t0 = time.time()
    results = run_figure(policy, scale=scale)
    print(render_figure(results, titles[number]))
    print()
    if scale >= 0.99:
        print(render_comparison(results, figure=number))
        print()
    if json_path:
        with open(json_path.replace("FIG", str(number)), "w") as fh:
            fh.write(cells_to_json(results, figure=number))
        print(f"(wrote {json_path.replace('FIG', str(number))})")
    print(f"({time.time() - t0:.0f}s wall)")


def _profile(args) -> int:
    """``python -m repro profile``: cProfile a hot path.

    ``--stage inspect`` (the default) profiles the static-inspection
    core; ``--stage provision`` profiles the full provisioning exchange —
    handshake, encrypted content stream, MRENCLAVE verification, verdict
    — which is dominated by the crypto data plane rather than the
    decoder.  Both print the top-N hot spots by cumulative time — the
    measured starting point for any perf work (see docs/PERFORMANCE.md).
    """
    import cProfile
    import pstats

    from .core import EnGarde, PolicyRegistry
    from .harness.runner import make_policy
    from .toolchain import build_libc
    from .toolchain.workloads import build_workload

    t0 = time.time()
    libc = build_libc()
    binary = build_workload(
        args.benchmark, stack_protector=True, ifcc=True,
        libc=libc, scale=args.scale,
    )
    policy_names = (
        "library-linking", "stack-protection", "indirect-function-call"
    )

    def make_policies() -> PolicyRegistry:
        return PolicyRegistry([
            make_policy(name, libc) for name in policy_names
        ])

    if args.stage == "provision":
        from .core import CloudProvider, EnclaveClient, provision
        from .harness import runner
        from .sgx import SgxParams

        policies = make_policies()

        def workload() -> None:
            # Fresh provider + client per pass: every run pays the whole
            # protocol (keygen is skipped via a shared keypair only when
            # benchmarking; the profile keeps it so RSA shows up).
            for _ in range(args.repeats):
                provider = CloudProvider(
                    policies,
                    params=SgxParams(epc_pages=8192, heap_initial_pages=512),
                    rsa_bits=1024,
                    client_pages=max(runner._pages_for(binary) + 16, 64),
                )
                client = EnclaveClient(
                    binary.elf, policies=policies, benchmark=args.benchmark,
                )
                result = provision(provider, client)
                assert result.report is not None
        label = "provisioning run(s)"
    else:
        def workload() -> None:
            # Fresh EnGarde per pass: caches must not carry over between
            # repeats, so the profile reflects steady single-binary cost.
            for _ in range(args.repeats):
                engarde = EnGarde(make_policies())
                outcome = engarde.inspect(binary.elf, benchmark=args.benchmark)
                assert outcome.report is not None
        label = "inspection(s)"

    workload()  # warm-up: imports, lazy tables
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()

    print(
        f"# profile: {args.stage} {args.benchmark} @ scale {args.scale} "
        f"({binary.insn_count} insns, {args.repeats} {label}, "
        f"{len(policy_names)} policies, {time.time() - t0:.0f}s wall)"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    return 0


def _chaos(args) -> int:
    """``python -m repro chaos``: the seeded fault-injection soak.

    Inspects a deterministic variant corpus once per seed under a
    randomized fault plan and fails (exit 1) on any false accept, hang,
    or untyped failure — printing the offending seed so the run can be
    replayed exactly (docs/RESILIENCE.md walks through the workflow).
    """
    from .core.policy import PolicyRegistry
    from .faults.chaos import run_soak
    from .harness.runner import make_policy
    from .service.corpus import generate_variant_corpus
    from .toolchain import build_libc

    t0 = time.time()
    libc = build_libc()
    policies = PolicyRegistry([make_policy(args.policy, libc)])
    corpus = generate_variant_corpus(args.corpus_size, libc=libc)
    result = run_soak(
        policies,
        corpus,
        seeds=args.seeds,
        n_specs=args.fault_specs,
        probability=args.fault_probability,
        retries=args.retries,
        deadline=args.deadline,
        quarantine_threshold=args.quarantine_threshold,
        max_wall_seconds=args.max_wall,
    )
    for line in result.summary_lines():
        print(line)
    print(f"({time.time() - t0:.0f}s wall)")
    if not result.ok:
        print(
            f"FAIL: {len(result.violations)} fail-closed violation(s)",
            file=sys.stderr,
        )
        return 1
    print("OK: 0 false accepts, 0 hangs, 0 untyped failures")
    return 0


def _serve(args) -> int:
    """``python -m repro serve``: the long-lived inspection daemon.

    Starts :class:`repro.service.InspectionDaemon` on TCP and prints a
    single JSON *announce* line (endpoint, device public key, policy
    digest, enclave geometry) — everything an
    :class:`~repro.service.InspectionClient` needs to attest and
    connect.  SIGTERM/SIGINT trigger a graceful drain: in-flight
    inspections are answered, new connections refused, then the process
    exits 0 with a final metrics summary on stderr.
    """
    import json
    import signal
    import threading

    from .core.policy import PolicyRegistry
    from .harness.runner import make_policy
    from .service import FleetCoordinator, InspectionDaemon
    from .toolchain import build_libc

    t0 = time.time()
    libc = build_libc()
    policies = PolicyRegistry([make_policy(args.policy, libc)])

    if args.shards > 1 or args.store:
        # the sharded fleet: one TCP port per shard, optional shared
        # on-disk verdict store, one announce record for the whole ring
        fleet = FleetCoordinator(
            policies,
            shards=args.shards,
            store=args.store,
            pool_size=args.pool_size,
            rsa_bits=args.rsa_bits,
            heap_pages=64,
            client_pages=64,
            enclave_pages=0x2000,
            read_timeout=args.read_timeout,
            max_connections=args.max_connections,
            inspector_mode=args.inspector_mode,
            workers=args.workers,
            scheduler=args.scheduler,
        )
        fleet.start()
        endpoints = fleet.start_tcp(args.host)
        print(json.dumps(fleet.announce()), flush=True)
        print(
            f"# inspection fleet ready: "
            + ", ".join(f"{sid}@{h}:{p}" for sid, h, p in endpoints)
            + f" ({time.time() - t0:.1f}s warm-up); SIGTERM to drain",
            file=sys.stderr, flush=True,
        )
        stop = threading.Event()

        def _on_signal(signum, frame) -> None:
            stop.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        t_up = time.monotonic()
        try:
            while not stop.is_set():
                stop.wait(0.2)
                if args.max_uptime and time.monotonic() - t_up >= args.max_uptime:
                    break
        finally:
            fleet.stop()
        counters = fleet.status()["counters"]
        print(f"# fleet stopped; counters: {json.dumps(counters)}",
              file=sys.stderr, flush=True)
        return 0

    daemon = InspectionDaemon(
        policies,
        inspector_mode=args.inspector_mode,
        workers=args.workers,
        shared_memory=not args.no_shared_memory,
        pool_size=args.pool_size,
        rsa_bits=args.rsa_bits,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
        read_timeout=args.read_timeout,
        max_connections=args.max_connections,
        retries=args.retries,
        quarantine_threshold=args.quarantine_threshold,
        scheduler=args.scheduler,
    )
    host, port = daemon.start_tcp(args.host, args.port)
    print(json.dumps(daemon.announce()), flush=True)
    print(
        f"# inspection daemon ready on {host}:{port} "
        f"({time.time() - t0:.1f}s warm-up); SIGTERM to drain",
        file=sys.stderr, flush=True,
    )

    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        while not stop.is_set():
            stop.wait(0.2)
            if args.max_uptime and daemon.uptime_seconds >= args.max_uptime:
                break
    finally:
        daemon.stop()
        # the process is exiting — release the worker pool and unlink
        # the shared-memory arena (a stopped-but-warm daemon would keep
        # both for the next start(); see InspectionDaemon.stop)
        daemon.inspector.close()
    snap = daemon.metrics_snapshot()
    nonzero = {k: v for k, v in snap["counters"].items() if v}
    print(f"# daemon stopped; counters: {json.dumps(nonzero)}",
          file=sys.stderr, flush=True)
    return 0


def _fleet_bench(args) -> int:
    """``python -m repro fleet-bench``: the cold vs warm fleet storm.

    Builds an N-shard :class:`~repro.service.FleetCoordinator` over a
    shared :class:`~repro.service.VerdictStore`, drives a deterministic
    variant corpus from ``--clients`` concurrent tenants (cold), then
    tears the whole fleet down and repeats the identical storm on a
    fresh fleet over the same store directory (warm restart).  Every
    delivered verdict is compared byte-for-byte against the serial
    :class:`~repro.core.EnGarde` oracle; exits non-zero on any
    divergence, hang, or untyped worker error.  The same storm driver
    backs ``benchmarks/bench_fleet.py``.
    """
    import json
    import tempfile

    from .core import EnGarde
    from .core.policy import PolicyRegistry
    from .harness.runner import make_policy
    from .service import FleetCoordinator, VerdictStore, run_fleet_storm
    from .service.corpus import generate_variant_corpus
    from .toolchain import build_libc

    t0 = time.time()
    libc = build_libc()
    policies = PolicyRegistry([make_policy(args.policy, libc)])
    corpus = generate_variant_corpus(args.corpus_size, libc=libc)
    oracle = {}
    engarde = EnGarde(policies)
    for label, raw in corpus:
        oracle[label] = engarde.inspect(
            raw, benchmark=label
        ).report.serialize()

    store_dir = args.store or tempfile.mkdtemp(prefix="repro-fleet-bench-")

    def storm() -> dict:
        fleet = FleetCoordinator(
            policies,
            shards=args.shards,
            store=VerdictStore(store_dir, fsync=False),
            rsa_bits=args.rsa_bits,
            heap_pages=64, client_pages=64, enclave_pages=0x2000,
            max_connections=max(args.max_connections, args.clients),
        )
        fleet.start()
        try:
            result = run_fleet_storm(
                fleet, corpus,
                clients=args.clients, per_client=args.per_client,
                oracle=oracle,
            )
            result["store"] = fleet.status()["store"]
            return result
        finally:
            fleet.stop()

    cold = storm()
    warm = storm()
    ratio = (
        warm["submissions_per_second"] / cold["submissions_per_second"]
        if cold["submissions_per_second"] else 0.0
    )
    payload = {
        "schema": "fleet_bench/1",
        "shards": args.shards,
        "store_dir": store_dir,
        "cold": cold,
        "warm_restart": warm,
        "warm_over_cold": round(ratio, 2),
        "wall_seconds": round(time.time() - t0, 1),
    }
    print(json.dumps(payload, indent=2))
    problems = []
    for leg, result in (("cold", cold), ("warm_restart", warm)):
        if result["divergences"]:
            problems.append(f"{leg}: {result['divergences']} divergence(s)")
        if result["hung_clients"]:
            problems.append(f"{leg}: hung clients {result['hung_clients']}")
        if result["worker_errors"]:
            problems.append(f"{leg}: {result['worker_errors']}")
    if problems:
        print("FAIL: " + "; ".join(problems), file=sys.stderr)
        return 1
    return 0


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _seed_list(value: str) -> list[int]:
    try:
        seeds = [int(s) for s in value.split(",") if s.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seeds must be comma-separated integers, got {value!r}"
        )
    if not seeds:
        raise argparse.ArgumentTypeError("at least one seed is required")
    return seeds


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="EnGarde reproduction: regenerate the paper's evaluation",
    )
    parser.add_argument(
        "target",
        choices=["fig2", "fig3", "fig4", "fig5", "all", "demo",
                 "inspect-batch", "profile", "chaos", "serve",
                 "fleet-bench"],
        help="which table/figure to regenerate, 'inspect-batch' to "
             "drive the batched inspection service, 'profile' to "
             "cProfile a corpus inspection and print the hot spots, "
             "'chaos' to run the seeded fault-injection soak, "
             "'serve' to run the long-lived inspection daemon (or "
             "sharded fleet) on TCP, or 'fleet-bench' for the cold vs "
             "warm-restart fleet storm",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (1.0 = the paper's instruction counts)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write results as JSON (use FIG in the path as a "
             "placeholder for the figure number)",
    )
    batch_group = parser.add_argument_group("inspect-batch options")
    batch_group.add_argument(
        "--policy", default="stack-protection",
        choices=["library-linking", "stack-protection",
                 "indirect-function-call"],
        help="policy module the batch is checked against",
    )
    batch_group.add_argument(
        "--workers", type=_positive_int, default=None,
        help="pool size (default: REPRO_WORKERS env override, else cpu "
             "count capped at 8)",
    )
    batch_group.add_argument(
        "--mode", default="process",
        choices=["process", "thread", "serial"],
        help="execution backend for the batch",
    )
    batch_group.add_argument(
        "--no-shared-memory", action="store_true",
        help="process mode only: use the legacy pickling executor "
             "instead of the zero-copy shared-memory arena",
    )
    batch_group.add_argument(
        "--scheduler", default="per-item",
        choices=["per-item", "adaptive"],
        help="dispatch granularity: 'per-item' submits one future per "
             "unique binary (the frozen oracle); 'adaptive' inlines "
             "tiny binaries, micro-batches small ones, and extent-"
             "splits huge ones (REPRO_SCHED_* env knobs tune the "
             "thresholds); also honored by 'serve'",
    )
    batch_group.add_argument(
        "--repeats", type=_positive_int, default=2,
        help="times the fleet is re-submitted (passes after the first "
             "hit the verdict cache)",
    )
    batch_group.add_argument(
        "--timeout", type=float, default=None,
        help="per-binary inspection timeout in seconds",
    )
    chaos_group = parser.add_argument_group("chaos options")
    chaos_group.add_argument(
        "--seeds", type=_seed_list, default="0,1,2,3,4",
        help="comma-separated fault-plan seeds (one corpus pass each)",
    )
    chaos_group.add_argument(
        "--corpus-size", type=_positive_int, default=54,
        help="variant-corpus size for the soak",
    )
    chaos_group.add_argument(
        "--fault-specs", type=_positive_int, default=8,
        help="fault specs drawn per randomized plan",
    )
    chaos_group.add_argument(
        "--fault-probability", type=float, default=0.35,
        help="per-call firing probability of each fault spec",
    )
    chaos_group.add_argument(
        "--retries", type=int, default=1,
        help="service retries per item during the soak",
    )
    chaos_group.add_argument(
        "--deadline", type=float, default=5.0,
        help="per-item deadline in (fake-clock) seconds",
    )
    chaos_group.add_argument(
        "--quarantine-threshold", type=_positive_int, default=None,
        help="consecutive failures before a binary is quarantined",
    )
    chaos_group.add_argument(
        "--max-wall", type=float, default=60.0,
        help="real seconds per seed pass before it counts as a hang",
    )
    serve_group = parser.add_argument_group("serve options")
    serve_group.add_argument(
        "--host", default="127.0.0.1",
        help="interface the daemon binds (default: loopback only)",
    )
    serve_group.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = let the OS pick; see the announce line)",
    )
    serve_group.add_argument(
        "--pool-size", type=_positive_int, default=1,
        help="pre-provisioned enclaves kept warm for attestation",
    )
    serve_group.add_argument(
        "--max-connections", type=_positive_int, default=64,
        help="concurrent client connections before new ones are refused",
    )
    serve_group.add_argument(
        "--read-timeout", type=float, default=30.0,
        help="seconds an idle connection may sit before it is dropped",
    )
    serve_group.add_argument(
        "--rsa-bits", type=_positive_int, default=768,
        help="channel keypair size for pooled enclaves",
    )
    serve_group.add_argument(
        "--max-uptime", type=float, default=None,
        help="self-stop after this many seconds (CI smoke guard)",
    )
    serve_group.add_argument(
        "--shards", type=_positive_int, default=1,
        help="provider shards in the fleet (1 = single daemon; >1 "
             "consistent-hashes submissions by content digest)",
    )
    serve_group.add_argument(
        "--store", metavar="DIR", default=None,
        help="directory for the shared on-disk verdict store (enables "
             "warm restarts; created if missing)",
    )
    serve_group.add_argument(
        "--inspector-mode", default="serial",
        choices=["serial", "process", "thread"],
        help="daemon inspector backend: 'serial' funnels through one "
             "warm EnGarde; 'process' fans concurrent submissions over "
             "the zero-copy shared-memory executor",
    )
    fleet_group = parser.add_argument_group("fleet-bench options")
    fleet_group.add_argument(
        "--clients", type=_positive_int, default=100,
        help="concurrent simulated tenants per storm leg",
    )
    fleet_group.add_argument(
        "--per-client", type=_positive_int, default=4,
        help="submissions each tenant makes (a rotation slice of the "
             "variant corpus)",
    )
    profile_group = parser.add_argument_group("profile options")
    profile_group.add_argument(
        "--benchmark", default="nginx",
        help="workload to profile (a paper benchmark name)",
    )
    profile_group.add_argument(
        "--top", type=_positive_int, default=25,
        help="how many hot spots to print (by cumulative time)",
    )
    profile_group.add_argument(
        "--stage", default="inspect", choices=["inspect", "provision"],
        help="hot path to profile: the static-inspection core or the "
             "full provisioning exchange (handshake + encrypted stream)",
    )
    args = parser.parse_args(argv)

    if args.target == "profile":
        return _profile(args)

    if args.target == "chaos":
        return _chaos(args)

    if args.target == "serve":
        return _serve(args)

    if args.target == "fleet-bench":
        return _fleet_bench(args)

    if args.target == "inspect-batch":
        from .harness.runner import run_batch

        report = run_batch(
            args.policy,
            scale=args.scale,
            workers=args.workers,
            mode=args.mode,
            shared_memory=not args.no_shared_memory,
            repeats=args.repeats,
            timeout=args.timeout,
            scheduler=args.scheduler,
        )
        payload = report.to_json()
        print(payload)
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(payload)
            print(f"(wrote {args.json})", file=sys.stderr)
        return 0 if report.summary.errors == 0 else 1

    if args.target == "demo":
        from . import quickstart_provision

        result = quickstart_provision(scale=max(args.scale, 0.02))
        print(f"provisioning verdict: {'ACCEPTED' if result.accepted else 'REJECTED'}")
        for phase in ("disassembly", "policy", "loading"):
            print(f"  {phase:12s} {result.meter.phase_cycles(phase):>14,} cycles")
        return 0

    if args.target in ("fig2", "all"):
        from .harness.loc import render_loc_table

        print(render_loc_table())
        print()
    if args.target in ("fig3", "all"):
        _figure("library-linking", 3, args.scale, args.json)
    if args.target in ("fig4", "all"):
        _figure("stack-protection", 4, args.scale, args.json)
    if args.target in ("fig5", "all"):
        _figure("indirect-function-call", 5, args.scale, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
