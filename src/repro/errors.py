"""Exception hierarchy shared across the EnGarde reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
distinguish "the simulated machine misbehaved" from ordinary Python errors.
The core EnGarde pipeline additionally distinguishes *rejections* (the
client's content failed validation or policy checking — an expected,
report-worthy outcome) from *faults* (a bug or protocol violation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, bad padding, bad MAC...)."""


class X86Error(ReproError):
    """Base class for x86 encoder/decoder errors."""


class EncodeError(X86Error):
    """An instruction could not be encoded (bad operands, unsupported form)."""


class DecodeError(X86Error):
    """A byte sequence could not be decoded into a valid instruction."""


class ValidationError(X86Error):
    """Disassembled code violates a NaCl-style structural constraint."""


class ElfError(ReproError):
    """An ELF image is malformed or violates EnGarde's format requirements."""


class SgxError(ReproError):
    """An SGX instruction faulted (bad enclave state, EPC exhausted...)."""


class EpcExhaustedError(SgxError):
    """The machine ran out of EPC pages."""


class EnclaveSealedError(SgxError):
    """An attempt was made to extend an enclave after provisioning sealed it."""


class AttestationError(ReproError):
    """Quote generation or verification failed."""


class ToolchainError(ReproError):
    """The mini compiler/linker could not produce the requested binary."""


class LinkError(ToolchainError):
    """Symbol resolution or relocation emission failed during linking."""


class NetError(ReproError):
    """The simulated socket layer failed (peer closed, framing error...)."""


class ProtocolError(ReproError):
    """The provisioning protocol was violated (wrong message, bad state)."""


class PolicyError(ReproError):
    """A policy module could not run (missing symbol table, bad config)."""


class ServiceError(ReproError):
    """The provider-side inspection service failed outside the pipeline."""


class WorkerCrashError(ServiceError):
    """An inspection worker died (or was made to die) mid-verdict."""


class ArenaError(ServiceError):
    """The shared-memory arena refused an operation (stale ticket,
    tombstoned slot, torn-down segment).  Always fail-closed: a worker
    that sees this produces an errored item, never a wrong verdict."""


class StoreError(ServiceError):
    """The on-disk verdict store refused a blob (torn write, truncated
    file, digest or key mismatch).  Always fail-closed: a corrupt blob
    is discarded and surfaces as a cache *miss* plus this typed error —
    never as a false verdict hit."""


class FleetError(ServiceError):
    """The sharded provider fleet could not place or serve a submission
    (no live shards, unknown shard id, coordinator misconfiguration)."""


class DeadlineExceededError(ServiceError):
    """An inspection exceeded its per-item deadline across all retries."""


class QuarantinedError(ServiceError):
    """A binary was refused because repeated failures quarantined it."""


class InjectedFault(ReproError):
    """A fault deliberately injected by :mod:`repro.faults`.

    Raised at hook points whose call site supplied no more specific typed
    error; carries the hook point and fault kind so failure reports can
    name the originating stage.
    """

    def __init__(self, message: str, *, hook: str = "?", kind: str = "?") -> None:
        super().__init__(message)
        self.hook = hook
        self.kind = kind


class RejectionError(ReproError):
    """The client's content was rejected.

    This is the *expected* failure mode of EnGarde: malformed ELF, mixed
    code/data pages, disassembly validation failure, or a policy verdict of
    non-compliance.  The provisioning protocol converts these into a
    rejection report for the cloud provider rather than crashing.
    """

    def __init__(self, reason: str, *, stage: str = "unknown") -> None:
        super().__init__(reason)
        self.reason = reason
        #: pipeline stage that rejected the content (e.g. "elf", "disasm",
        #: "policy:library-linking")
        self.stage = stage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RejectionError(stage={self.stage!r}, reason={self.reason!r})"
