"""The SGX instruction layer: lifecycle + SGX2 dynamic-memory extensions.

Each method models one of the enclave-management instructions (the paper
notes SGX defines 24; we implement the ones the EnGarde pipeline
exercises) and charges the OpenSGX cost model's 10 000 cycles through the
:class:`~repro.sgx.cpu.CycleMeter`.

SGX2 instructions (EAUG, EMODPR, EMODPE) are gated on
:attr:`~repro.sgx.params.SgxParams.sgx2`: the paper argues EnGarde *needs*
SGX2 because only EPC-level permission bits are tamper-proof against a
malicious OS — with ``sgx2=False`` the machine reproduces the SGX1
limitation (and the corresponding ablation test shows the attack window).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto import hmac_sha256
from ..errors import EnclaveSealedError, SgxError
from .cpu import CycleMeter
from .enclave import Enclave, EnclaveState, Secs
from .epc import Epc, PagePermissions
from .measurement import Measurement
from .paging import EvictedPage, VersionArray, seal_page, unseal_page
from .params import PAGE_SIZE, SgxParams

__all__ = ["SgxMachine", "Report", "EvictedPage"]


@dataclass(frozen=True)
class Report:
    """Output of EREPORT: enclave identity MAC'd with the report key."""

    eid: int
    mrenclave: bytes
    attributes: int
    report_data: bytes  # 64 bytes of caller-chosen data
    mac: bytes

    def body(self) -> bytes:
        return (
            struct.pack("<IQ", self.eid, self.attributes)
            + self.mrenclave
            + self.report_data
        )


class SgxMachine:
    """One SGX-capable physical machine: EPC + enclaves + hardware keys."""

    def __init__(
        self,
        params: SgxParams | None = None,
        *,
        meter: CycleMeter | None = None,
        hardware_seed: bytes = b"sgx-machine-0",
        fast: bool = False,
    ) -> None:
        self.params = params or SgxParams()
        self.meter = meter or CycleMeter()
        #: fast build mode: hashlib-backed measurement, lazy-zero EPC pages,
        #: single-read EEXTEND sweeps.  MRENCLAVE values, page ciphertext,
        #: MACs, and meter charges are identical to the reference mode.
        self.fast = fast
        # Device-unique root key; everything hardware-secret derives from it.
        self._root_key = hmac_sha256(b"sgx-root", hardware_seed)
        self._report_key = hmac_sha256(self._root_key, b"report-key")
        self.epc = Epc(
            self.params.epc_pages,
            hmac_sha256(self._root_key, b"mee-key"),
            lazy_zero=fast,
        )
        self._paging_key = hmac_sha256(self._root_key, b"paging-key")
        self._version_array = VersionArray()
        self.enclaves: dict[int, Enclave] = {}
        self._next_eid = 1

    # ------------------------------------------------------- lifecycle

    def ecreate(self, base: int, size: int, attributes: int = 0) -> Enclave:
        """ECREATE: allocate an enclave covering [base, base+size)."""
        if base % PAGE_SIZE or size % PAGE_SIZE:
            raise SgxError("ELRANGE must be page-aligned")
        if size <= 0:
            raise SgxError("enclave size must be positive")
        self.meter.charge_sgx()
        enclave = Enclave(
            eid=self._next_eid,
            secs=Secs(base=base, size=size, attributes=attributes),
            epc=self.epc,
            measurement=Measurement(fast=self.fast),
        )
        enclave.measurement.ecreate(base, size, attributes)
        self.enclaves[enclave.eid] = enclave
        self._next_eid += 1
        return enclave

    def eadd(
        self,
        enclave: Enclave,
        vaddr: int,
        content: bytes = b"",
        *,
        page_type: str = "REG",
        perms: PagePermissions | None = None,
    ) -> None:
        """EADD: add one page (pre-EINIT only); content is measured via EEXTEND."""
        self._check_pending(enclave, "EADD")
        self._check_addable(enclave, vaddr)
        self.meter.charge_sgx()
        perms = perms or PagePermissions(read=True, write=True, execute=True)
        page = self.epc.allocate(enclave.eid, vaddr)
        page.perms = perms
        enclave.pages[vaddr] = page
        enclave.measurement.eadd(vaddr, page_type, perms.as_str())
        if content:
            if len(content) > PAGE_SIZE:
                raise SgxError("EADD content exceeds one page")
            padded = content.ljust(PAGE_SIZE, b"\x00")
            self.epc.write_plaintext(page, padded, eid=enclave.eid)

    def eextend(self, enclave: Enclave, vaddr: int) -> None:
        """EEXTEND: measure one 256-byte chunk of an added page."""
        self._check_pending(enclave, "EEXTEND")
        page_vaddr = vaddr & ~(PAGE_SIZE - 1)
        if page_vaddr not in enclave.pages:
            raise SgxError(f"EEXTEND of unmapped page {page_vaddr:#x}")
        if vaddr % self.params.eextend_chunk:
            raise SgxError("EEXTEND offset must be 256-byte aligned")
        self.meter.charge_sgx()
        page = enclave.pages[page_vaddr]
        plain = self.epc.read_plaintext(page, eid=enclave.eid)
        off = vaddr - page_vaddr
        chunk = plain[off:off + self.params.eextend_chunk]
        enclave.measurement.eextend(vaddr, chunk)

    def add_measured_page(
        self,
        enclave: Enclave,
        vaddr: int,
        content: bytes = b"",
        *,
        page_type: str = "REG",
        perms: PagePermissions | None = None,
    ) -> None:
        """EADD + the 16 EEXTENDs that measure the full page."""
        self.eadd(enclave, vaddr, content, page_type=page_type, perms=perms)
        chunk = self.params.eextend_chunk
        if self.fast:
            # One decrypt instead of sixteen; each chunk is still charged
            # and absorbed exactly as the per-EEXTEND path would.
            self._check_pending(enclave, "EEXTEND")
            page = enclave.pages[vaddr]
            plain = self.epc.read_plaintext(page, eid=enclave.eid)
            eextend = enclave.measurement.eextend
            charge_sgx = self.meter.charge_sgx
            for off in range(0, PAGE_SIZE, chunk):
                charge_sgx()
                eextend(vaddr + off, plain[off:off + chunk])
            return
        for off in range(0, PAGE_SIZE, chunk):
            self.eextend(enclave, vaddr + off)

    def einit(self, enclave: Enclave) -> bytes:
        """EINIT: finalise the measurement; enclave becomes enterable."""
        self._check_pending(enclave, "EINIT")
        self.meter.charge_sgx()
        mrenclave = enclave.measurement.finalize()
        enclave.secs.mrenclave = mrenclave
        enclave.state = EnclaveState.INITIALIZED
        return mrenclave

    def eenter(self, enclave: Enclave) -> None:
        if enclave.state is not EnclaveState.INITIALIZED:
            raise SgxError("EENTER before EINIT")
        self.meter.charge_sgx()
        enclave.entered += 1

    def eexit(self, enclave: Enclave) -> None:
        if enclave.entered <= 0:
            raise SgxError("EEXIT without matching EENTER")
        self.meter.charge_sgx()
        enclave.entered -= 1

    def eremove(self, enclave: Enclave, vaddr: int) -> None:
        """EREMOVE: evict one page (enclave must not be running)."""
        if enclave.entered:
            raise SgxError("EREMOVE while enclave has running threads")
        page = enclave.pages.pop(vaddr, None)
        if page is None:
            raise SgxError(f"EREMOVE of unmapped page {vaddr:#x}")
        self.meter.charge_sgx()
        self.epc.release(page)

    def destroy(self, enclave: Enclave) -> None:
        """Tear the whole enclave down (EREMOVE every page)."""
        for vaddr in list(enclave.pages):
            self.eremove(enclave, vaddr)
        self.enclaves.pop(enclave.eid, None)

    # ------------------------------------------------- SGX2 extensions

    def eaug(self, enclave: Enclave, vaddr: int) -> None:
        """EAUG: dynamically add a zeroed page post-EINIT (SGX2 only)."""
        if not self.params.sgx2:
            raise SgxError(
                "EAUG requires SGX2 (dynamic memory management); "
                "this machine models SGX1"
            )
        if enclave.state is not EnclaveState.INITIALIZED:
            raise SgxError("EAUG before EINIT")
        self._check_addable(enclave, vaddr)
        self.meter.charge_sgx()
        page = self.epc.allocate(enclave.eid, vaddr)
        page.perms = PagePermissions(read=True, write=True, execute=False)
        enclave.pages[vaddr] = page

    def emodpr(self, enclave: Enclave, vaddr: int, perms: PagePermissions) -> None:
        """EMODPR: restrict EPC-level page permissions (SGX2 only).

        This is the hardware-rooted W^X EnGarde's host component relies on.
        """
        if not self.params.sgx2:
            raise SgxError("EMODPR requires SGX2; page permissions are fixed on SGX1")
        page = enclave.pages.get(vaddr)
        if page is None:
            raise SgxError(f"EMODPR of unmapped page {vaddr:#x}")
        old = page.perms
        if (perms.read and not old.read) or (perms.write and not old.write) \
                or (perms.execute and not old.execute):
            raise SgxError("EMODPR can only restrict permissions (use EMODPE to extend)")
        self.meter.charge_sgx()
        page.perms = perms

    def emodpe(self, enclave: Enclave, vaddr: int, perms: PagePermissions) -> None:
        """EMODPE: extend page permissions — only from inside the enclave."""
        if not self.params.sgx2:
            raise SgxError("EMODPE requires SGX2")
        if not enclave.entered:
            raise SgxError("EMODPE must execute from inside the enclave")
        page = enclave.pages.get(vaddr)
        if page is None:
            raise SgxError(f"EMODPE of unmapped page {vaddr:#x}")
        self.meter.charge_sgx()
        page.perms = perms

    # ---------------------------------------------------------- paging

    def ewb(self, enclave: Enclave, vaddr: int) -> "EvictedPage":
        """EWB: evict a page to (untrusted) main memory, sealed + versioned.

        The freed EPC slot returns to the pool; the OS holds the sealed
        blob and must present the *current* version at reload — stale or
        tampered blobs are rejected by ELDU.
        """
        page = enclave.pages.get(vaddr)
        if page is None:
            raise SgxError(f"EWB of unmapped page {vaddr:#x}")
        if enclave.entered:
            raise SgxError("EWB while enclave threads are running")
        self.meter.charge_sgx()
        plaintext = self.epc.read_plaintext(page, eid=enclave.eid)
        version = self._version_array.assign(enclave.eid, vaddr)
        blob = seal_page(
            self._paging_key, enclave.eid, vaddr, version,
            page.perms.as_str(), plaintext,
        )
        del enclave.pages[vaddr]
        self.epc.release(page)
        return blob

    def eldu(self, enclave: Enclave, blob: "EvictedPage") -> None:
        """ELDU: reload an evicted page (MAC + anti-replay version check)."""
        if blob.eid != enclave.eid:
            raise SgxError("ELDU: blob belongs to a different enclave")
        if blob.vaddr in enclave.pages:
            raise SgxError(f"ELDU: page {blob.vaddr:#x} is already resident")
        self.meter.charge_sgx()
        # Order matters: verify the version *before* consuming EPC space.
        self._version_array.consume(enclave.eid, blob.vaddr, blob.version)
        plaintext = unseal_page(self._paging_key, blob)
        page = self.epc.allocate(enclave.eid, blob.vaddr)
        page.perms = PagePermissions(
            read="r" in blob.perms, write="w" in blob.perms,
            execute="x" in blob.perms,
        )
        enclave.pages[blob.vaddr] = page
        self.epc.write_plaintext(page, plaintext, eid=enclave.eid)

    # ------------------------------------------------------ attestation

    def ereport(self, enclave: Enclave, report_data: bytes) -> Report:
        """EREPORT: produce a locally-verifiable report of enclave identity."""
        if enclave.state is not EnclaveState.INITIALIZED:
            raise SgxError("EREPORT before EINIT")
        if len(report_data) > 64:
            raise SgxError("report data is limited to 64 bytes")
        self.meter.charge_sgx()
        report_data = report_data.ljust(64, b"\x00")
        body = (
            struct.pack("<IQ", enclave.eid, enclave.secs.attributes)
            + enclave.mrenclave
            + report_data
        )
        return Report(
            eid=enclave.eid,
            mrenclave=enclave.mrenclave,
            attributes=enclave.secs.attributes,
            report_data=report_data,
            mac=hmac_sha256(self._report_key, body),
        )

    def verify_report(self, report: Report) -> bool:
        """Check a report's MAC — only code on the same machine can."""
        return hmac_sha256(self._report_key, report.body()) == report.mac

    def egetkey(self, enclave: Enclave, key_name: bytes) -> bytes:
        """EGETKEY: derive an enclave-and-machine-specific key (sealing)."""
        if enclave.state is not EnclaveState.INITIALIZED:
            raise SgxError("EGETKEY before EINIT")
        self.meter.charge_sgx()
        return hmac_sha256(self._root_key, b"seal" + enclave.mrenclave + key_name)

    # ---------------------------------------------------------- helpers

    def _check_pending(self, enclave: Enclave, what: str) -> None:
        if enclave.state is not EnclaveState.PENDING:
            raise SgxError(f"{what} after EINIT")
        if enclave.sealed:
            raise EnclaveSealedError(f"{what} on a sealed enclave")

    def _check_addable(self, enclave: Enclave, vaddr: int) -> None:
        if enclave.sealed:
            raise EnclaveSealedError(
                f"enclave {enclave.eid} is sealed; no pages may be added"
            )
        if vaddr % PAGE_SIZE:
            raise SgxError("page vaddr must be page-aligned")
        if not enclave.contains(vaddr, PAGE_SIZE):
            raise SgxError(f"page {vaddr:#x} outside ELRANGE")
        if vaddr in enclave.pages:
            raise SgxError(f"page {vaddr:#x} already mapped")
