"""Remote attestation: the quoting enclave and client-side verification.

Follows the paper's description (section 2, "Attesting and Provisioning
Enclaves"): each machine carries an Intel-provisioned *quoting enclave*
that turns an EREPORT (MAC'd with a machine-local report key) into a
*quote* signed with a device-specific private key (EPID in real SGX; a
device RSA key here — the group-signature privacy property of EPID is out
of scope, the authentication property is what EnGarde relies on).

The freshly-generated channel public key's fingerprint travels in the
report data, giving the client a hardware-rooted binding between "the
enclave whose measurement I verified" and "the key I am about to encrypt
my AES session key under".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import HmacDrbg, RsaPrivateKey, RsaPublicKey, generate_keypair
from ..errors import AttestationError
from .isa import Report, SgxMachine

__all__ = ["Quote", "QuotingEnclave", "verify_quote", "AttestationService"]

#: key size for the simulated EPID device key; small enough to keep tests
#: fast, large enough for our from-scratch RSA to be exercised properly.
DEVICE_KEY_BITS = 1024


@dataclass(frozen=True)
class Quote:
    """A signed attestation quote: report body + device signature."""

    mrenclave: bytes
    attributes: int
    report_data: bytes
    challenge: bytes
    signature: bytes

    def signed_body(self) -> bytes:
        return (
            b"SGX-QUOTE"
            + self.mrenclave
            + self.attributes.to_bytes(8, "little")
            + self.report_data
            + self.challenge
        )


class QuotingEnclave:
    """The Intel-provisioned quoting enclave of one machine."""

    def __init__(self, machine: SgxMachine, rng: HmacDrbg) -> None:
        self._machine = machine
        self._device_key: RsaPrivateKey = generate_keypair(DEVICE_KEY_BITS, rng)

    @property
    def device_public_key(self) -> RsaPublicKey:
        """Published by the attestation service (Intel IAS analogue)."""
        return self._device_key.public_key

    def quote(self, report: Report, challenge: bytes) -> Quote:
        """Verify the report MAC and sign a quote over it + the challenge."""
        if not self._machine.verify_report(report):
            raise AttestationError("report MAC invalid: not from this machine")
        quote = Quote(
            mrenclave=report.mrenclave,
            attributes=report.attributes,
            report_data=report.report_data,
            challenge=challenge,
            signature=b"",
        )
        signature = self._device_key.sign(quote.signed_body())
        return Quote(
            mrenclave=quote.mrenclave,
            attributes=quote.attributes,
            report_data=quote.report_data,
            challenge=quote.challenge,
            signature=signature,
        )


def verify_quote(
    quote: Quote,
    device_public_key: RsaPublicKey,
    *,
    expected_mrenclave: bytes,
    challenge: bytes,
) -> None:
    """Client-side quote verification; raises :class:`AttestationError`.

    Checks, in order: the device signature (machine authenticity), the
    challenge (freshness), and MRENCLAVE (the enclave really runs the
    EnGarde build both parties reviewed).
    """
    if not device_public_key.verify(quote.signed_body(), quote.signature):
        raise AttestationError("quote signature verification failed")
    if quote.challenge != challenge:
        raise AttestationError("stale quote: challenge mismatch")
    if quote.mrenclave != expected_mrenclave:
        raise AttestationError(
            "MRENCLAVE mismatch: enclave does not contain the agreed "
            f"EnGarde build (got {quote.mrenclave.hex()[:16]}..., "
            f"expected {expected_mrenclave.hex()[:16]}...)"
        )


class AttestationService:
    """Registry of device public keys (the Intel IAS analogue).

    Clients fetch the device key for the machine they are attesting
    against; in the real ecosystem this trust is rooted in Intel's EPID
    group public keys.
    """

    def __init__(self) -> None:
        self._keys: dict[str, RsaPublicKey] = {}

    def register(self, machine_id: str, key: RsaPublicKey) -> None:
        self._keys[machine_id] = key

    def device_key(self, machine_id: str) -> RsaPublicKey:
        try:
            return self._keys[machine_id]
        except KeyError:
            raise AttestationError(f"unknown machine {machine_id!r}") from None
