"""The Encrypted Page Cache and its access-control map (EPCM).

Physical pages are drawn from a fixed pool (2 000 pages in stock OpenSGX;
the paper raises it to 32 000 = 128 MiB).  Page contents are kept
encrypted-at-rest under a per-machine hardware key, as the SGX memory
encryption engine would: reads through an owning enclave decrypt; reads
from outside the enclave observe only ciphertext.  An HMAC per page models
the MEE's integrity tree — tampering with ciphertext is detected on the
next enclave access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.mac import hmac_key
from ..errors import EpcExhaustedError, SgxError
from ..faults.hooks import fault_hook
from .params import PAGE_SIZE

__all__ = ["EpcPage", "Epc", "PagePermissions"]


@dataclass
class PagePermissions:
    """EPCM permission bits for one page (SGX2 makes these mutable)."""

    read: bool = True
    write: bool = True
    execute: bool = False

    def as_str(self) -> str:
        return (
            ("r" if self.read else "-")
            + ("w" if self.write else "-")
            + ("x" if self.execute else "-")
        )


@dataclass
class EpcPage:
    """One 4 KiB EPC page plus its EPCM entry."""

    index: int
    owner_eid: int | None = None
    vaddr: int | None = None
    perms: PagePermissions = field(default_factory=PagePermissions)
    #: ciphertext at rest; plaintext never escapes `Epc` accessors
    _ciphertext: bytes = b"\x00" * PAGE_SIZE
    _tag: bytes = b""

    @property
    def is_free(self) -> bool:
        return self.owner_eid is None


class Epc:
    """The EPC pool: allocation, hardware crypto, and EPCM bookkeeping."""

    def __init__(
        self, n_pages: int, hardware_key: bytes, *, lazy_zero: bool = False
    ) -> None:
        if n_pages <= 0:
            raise ValueError("EPC must have at least one page")
        self._pages = [EpcPage(i) for i in range(n_pages)]
        self._free = list(range(n_pages - 1, -1, -1))
        self._hw_key = hardware_key
        #: defer encrypting freshly-allocated zero pages until first read;
        #: the materialised ciphertext/MAC are the same bytes either way.
        self._lazy_zero = lazy_zero
        # Prepared HMAC midstates for the integrity key: the MEE tags and
        # checks a page on every store/enclave read, so the per-call key
        # preparation is hoisted to construction (same tag bytes).
        self._integrity = hmac_key(hardware_key + b"integrity")
        # The keystream is a pure function of (hardware key, page index),
        # so it can be cached without weakening the simulation.
        self._keystream_cache: dict[int, bytes] = {}
        self._zero_ct_cache: dict[int, tuple[bytes, bytes]] = {}

    # ------------------------------------------------------------ pool

    @property
    def size(self) -> int:
        return len(self._pages)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def used_pages(self) -> int:
        return self.size - self.free_pages

    def allocate(self, eid: int, vaddr: int) -> EpcPage:
        """Take a free page and assign it to enclave *eid* at *vaddr*."""
        # Injectable eviction pressure: a raise here is what sudden EPC
        # exhaustion under a hostile co-tenant looks like to the caller.
        fault_hook("sgx.epc.alloc", error=EpcExhaustedError)
        if not self._free:
            raise EpcExhaustedError(
                f"EPC exhausted: all {self.size} pages in use"
            )
        page = self._pages[self._free.pop()]
        page.owner_eid = eid
        page.vaddr = vaddr
        page.perms = PagePermissions()
        if self._lazy_zero:
            page._ciphertext = None  # type: ignore[assignment]
            page._tag = b""
        else:
            self._store(page, b"\x00" * PAGE_SIZE)
        return page

    def release(self, page: EpcPage) -> None:
        """Return a page to the free pool, scrubbing its content."""
        if page.is_free:
            raise SgxError(f"double free of EPC page {page.index}")
        page.owner_eid = None
        page.vaddr = None
        if self._lazy_zero:
            page._ciphertext = None  # type: ignore[assignment]
            page._tag = b""
        else:
            self._store(page, b"\x00" * PAGE_SIZE)
        self._free.append(page.index)

    def page(self, index: int) -> EpcPage:
        return self._pages[index]

    # ------------------------------------------- hardware encryption

    def _keystream(self, page: EpcPage) -> bytes:
        """Deterministic per-page keystream from the hardware key.

        A real MEE uses AES-CTR with a version tree; an HMAC-expanded
        keystream gives the same observable property (ciphertext is
        unintelligible without the hardware key) at simulation speed.
        """
        cached = self._keystream_cache.get(page.index)
        if cached is not None:
            return cached
        # SHAKE-128 as the MEE's internal PRF: the MEE is simulated
        # *hardware*, not part of the paper's software stack, so the
        # from-scratch rule for the crypto substrate does not apply here
        # and one extendable-output call per page keeps builds fast.
        import hashlib

        seed = self._hw_key + page.index.to_bytes(4, "big")
        stream = hashlib.shake_128(seed).digest(PAGE_SIZE)
        self._keystream_cache[page.index] = stream
        return stream

    def _materialize(self, page: EpcPage) -> None:
        """Encrypt the deferred all-zero content of a lazily-allocated page."""
        if page._ciphertext is None:
            cached = self._zero_ct_cache.get(page.index)
            if cached is None:
                ct = self._keystream(page)  # zeros XOR keystream
                cached = (ct, self._integrity.mac(ct))
                self._zero_ct_cache[page.index] = cached
            page._ciphertext, page._tag = cached

    def _store(self, page: EpcPage, plaintext: bytes) -> None:
        if plaintext == b"\x00" * PAGE_SIZE:
            cached = self._zero_ct_cache.get(page.index)
            if cached is None:
                ct = self._keystream(page)  # zeros XOR keystream
                cached = (ct, self._integrity.mac(ct))
                self._zero_ct_cache[page.index] = cached
            page._ciphertext, page._tag = cached
            return
        stream = self._keystream(page)
        ct = _xor(plaintext, stream)
        page._ciphertext = ct
        page._tag = self._integrity.mac(ct)

    def read_plaintext(self, page: EpcPage, *, eid: int) -> bytes:
        """Decrypt a page for an access from inside enclave *eid*."""
        if page.owner_eid != eid:
            raise SgxError(
                f"enclave {eid} accessed EPC page {page.index} "
                f"owned by {page.owner_eid}"
            )
        self._materialize(page)
        expected = self._integrity.mac(page._ciphertext)
        if expected != page._tag:
            raise SgxError(
                f"integrity check failed on EPC page {page.index} "
                "(ciphertext was tampered with)"
            )
        stream = self._keystream(page)
        return _xor(page._ciphertext, stream)

    def write_plaintext(self, page: EpcPage, data: bytes, *, eid: int) -> None:
        """Encrypt and store a full-page write from inside enclave *eid*."""
        if page.owner_eid != eid:
            raise SgxError(
                f"enclave {eid} wrote EPC page {page.index} "
                f"owned by {page.owner_eid}"
            )
        if len(data) != PAGE_SIZE:
            raise SgxError("EPC writes are page-granular")
        self._store(page, data)

    def read_ciphertext(self, page: EpcPage) -> bytes:
        """What an adversary outside the enclave observes."""
        self._materialize(page)
        return page._ciphertext

    def tamper(self, page: EpcPage, data: bytes) -> None:
        """Adversary primitive for tests: overwrite ciphertext directly."""
        if len(data) != PAGE_SIZE:
            raise SgxError("EPC writes are page-granular")
        self._materialize(page)  # the zero tag must exist for detection
        page._ciphertext = data  # deliberately skips the tag update


def _xor(a: bytes, b: bytes) -> bytes:
    """Whole-buffer XOR via big integers (much faster than a byte loop)."""
    n = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b[:n], "big")).to_bytes(n, "big")
