"""Page-level controlled-channel adversary (explicit non-goal of EnGarde).

The paper (section 6) is careful about scope: "Intel SGX does not protect
applications against side-channel attacks and EnGarde also does not
attempt to eliminate this attack vector", citing Xu et al.'s
controlled-channel attacks — a malicious OS manipulates page tables so
every enclave page access faults, observing the *sequence of page
numbers* an enclave touches even though contents stay encrypted.

This module implements that adversary against our runtime-execution
extension, so the limitation is demonstrable rather than just stated:
:class:`PageAccessTracer` interposes on an interpreter memory bus and
records page-granular access traces; the tests show the trace leaks a
secret-dependent branch through a policy-compliant, sealed enclave.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .params import PAGE_SIZE

__all__ = ["PageAccess", "PageAccessTracer"]


@dataclass(frozen=True)
class PageAccess:
    """One observed page touch: ('X'|'R'|'W', page base vaddr)."""

    kind: str
    page: int

    def __repr__(self) -> str:
        return f"{self.kind}@{self.page:#x}"


@dataclass
class PageAccessTracer:
    """Wraps a memory bus; records the page-fault sequence the OS sees.

    Consecutive accesses to the same page are collapsed, like a real
    controlled-channel adversary that re-maps a page after each fault and
    only observes page *transitions*.
    """

    bus: object
    trace: list[PageAccess] = field(default_factory=list)

    def _record(self, kind: str, addr: int) -> None:
        page = addr & ~(PAGE_SIZE - 1)
        access = PageAccess(kind, page)
        if not self.trace or self.trace[-1] != access:
            self.trace.append(access)

    def read(self, addr: int, size: int) -> bytes:
        self._record("R", addr)
        return self.bus.read(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        self._record("W", addr)
        self.bus.write(addr, data)

    def fetch(self, addr: int, size: int) -> bytes:
        self._record("X", addr)
        return self.bus.fetch(addr, size)

    # ------------------------------------------------------- analysis

    def code_pages_touched(self) -> list[int]:
        """Distinct executed pages, in first-touch order."""
        seen: list[int] = []
        for access in self.trace:
            if access.kind == "X" and access.page not in seen:
                seen.append(access.page)
        return seen

    def signature(self) -> tuple[PageAccess, ...]:
        """The full collapsed trace — what the malicious OS learns."""
        return tuple(self.trace)
