"""Enclave measurement (MRENCLAVE).

SGX builds a SHA-256 digest of "a log of all activities during enclave
initialization" (paper section 2): ECREATE contributes the enclave's
shape, each EADD contributes the page's address and security attributes,
and EEXTEND contributes the page *contents* in 256-byte chunks.  EINIT
finalises the digest.  Identical build sequences therefore yield identical
MRENCLAVE values — the property attestation relies on.
"""

from __future__ import annotations

import hashlib
import struct

from ..crypto.sha256 import SHA256
from ..errors import SgxError

__all__ = ["Measurement"]

# The three log tags, pre-padded to the fixed 8-byte field.
_PADDED_TAGS = {
    tag: tag.ljust(8, b"\x00") for tag in (b"ECREATE", b"EADD", b"EEXTEND")
}


class Measurement:
    """Incremental MRENCLAVE builder mirroring the SGX measurement log.

    With ``fast=True`` the digest is computed by :mod:`hashlib` over the
    exact same absorbed byte sequence (length prefix, padded tag, payload)
    and the human-readable event log is suppressed; MRENCLAVE values are
    byte-identical to the reference mode.
    """

    def __init__(self, fast: bool = False) -> None:
        self.fast = fast
        self._hash = hashlib.sha256() if fast else SHA256()
        self._final: bytes | None = None
        self.log: list[str] = []

    @property
    def finalized(self) -> bool:
        return self._final is not None

    def _absorb(self, tag: bytes, *parts: bytes) -> None:
        # Streamed into the hash as three updates; the absorbed byte
        # sequence (length prefix, padded tag, payload) is unchanged, so
        # MRENCLAVE values are identical to the concatenating form.
        if self._final is not None:
            raise SgxError("measurement already finalised by EINIT")
        update = self._hash.update
        update(struct.pack("<I", 8 + sum(len(p) for p in parts)))
        update(_PADDED_TAGS.get(tag) or tag.ljust(8, b"\x00"))
        for part in parts:
            update(part)

    def ecreate(self, base: int, size: int, attributes: int) -> None:
        self._absorb(b"ECREATE", struct.pack("<QQQ", base, size, attributes))
        if not self.fast:
            self.log.append(f"ECREATE base={base:#x} size={size:#x}")

    def eadd(self, vaddr: int, page_type: str, perms: str) -> None:
        self._absorb(
            b"EADD",
            struct.pack("<Q", vaddr), page_type.encode(), perms.encode(),
        )
        if not self.fast:
            self.log.append(f"EADD vaddr={vaddr:#x} type={page_type} perms={perms}")

    def eextend(self, vaddr: int, chunk: bytes) -> None:
        self._absorb(b"EEXTEND", struct.pack("<Q", vaddr), chunk)
        if not self.fast:
            self.log.append(f"EEXTEND vaddr={vaddr:#x} len={len(chunk)}")

    def finalize(self) -> bytes:
        """EINIT: freeze and return MRENCLAVE."""
        if self._final is None:
            self._final = self._hash.digest()
            if not self.fast:
                self.log.append("EINIT")
        return self._final

    @property
    def mrenclave(self) -> bytes:
        if self._final is None:
            raise SgxError("enclave not yet initialised (no EINIT)")
        return self._final
