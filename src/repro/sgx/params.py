"""SGX machine parameters.

Defaults mirror OpenSGX as the paper describes modifying it (section 4,
"Modifications to OpenSGX"): OpenSGX ships with 2 000 EPC pages and 300
initial heap pages; EnGarde raises these to 32 000 (128 MiB) and 5 000.
The 10 000-cycles-per-SGX-instruction constant is the cost model the paper
adopts from the OpenSGX paper for its evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SgxParams", "OPENSGX_DEFAULT", "ENGARDE_DEFAULT", "PAGE_SIZE"]

PAGE_SIZE = 4096


@dataclass(frozen=True)
class SgxParams:
    """Tunable parameters of the simulated SGX machine."""

    #: number of pages in the Encrypted Page Cache
    epc_pages: int = 32_000
    #: pages pre-committed to the in-enclave heap at build time
    heap_initial_pages: int = 5_000
    #: cycle cost charged per SGX instruction (OpenSGX evaluation model)
    sgx_instruction_cycles: int = 10_000
    #: bytes per EPC page
    page_size: int = PAGE_SIZE
    #: EEXTEND measures the enclave in chunks of this many bytes
    eextend_chunk: int = 256
    #: emulate SGX2 (EAUG/EMODPR/EMODPE).  EnGarde *requires* SGX2 for
    #: hardware-level page-permission enforcement (paper section 3); with
    #: SGX1 the permission check is software-only and attackable.
    sgx2: bool = True

    @property
    def epc_bytes(self) -> int:
        return self.epc_pages * self.page_size


#: OpenSGX out-of-the-box configuration
OPENSGX_DEFAULT = SgxParams(epc_pages=2_000, heap_initial_pages=300)

#: the paper's modified configuration (128 MiB EPC)
ENGARDE_DEFAULT = SgxParams()
