"""The host operating system's view of an enclave.

Although the OS cannot read plaintext enclave content, it remains
responsible for enclave management (paper section 2): creating enclaves,
adding/removing pages, and maintaining page tables.  This module models:

* the host page table (virtual address -> EPC slot + OS-level permissions),
* the **trampoline**: in-enclave code cannot issue system calls, so it
  EEXITs, has the untrusted runtime perform the service (heap growth,
  socket I/O), and EENTERs back — each trampoline costs two SGX
  instructions, which is why EnGarde's disassembler allocates its
  instruction buffer a page at a time (paper section 4),
* **EnGarde's host-level component**: after the in-enclave checker reports
  the list of executable pages, the host marks them execute-not-write and
  everything else write-not-execute (at both page-table and, on SGX2, EPC
  level), and seals the enclave against any further page additions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EnclaveSealedError, SgxError
from ..net import SimSocket
from .enclave import Enclave
from .epc import PagePermissions
from .isa import SgxMachine
from .params import PAGE_SIZE

__all__ = ["HostOS", "PteFlags", "EnclaveRuntime"]


@dataclass
class PteFlags:
    """OS page-table permission bits (the software-level, SGX1-era check)."""

    read: bool = True
    write: bool = True
    execute: bool = False


@dataclass
class EnclaveRuntime:
    """Host-side bookkeeping for one enclave-bearing process."""

    enclave: Enclave
    page_table: dict[int, PteFlags] = field(default_factory=dict)
    #: region reserved for the client's loaded image (starts rwx at the EPC
    #: level so EMODPR can later *restrict* each page to r-x or rw-)
    client_base: int = 0
    client_pages: int = 0
    heap_base: int = 0
    heap_pages: int = 0
    heap_used_pages: int = 0
    trampoline_calls: int = 0
    sockets: dict[int, SimSocket] = field(default_factory=dict)
    #: sealed blobs of pages this host has swapped out (vaddr -> blob)
    evicted: dict[int, object] = field(default_factory=dict)
    _next_fd: int = 3


class HostOS:
    """The untrusted host: enclave builder, trampoline, EnGarde component."""

    def __init__(self, machine: SgxMachine) -> None:
        self.machine = machine
        self.runtimes: dict[int, EnclaveRuntime] = {}

    # ----------------------------------------------------- enclave build

    def build_enclave(
        self,
        *,
        base: int,
        size: int,
        bootstrap_pages: dict[int, bytes],
        heap_pages: int | None = None,
        client_pages: int = 0,
    ) -> EnclaveRuntime:
        """ECREATE + EADD/EEXTEND bootstrap content + client region + heap + EINIT.

        *bootstrap_pages* maps page-aligned vaddrs to their initial
        contents (EnGarde's code, crypto libraries, ...).  All of it is
        measured, so attestation covers exactly this bootstrap state.

        *client_pages* reserves a region for the client's loaded image.
        Its pages start rwx at the EPC level: SGX2's EMODPR can only
        *restrict* permissions, so provisioning writes the image while the
        pages are writable and the EnGarde host component then drops each
        page to r-x (code) or rw- (data).
        """
        machine = self.machine
        heap_pages = (
            machine.params.heap_initial_pages if heap_pages is None else heap_pages
        )
        enclave = machine.ecreate(base, size)
        runtime = EnclaveRuntime(enclave=enclave)

        for vaddr, content in sorted(bootstrap_pages.items()):
            machine.add_measured_page(enclave, vaddr, content)
            runtime.page_table[vaddr] = PteFlags(read=True, write=True, execute=True)

        occupied = max(bootstrap_pages, default=base - PAGE_SIZE) + PAGE_SIZE
        client_base = _page_align_up(occupied)
        for i in range(client_pages):
            vaddr = client_base + i * PAGE_SIZE
            if not enclave.contains(vaddr, PAGE_SIZE):
                raise SgxError(
                    f"client region of {client_pages} pages does not fit in ELRANGE"
                )
            machine.eadd(
                enclave, vaddr,
                perms=PagePermissions(read=True, write=True, execute=True),
            )
            runtime.page_table[vaddr] = PteFlags(read=True, write=True, execute=False)
        runtime.client_base = client_base
        runtime.client_pages = client_pages

        # Heap: committed at build time (SGX1 requires predicting the
        # maximum; the paper bumps OpenSGX's default from 300 to 5000).
        heap_base = _page_align_up(client_base + client_pages * PAGE_SIZE)
        for i in range(heap_pages):
            vaddr = heap_base + i * PAGE_SIZE
            if not enclave.contains(vaddr, PAGE_SIZE):
                raise SgxError(
                    f"heap of {heap_pages} pages does not fit in ELRANGE"
                )
            machine.eadd(
                enclave, vaddr,
                perms=PagePermissions(read=True, write=True, execute=False),
            )
            runtime.page_table[vaddr] = PteFlags()
        runtime.heap_base = heap_base
        runtime.heap_pages = heap_pages

        machine.einit(enclave)
        self.runtimes[enclave.eid] = runtime
        return runtime

    # -------------------------------------------------------- trampoline

    def trampoline(self, runtime: EnclaveRuntime) -> None:
        """Account one enclave exit/re-entry pair around a host service."""
        machine = self.machine
        machine.eexit(runtime.enclave)
        runtime.trampoline_calls += 1
        machine.eenter(runtime.enclave)

    def svc_alloc_pages(self, runtime: EnclaveRuntime, n_pages: int) -> int:
        """Heap growth service: returns the base vaddr of *n_pages* fresh pages.

        Satisfied from the pre-committed heap when possible; beyond that,
        EAUG extends the heap dynamically (SGX2).  Callers must already be
        inside the enclave; the trampoline cost is charged here.
        """
        if n_pages <= 0:
            raise SgxError("allocation must be at least one page")
        self.trampoline(runtime)
        enclave = runtime.enclave
        base = runtime.heap_base + runtime.heap_used_pages * PAGE_SIZE
        precommitted = runtime.heap_pages - runtime.heap_used_pages
        grow = n_pages - precommitted
        if grow > 0:
            if enclave.sealed:
                raise EnclaveSealedError("cannot grow a sealed enclave's heap")
            start = runtime.heap_base + runtime.heap_pages * PAGE_SIZE
            for i in range(grow):
                vaddr = start + i * PAGE_SIZE
                self.machine.eaug(enclave, vaddr)
                runtime.page_table[vaddr] = PteFlags()
            runtime.heap_pages += grow
        runtime.heap_used_pages += n_pages
        return base

    def svc_socket(self, runtime: EnclaveRuntime, sock: SimSocket) -> int:
        """Register an (already-connected) socket; returns a descriptor."""
        self.trampoline(runtime)
        fd = runtime._next_fd
        runtime._next_fd += 1
        runtime.sockets[fd] = sock
        return fd

    def svc_send(self, runtime: EnclaveRuntime, fd: int, data: bytes) -> None:
        self.trampoline(runtime)
        self._socket(runtime, fd).send(data)

    def svc_recv(self, runtime: EnclaveRuntime, fd: int) -> bytes:
        self.trampoline(runtime)
        return self._socket(runtime, fd).recv()

    def _socket(self, runtime: EnclaveRuntime, fd: int) -> SimSocket:
        try:
            return runtime.sockets[fd]
        except KeyError:
            raise SgxError(f"bad socket descriptor {fd}") from None

    # ------------------------------------------------------- EPC paging

    def page_out(self, runtime: EnclaveRuntime, vaddr: int) -> None:
        """Swap one enclave page out of the EPC (EWB); the host keeps the
        sealed blob.  Used under EPC pressure."""
        blob = self.machine.ewb(runtime.enclave, vaddr)
        runtime.evicted[vaddr] = blob
        pte = runtime.page_table.get(vaddr)
        if pte is not None:
            pte.read = pte.write = pte.execute = False  # not present

    def page_in(self, runtime: EnclaveRuntime, vaddr: int) -> None:
        """Reload a previously evicted page (ELDU + PTE restore)."""
        blob = runtime.evicted.pop(vaddr, None)
        if blob is None:
            raise SgxError(f"no evicted copy of page {vaddr:#x}")
        self.machine.eldu(runtime.enclave, blob)
        perms = runtime.enclave.pages[vaddr].perms
        runtime.page_table[vaddr] = PteFlags(
            read=perms.read, write=perms.write, execute=perms.execute
        )

    def evict_all_idle(self, runtime: EnclaveRuntime) -> int:
        """Swap out every resident page of an idle enclave; returns the
        count.  A simple whole-enclave policy — enough to model EPC
        multiplexing across tenants."""
        count = 0
        for vaddr in sorted(runtime.enclave.pages):
            self.page_out(runtime, vaddr)
            count += 1
        return count

    # --------------------------------------- EnGarde host-level component

    def apply_engarde_protections(
        self, runtime: EnclaveRuntime, executable_vaddrs: list[int]
    ) -> None:
        """Enforce W^X over the provisioned client pages and seal the enclave.

        The in-enclave component reports which pages hold client *code*;
        the host marks those execute-but-not-write and the rest
        write-but-not-execute, at the page-table level and — on SGX2 — at
        the EPC level via EMODPR.  Finally the enclave is sealed so no
        code can be injected after the compliance check (paper section 3).
        """
        enclave = runtime.enclave
        exec_set = set()
        for vaddr in executable_vaddrs:
            if vaddr % PAGE_SIZE:
                raise SgxError(f"executable page {vaddr:#x} is not page-aligned")
            if vaddr not in enclave.pages:
                raise SgxError(f"executable page {vaddr:#x} is not mapped")
            exec_set.add(vaddr)

        for vaddr in exec_set:
            runtime.page_table[vaddr] = PteFlags(read=True, write=False, execute=True)
            if self.machine.params.sgx2:
                self.machine.emodpr(
                    enclave, vaddr,
                    PagePermissions(read=True, write=False, execute=True),
                )

        for vaddr in enclave.pages:
            if vaddr in exec_set:
                continue
            pte = runtime.page_table.setdefault(vaddr, PteFlags())
            pte.execute = False
            pte.write = True
            if self.machine.params.sgx2:
                page = enclave.pages[vaddr]
                if page.perms.execute:
                    self.machine.emodpr(
                        enclave, vaddr,
                        PagePermissions(read=True, write=page.perms.write,
                                        execute=False),
                    )

        enclave.sealed = True

    # ----------------------------------------------- adversary's eye view

    def peek_enclave_memory(self, runtime: EnclaveRuntime, vaddr: int) -> bytes:
        """What the (possibly malicious) host sees when it reads an EPC page:
        ciphertext only."""
        page = runtime.enclave.page_at(vaddr)
        return self.machine.epc.read_ciphertext(page)


def _page_align_up(vaddr: int) -> int:
    return (vaddr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
