"""Software SGX machine (OpenSGX analogue).

The paper builds EnGarde on OpenSGX, a QEMU-based SGX emulator, because
(1) open-source SGX tooling was rudimentary and (2) EnGarde needs SGX2's
EPC-level page-permission instructions, which no shipping silicon had.
This package is our Python equivalent: an EPC with hardware-keyed page
encryption, the enclave lifecycle and measurement semantics, SGX2 dynamic
memory instructions, a host OS with the trampoline mechanism, and
EPID-style quote-based attestation — all charging the same
10K-cycles-per-SGX-instruction cost model the paper's evaluation uses.
"""

from .attestation import AttestationService, Quote, QuotingEnclave, verify_quote
from .cpu import CostModel, CycleMeter, PhaseBreakdown
from .enclave import Enclave, EnclaveState, Secs
from .epc import Epc, EpcPage, PagePermissions
from .host import EnclaveRuntime, HostOS, PteFlags
from .isa import Report, SgxMachine
from .paging import EvictedPage, VersionArray
from .measurement import Measurement
from .params import ENGARDE_DEFAULT, OPENSGX_DEFAULT, PAGE_SIZE, SgxParams

__all__ = [
    "SgxMachine", "Report", "EvictedPage", "VersionArray",
    "Enclave", "EnclaveState", "Secs",
    "Epc", "EpcPage", "PagePermissions",
    "Measurement",
    "HostOS", "EnclaveRuntime", "PteFlags",
    "CycleMeter", "CostModel", "PhaseBreakdown",
    "QuotingEnclave", "Quote", "verify_quote", "AttestationService",
    "SgxParams", "OPENSGX_DEFAULT", "ENGARDE_DEFAULT", "PAGE_SIZE",
]
