"""EPC paging: EWB / ELDU with replay protection.

SGX lets the OS evict EPC pages to ordinary memory (EWB) and reload them
(ELDU).  Because the OS is untrusted, evicted pages are sealed with a
paging key and bound to a *version counter* kept in hardware-protected
Version Array slots — so the OS can neither tamper with an evicted page
nor replay a stale copy of it.  This module models that machinery; the
machine-level instructions live in :class:`~repro.sgx.isa.SgxMachine`
(``ewb``/``eldu``) and the host policy in
:meth:`~repro.sgx.host.HostOS.page_out`/``page_in``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..crypto.mac import hmac_key
from ..errors import SgxError
from ..faults.hooks import DROP, fault_hook
from .params import PAGE_SIZE

__all__ = ["EvictedPage", "VersionArray"]


@dataclass(frozen=True)
class EvictedPage:
    """The sealed blob the OS holds for an evicted page.

    Everything here is attacker-visible (and attacker-storable); security
    rests on the MAC and the version check at reload.
    """

    eid: int
    vaddr: int
    version: int
    perms: str           # EPCM permissions at eviction time, e.g. "rw-"
    ciphertext: bytes    # sealed page content
    mac: bytes

    def body(self) -> bytes:
        return (
            self.eid.to_bytes(4, "little")
            + self.vaddr.to_bytes(8, "little")
            + self.version.to_bytes(8, "little")
            + self.perms.encode()
            + self.ciphertext
        )


class VersionArray:
    """Hardware-protected version slots, one per evicted page.

    Real SGX stores these in dedicated VA pages inside the EPC; the
    property that matters — the OS cannot read or forge them — is modelled
    by keeping them inside the machine object, unreachable through any
    host-facing API.
    """

    def __init__(self) -> None:
        self._versions: dict[tuple[int, int], int] = {}
        self._counter = 0

    def assign(self, eid: int, vaddr: int) -> int:
        """Allocate a fresh version for an eviction; returns the number."""
        key = (eid, vaddr)
        if key in self._versions:
            raise SgxError(
                f"page {vaddr:#x} of enclave {eid} is already evicted"
            )
        self._counter += 1
        self._versions[key] = self._counter
        return self._counter

    def consume(self, eid: int, vaddr: int, version: int) -> None:
        """Check-and-clear at reload; a mismatch is a replay."""
        key = (eid, vaddr)
        current = self._versions.get(key)
        if current is None:
            raise SgxError(
                f"no eviction record for page {vaddr:#x} of enclave {eid} "
                "(double reload or replay)"
            )
        if current != version:
            raise SgxError(
                f"version mismatch for page {vaddr:#x}: the OS supplied a "
                f"stale copy (v{version}, expected v{current})"
            )
        del self._versions[key]

    def pending(self, eid: int) -> int:
        """Number of pages of *eid* currently evicted."""
        return sum(1 for (e, _v) in self._versions if e == eid)


def seal_page(
    paging_key: bytes, eid: int, vaddr: int, version: int, perms: str,
    plaintext: bytes,
) -> EvictedPage:
    """EWB's sealing: encrypt + MAC the page under the paging key."""
    if len(plaintext) != PAGE_SIZE:
        raise SgxError("EWB seals whole pages")
    stream = _stream(paging_key, eid, vaddr, version)
    ciphertext = _xor(plaintext, stream)
    blob = EvictedPage(
        eid=eid, vaddr=vaddr, version=version, perms=perms,
        ciphertext=ciphertext, mac=b"",
    )
    # hmac_key caches the paging key's ipad/opad midstates across every
    # EWB/ELDU under the same key; the MAC bytes are unchanged.
    mac = hmac_key(paging_key).mac(blob.body())
    return EvictedPage(
        eid=eid, vaddr=vaddr, version=version, perms=perms,
        ciphertext=ciphertext, mac=mac,
    )


def unseal_page(paging_key: bytes, blob: EvictedPage) -> bytes:
    """ELDU's unsealing: verify the MAC, decrypt."""
    # Injected corruption hits the sealed ciphertext *before* the MAC
    # check, so the replay-protection machinery is what catches it.
    ciphertext = fault_hook("sgx.paging.unseal", blob.ciphertext, error=SgxError)
    if ciphertext is DROP:
        raise SgxError(
            f"[fault:sgx.paging.unseal:drop] evicted page {blob.vaddr:#x} "
            "lost by the OS"
        )
    if ciphertext is not blob.ciphertext:
        blob = EvictedPage(
            eid=blob.eid, vaddr=blob.vaddr, version=blob.version,
            perms=blob.perms, ciphertext=ciphertext, mac=blob.mac,
        )
    expected = hmac_key(paging_key).mac(
        EvictedPage(
            eid=blob.eid, vaddr=blob.vaddr, version=blob.version,
            perms=blob.perms, ciphertext=blob.ciphertext, mac=b"",
        ).body()
    )
    if expected != blob.mac:
        raise SgxError(
            f"ELDU MAC failure for page {blob.vaddr:#x}: evicted page was "
            "tampered with"
        )
    stream = _stream(paging_key, blob.eid, blob.vaddr, blob.version)
    return _xor(blob.ciphertext, stream)


def _stream(key: bytes, eid: int, vaddr: int, version: int) -> bytes:
    seed = (key + eid.to_bytes(4, "little") + vaddr.to_bytes(8, "little")
            + version.to_bytes(8, "little"))
    return hashlib.shake_128(seed).digest(PAGE_SIZE)


def _xor(a: bytes, b: bytes) -> bytes:
    n = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b[:n], "big")).to_bytes(n, "big")
