"""Enclave state: SECS, page map, and page-granular memory access.

An enclave is "a linear span of a process's virtual address space whose
physical pages are drawn from the EPC" (paper section 2).  This module
holds the per-enclave bookkeeping; the lifecycle instructions that mutate
it live in :mod:`repro.sgx.isa`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SgxError
from .epc import Epc, EpcPage
from .measurement import Measurement
from .params import PAGE_SIZE

__all__ = ["Enclave", "EnclaveState", "Secs"]


class EnclaveState(enum.Enum):
    PENDING = "pending"          # ECREATE done, pages being added
    INITIALIZED = "initialized"  # EINIT done, can be entered


@dataclass
class Secs:
    """SGX Enclave Control Structure (the fields this simulation uses)."""

    base: int
    size: int
    attributes: int = 0
    mrenclave: bytes = b""


@dataclass
class Enclave:
    """A live enclave: SECS + EPC page map + measurement state."""

    eid: int
    secs: Secs
    epc: Epc
    measurement: Measurement = field(default_factory=Measurement)
    state: EnclaveState = EnclaveState.PENDING
    #: set by EnGarde's host component after provisioning: no more pages
    sealed: bool = False
    pages: dict[int, EpcPage] = field(default_factory=dict)
    entered: int = 0  # number of threads currently inside

    # ------------------------------------------------------------ ranges

    def contains(self, vaddr: int, length: int = 1) -> bool:
        return (
            self.secs.base <= vaddr
            and vaddr + length <= self.secs.base + self.secs.size
        )

    def page_at(self, vaddr: int) -> EpcPage:
        page_vaddr = vaddr & ~(PAGE_SIZE - 1)
        try:
            return self.pages[page_vaddr]
        except KeyError:
            raise SgxError(
                f"enclave {self.eid}: no EPC page mapped at {page_vaddr:#x}"
            ) from None

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def mrenclave(self) -> bytes:
        return self.measurement.mrenclave

    # ------------------------------------------------- memory accessors
    #
    # These model accesses *from a thread executing inside the enclave*:
    # the hardware decrypts EPC lines transparently.  Permission bits are
    # enforced against the EPCM (SGX2 semantics).

    def read(self, vaddr: int, length: int) -> bytes:
        if not self.contains(vaddr, length):
            raise SgxError(f"read of {vaddr:#x}+{length} outside ELRANGE")
        out = bytearray()
        pos = vaddr
        remaining = length
        while remaining > 0:
            page = self.page_at(pos)
            if not page.perms.read:
                raise SgxError(f"read permission fault at {pos:#x}")
            offset = pos % PAGE_SIZE
            take = min(PAGE_SIZE - offset, remaining)
            plain = self.epc.read_plaintext(page, eid=self.eid)
            out += plain[offset:offset + take]
            pos += take
            remaining -= take
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        if not self.contains(vaddr, len(data)):
            raise SgxError(f"write of {vaddr:#x}+{len(data)} outside ELRANGE")
        pos = vaddr
        view = memoryview(bytes(data))
        while view:
            page = self.page_at(pos)
            if not page.perms.write:
                raise SgxError(f"write permission fault at {pos:#x}")
            offset = pos % PAGE_SIZE
            take = min(PAGE_SIZE - offset, len(view))
            plain = bytearray(self.epc.read_plaintext(page, eid=self.eid))
            plain[offset:offset + take] = view[:take]
            self.epc.write_plaintext(page, bytes(plain), eid=self.eid)
            pos += take
            view = view[take:]

    def fetch_code(self, vaddr: int, length: int) -> bytes:
        """An instruction fetch: requires execute permission."""
        if not self.contains(vaddr, length):
            raise SgxError(f"fetch of {vaddr:#x}+{length} outside ELRANGE")
        page = self.page_at(vaddr)
        if not page.perms.execute:
            raise SgxError(f"execute permission fault at {vaddr:#x}")
        return self.read(vaddr, length)
