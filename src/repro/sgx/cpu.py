"""Cycle accounting: the evaluation's performance model.

The paper measures EnGarde by counting instructions under OpenSGX and
QEMU: SGX instructions are charged 10 000 cycles each, non-SGX
instructions run "at native speed", and the per-phase totals (disassembly,
policy checking, loading and relocation) are reported as CPU cycles
(Figures 3-5).

We reproduce the *accounting scheme*: every component charges the
:class:`CycleMeter` for the work it actually performs (bytes fetched,
instructions decoded, SHA-256 blocks compressed, relocations applied, SGX
instructions executed).  The :class:`CostModel` maps each event to a cycle
weight — the weights approximate how many native instructions each Python-
level operation stands for, so totals land in the paper's regime.  Nothing
is back-solved from the paper's tables; the per-benchmark *shape* must
emerge from the implementation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields

__all__ = ["CostModel", "CycleMeter", "PhaseBreakdown"]


@dataclass(frozen=True)
class CostModel:
    """Cycle weights per accountable event.

    Weights are "emulated native instructions x cycles-per-instruction"
    estimates for the C implementation each Python operation stands in
    for (e.g. NaCl's per-instruction decode loop runs a few hundred native
    instructions).
    """

    #: per SGX instruction (ECREATE/EADD/EENTER/...) — the OpenSGX model
    sgx_instruction: int = 10_000
    #: disassembly: per byte fetched/examined by the decoder
    decode_byte: int = 35
    #: disassembly: per instruction completed (table lookups, operand build)
    decode_insn: int = 800
    #: disassembly: per instruction appended to the dynamic buffer
    buffer_store: int = 90
    #: SHA-256: per 64-byte compression block
    sha256_block: int = 5_000
    #: symbol hash table: per insert
    symtab_insert: int = 120
    #: symbol hash table: per lookup
    symtab_lookup: int = 100
    #: policy engine: per instruction scanned in a linear pass
    policy_scan_insn: int = 70
    #: policy engine: per operand/pattern comparison inside a window scan
    policy_compare: int = 55
    #: loader: one-time setup (ELF program-header walk, .dynamic parse,
    #: call-stack construction, control-transfer plumbing)
    loader_setup: int = 3_400
    #: loader: per relocation applied
    reloc_apply: int = 55
    #: loader: per LOAD segment mapped (the loader maps segments wholesale)
    segment_map: int = 250
    #: loader: per page whose permissions are recorded for the host
    page_map: int = 2
    #: loader: per byte copied into enclave memory (amortised, per 64B line)
    copy_line: int = 12
    #: crypto channel: per 16-byte AES block (AES-NI-era estimate)
    aes_block: int = 40
    #: RSA private-key operation (2048-bit CRT estimate)
    rsa_private_op: int = 5_000_000
    #: hardware page encryption/decryption, per page crossing the EPC
    epc_page_crypt: int = 1_500

    def replace(self, **overrides) -> "CostModel":
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return CostModel(**values)


@dataclass
class PhaseBreakdown:
    """Cycle totals for one named phase, split by event."""

    cycles: int = 0
    sgx_instructions: int = 0
    events: dict[str, int] = field(default_factory=dict)

    def add(self, event: str, count: int, cycles: int) -> None:
        self.cycles += cycles
        self.events[event] = self.events.get(event, 0) + count
        if event == "sgx_instruction":
            self.sgx_instructions += count


class CycleMeter:
    """Accumulates cycles, attributed to the currently-active phase.

    Components call :meth:`charge` as they work; the harness wraps pipeline
    stages in :meth:`phase` blocks and reads per-phase totals afterwards —
    mirroring how the paper splits its tables into Disassembly / Policy
    Checking / Loading-and-Relocation columns.
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost = cost_model or CostModel()
        self.total = PhaseBreakdown()
        self.phases: dict[str, PhaseBreakdown] = {}
        self._stack: list[str] = []

    def charge(self, event: str, count: int = 1) -> int:
        """Charge *count* occurrences of *event*; returns cycles charged."""
        weight = getattr(self.cost, event, None)
        if weight is None:
            raise KeyError(f"unknown cost event {event!r}")
        cycles = weight * count
        self.total.add(event, count, cycles)
        if self._stack:
            phase = self.phases.setdefault(self._stack[-1], PhaseBreakdown())
            phase.add(event, count, cycles)
        return cycles

    def charge_sgx(self, count: int = 1) -> int:
        """Charge *count* SGX instructions (10K cycles each by default)."""
        return self.charge("sgx_instruction", count)

    def charge_batch(self, counts: dict[str, int]) -> int:
        """Charge several events at once; returns total cycles charged.

        Semantically identical to calling :meth:`charge` once per event
        with the summed count — the cycle model is linear
        (``cycles = weight x count``), so hot loops may accumulate counts
        in a plain local dict and flush once per stage instead of paying
        three attribute/dict round trips per instruction.  Zero counts are
        skipped so the per-event breakdown stays byte-identical to
        per-occurrence charging (no spurious zero-count keys).
        """
        cost = self.cost
        total = self.total
        phase = None
        if self._stack:
            phase = self.phases.setdefault(self._stack[-1], PhaseBreakdown())
        charged = 0
        for event, count in counts.items():
            if not count:
                continue
            weight = getattr(cost, event, None)
            if weight is None:
                raise KeyError(f"unknown cost event {event!r}")
            cycles = weight * count
            total.add(event, count, cycles)
            if phase is not None:
                phase.add(event, count, cycles)
            charged += cycles
        return charged

    @contextmanager
    def phase(self, name: str):
        """Attribute charges inside the block to phase *name*."""
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()

    def phase_cycles(self, name: str) -> int:
        breakdown = self.phases.get(name)
        return breakdown.cycles if breakdown else 0

    @property
    def total_cycles(self) -> int:
        return self.total.cycles

    @property
    def sgx_instruction_count(self) -> int:
        return self.total.sgx_instructions

    def reset(self) -> None:
        self.total = PhaseBreakdown()
        self.phases.clear()
        self._stack.clear()

    def report(self) -> dict[str, dict[str, int]]:
        """Phase -> {cycles, per-event counts} summary for the harness."""
        out = {}
        for name, phase in self.phases.items():
            out[name] = {"cycles": phase.cycles, **phase.events}
        return out
