"""EnGarde core: the paper's primary contribution.

Pipeline components (disassembly stage, policy engine, loader), the three
evaluated policy modules, and the end-to-end mutual-trust provisioning
protocol between a cloud provider and a client.
"""

from .disasm import Disassembler, DisassemblyResult
from .engarde import (
    ENGARDE_VERSION,
    EnGarde,
    InspectionOutcome,
    static_text_pages,
)
from .extent import (
    ExtentPlan,
    ExtentScan,
    ExtentSplitOutcome,
    inspect_extent_split,
    plan_extent_split,
    scan_extent,
)
from .funcid import RecognizedFunctions, recognize_functions
from .loader import LoadedImage, Loader
from .policies import IfccPolicy, LibraryLinkingPolicy, StackProtectionPolicy
from .policy import (
    PolicyContext,
    PolicyModule,
    PolicyRegistry,
    PolicyResult,
    SymbolHashTable,
)
from .provisioning import (
    CloudProvider,
    EnclaveClient,
    ProvisioningResult,
    expected_mrenclave,
    provision,
)
from .report import ComplianceReport
from .runtime import (
    ClientAborted,
    EnclaveExecutor,
    ExecutionResult,
    StackSmashDetected,
)

__all__ = [
    "EnGarde", "InspectionOutcome", "ENGARDE_VERSION", "static_text_pages",
    "Disassembler", "DisassemblyResult",
    "Loader", "LoadedImage",
    "PolicyModule", "PolicyRegistry", "PolicyResult", "PolicyContext",
    "SymbolHashTable",
    "LibraryLinkingPolicy", "StackProtectionPolicy", "IfccPolicy",
    "ComplianceReport",
    "CloudProvider", "EnclaveClient", "ProvisioningResult",
    "provision", "expected_mrenclave",
    "EnclaveExecutor", "ExecutionResult",
    "StackSmashDetected", "ClientAborted",
    "recognize_functions", "RecognizedFunctions",
    "ExtentPlan", "ExtentScan", "ExtentSplitOutcome",
    "plan_extent_split", "scan_extent", "inspect_extent_split",
]
