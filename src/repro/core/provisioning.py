"""The mutual-trust provisioning protocol (paper sections 2-3).

Actors:

* :class:`CloudProvider` — owns the SGX machine and host OS.  Creates a
  fresh enclave provisioned with the agreed EnGarde build, relays
  attestation, and — on a compliant verdict — pins W^X page permissions
  and seals the enclave.  On a non-compliant verdict it tears the enclave
  down.  It never sees client plaintext.
* :class:`EnclaveClient` — holds the binary.  Computes the *expected*
  MRENCLAVE from the agreed EnGarde build (both parties have EnGarde's
  code for inspection), verifies the quote, checks that the channel key is
  the one bound into the quote, then streams the binary in encrypted
  page-sized records and finally receives the verdict over the same
  authenticated channel (so a provider falsely claiming non-compliance is
  detectable).
* :func:`provision` — drives the interleaving of the two sides plus the
  in-enclave EnGarde session; returns everything the harness reports.
"""

from __future__ import annotations

import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..crypto import HmacDrbg
from ..elf import read_elf
from ..crypto.channel import SecureChannel, ServerHandshake, client_handshake
from ..crypto.rsa import RsaPrivateKey
from ..errors import (
    AttestationError,
    CryptoError,
    NetError,
    ProtocolError,
    RejectionError,
    ReproError,
)
from ..faults import hooks as _faults
from ..faults.clock import Clock, SystemClock
from ..faults.hooks import fault_hook
from ..net import SocketPair
from ..sgx import (
    HostOS,
    PAGE_SIZE,
    QuotingEnclave,
    SgxMachine,
    SgxParams,
    verify_quote,
)
from ..sgx.cpu import CycleMeter
from ..sgx.host import EnclaveRuntime
from ..sgx.measurement import Measurement
from .engarde import EnGarde, InspectionOutcome
from .policy import PolicyRegistry
from .report import ComplianceReport
from .streaming import (
    DeltaIndex,
    StreamingPipeline,
    build_delta_index,
    delta_scan,
)

__all__ = [
    "CloudProvider", "EnclaveClient", "ProvisioningResult", "provision",
    "ResilienceConfig",
    "expected_mrenclave", "ENCLAVE_BASE", "DEFAULT_ENCLAVE_PAGES",
]

ENCLAVE_BASE = 0x10000
DEFAULT_ENCLAVE_PAGES = 0x8000  # 128 MiB ELRANGE
_CONTENT_HEADER = struct.Struct("<QI")  # total size, record count


def _bootstrap_pages(engarde: EnGarde) -> dict[int, bytes]:
    """Page-chunked EnGarde bootstrap content at the enclave base."""
    blob = engarde.bootstrap_bytes()
    pages = {}
    for i in range(0, max(len(blob), 1), PAGE_SIZE):
        pages[ENCLAVE_BASE + i] = blob[i:i + PAGE_SIZE]
    return pages


#: memo for :func:`expected_mrenclave` — a pure function of its inputs,
#: re-evaluated by the client on *every* provisioning run otherwise
_MRENCLAVE_MEMO: "OrderedDict[tuple, bytes]" = OrderedDict()
_MRENCLAVE_MEMO_CAP = 64
_MRENCLAVE_LOCK = threading.Lock()


def expected_mrenclave(
    policies: PolicyRegistry,
    *,
    heap_pages: int,
    client_pages: int,
    enclave_pages: int = DEFAULT_ENCLAVE_PAGES,
    use_cache: bool = True,
    fast: bool = False,
) -> bytes:
    """What MRENCLAVE *must* be for the agreed EnGarde build.

    Pure replay of the build sequence `HostOS.build_enclave` performs —
    both the provider and the client can compute this independently from
    EnGarde's public code, which is the whole point of mutual trust.
    (A regression test pins this function against an actual build.)

    The result depends only on the policy digest material and the three
    geometry parameters, so it is memoized; ``use_cache=False`` forces
    the full replay (the benchmark's reference mode uses it).  ``fast``
    replays through the hashlib-backed measurement (identical absorb
    framing, so the digest is byte-identical); the streaming client uses
    it so its cold verification keeps up with the streamed provider.
    """
    token = (
        policies.digest_material(), heap_pages, client_pages, enclave_pages,
    )
    if use_cache:
        with _MRENCLAVE_LOCK:
            cached = _MRENCLAVE_MEMO.get(token)
            if cached is not None:
                _MRENCLAVE_MEMO.move_to_end(token)
                return cached
    engarde = EnGarde(policies)
    boot = _bootstrap_pages(engarde)
    size = enclave_pages * PAGE_SIZE
    m = Measurement(fast=fast)
    m.ecreate(ENCLAVE_BASE, size, 0)
    for vaddr in sorted(boot):
        m.eadd(vaddr, "REG", "rwx")
        content = boot[vaddr].ljust(PAGE_SIZE, b"\x00")
        for off in range(0, PAGE_SIZE, 256):
            m.eextend(vaddr + off, content[off:off + 256])
    client_base = _align_page(max(boot) + PAGE_SIZE)
    for i in range(client_pages):
        m.eadd(client_base + i * PAGE_SIZE, "REG", "rwx")
    heap_base = client_base + client_pages * PAGE_SIZE
    for i in range(heap_pages):
        m.eadd(heap_base + i * PAGE_SIZE, "REG", "rw-")
    result = m.finalize()
    with _MRENCLAVE_LOCK:
        _MRENCLAVE_MEMO[token] = result
        _MRENCLAVE_MEMO.move_to_end(token)
        while len(_MRENCLAVE_MEMO) > _MRENCLAVE_MEMO_CAP:
            _MRENCLAVE_MEMO.popitem(last=False)
    return result


@dataclass(frozen=True)
class ResilienceConfig:
    """How hard the provisioning transport tries before failing closed.

    With a config in play, a corrupt/dropped/reordered content record
    triggers up to *max_retransmits* retransmit rounds (client rewinds
    its channel's resend window) with exponential backoff on *clock*,
    and any failure that survives — transport, protocol, or machinery —
    is converted into a typed REJECT verdict instead of an exception.
    """

    max_retransmits: int = 3
    backoff_base: float = 0.05
    clock: Clock = field(default_factory=SystemClock)


#: exception type -> rejection stage reported when resilience fails closed
_FAIL_CLOSED_STAGES = (
    (CryptoError, "channel"),
    (NetError, "channel"),
    (ProtocolError, "protocol"),
    (AttestationError, "attestation"),
)


def _fail_closed_stage(exc: ReproError) -> str:
    for err_type, stage in _FAIL_CLOSED_STAGES:
        if isinstance(exc, err_type):
            return stage
    return "machinery"


@dataclass
class ProvisioningSession:
    """Provider-side state for one enclave being provisioned."""

    runtime: EnclaveRuntime
    engarde: EnGarde
    handshake: ServerHandshake
    channel: SecureChannel | None = None
    outcome: InspectionOutcome | None = None
    benchmark: str = "client"


@dataclass
class ProvisioningResult:
    """Everything one provisioning run produced."""

    accepted: bool
    report: ComplianceReport
    outcome: InspectionOutcome
    meter: CycleMeter
    runtime: EnclaveRuntime | None
    #: what the client's side concluded (must match `report`)
    client_verdict: ComplianceReport | None = None
    #: typed-error text when a resilient run failed closed (else None)
    error: str | None = None


class CloudProvider:
    """The cloud provider: machine owner and policy enforcer."""

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        params: SgxParams | None = None,
        rng: HmacDrbg | None = None,
        rsa_bits: int = 1024,
        heap_pages: int | None = None,
        client_pages: int = 2048,
        enclave_pages: int = DEFAULT_ENCLAVE_PAGES,
        per_insn_malloc: bool = False,
        channel_keypair: RsaPrivateKey | None = None,
        channel_optimized: bool = True,
        verdict_cache=None,
        streaming: bool = False,
    ) -> None:
        self.policies = policies
        self.params = params or SgxParams()
        #: streamed receive path: decrypt in place, overlap decode/prescan
        #: with the channel drain, and keep a delta index per benchmark so
        #: updated binaries only re-pay inspection for changed functions.
        #: Every wire byte, verdict byte, MRENCLAVE, and meter tick is
        #: identical to the phased path (``streaming=False``), which stays
        #: frozen as the differential oracle.
        self.streaming = streaming
        self.machine = SgxMachine(self.params, fast=streaming)
        self.host = HostOS(self.machine)
        self.rng = rng or HmacDrbg(b"cloud-provider")
        self.quoting_enclave = QuotingEnclave(self.machine, self.rng.fork(b"qe"))
        self.rsa_bits = rsa_bits
        self.heap_pages = (
            self.params.heap_initial_pages if heap_pages is None else heap_pages
        )
        self.client_pages = client_pages
        self.enclave_pages = enclave_pages
        self.per_insn_malloc = per_insn_malloc
        #: pre-generated channel keypair (tests reuse one to skip keygen)
        self.channel_keypair = channel_keypair
        #: ``False`` pins every session's channel to the frozen reference
        #: crypto (differential oracle / benchmark baseline)
        self.channel_optimized = channel_optimized
        #: optional provisioning verdict cache (duck-typed so the core
        #: stays free of service imports; see
        #: :class:`repro.service.cache.ProvisioningVerdictCache`).  The
        #: cached object is only the *verdict*: loading into the fresh
        #: enclave still runs on every hit — it is a per-enclave side
        #: effect, not a memoizable result.
        self.verdict_cache = verdict_cache
        #: per-benchmark delta index (chunk map + function-verdict memo)
        #: used by the streamed path to re-inspect only changed functions
        #: when the same client re-provisions an updated binary
        self._delta_index: "OrderedDict[str, DeltaIndex]" = OrderedDict()
        self._delta_index_cap = 8

    def start_session(
        self, sock, *, benchmark: str = "client"
    ) -> ProvisioningSession:
        """Build the EnGarde enclave and send the channel public key."""
        meter = self.machine.meter
        runtime_holder: list[EnclaveRuntime] = []

        def alloc_pages(n: int) -> int:
            return self.host.svc_alloc_pages(runtime_holder[0], n)

        engarde = EnGarde(
            self.policies, meter,
            alloc_pages=alloc_pages, per_insn_malloc=self.per_insn_malloc,
        )
        boot = _bootstrap_pages(engarde)
        runtime = self.host.build_enclave(
            base=ENCLAVE_BASE,
            size=self.enclave_pages * PAGE_SIZE,
            bootstrap_pages=boot,
            heap_pages=self.heap_pages,
            client_pages=self.client_pages,
        )
        runtime_holder.append(runtime)
        self.machine.eenter(runtime.enclave)
        self.host.svc_socket(runtime, sock)

        fault_hook("core.provisioning.handshake", error=ProtocolError)
        handshake = ServerHandshake(
            sock, self.rng.fork(b"channel"), rsa_bits=self.rsa_bits,
            keypair=self.channel_keypair, optimized=self.channel_optimized,
        )
        handshake.send_public_key()
        return ProvisioningSession(
            runtime=runtime, engarde=engarde, handshake=handshake,
            benchmark=benchmark,
        )

    def attest(self, session: ProvisioningSession, challenge: bytes):
        """EREPORT (binding the channel key) -> quoting enclave -> quote."""
        keypair = session.handshake._keypair
        assert keypair is not None, "handshake must run before attestation"
        fingerprint = keypair.public_key.fingerprint()
        report = self.machine.ereport(session.runtime.enclave, fingerprint)
        return self.quoting_enclave.quote(report, challenge)

    def run_engarde(
        self,
        session: ProvisioningSession,
        *,
        resilience: "ResilienceConfig | None" = None,
        retransmit=None,
    ) -> ComplianceReport:
        """Complete the handshake, receive content, run the pipeline.

        *retransmit* is the client-side callback ``fn(from_seq)`` the
        resilient receive path invokes after flushing a broken stream;
        without a :class:`ResilienceConfig` any transport failure
        propagates exactly as before.
        """
        fault_hook("core.provisioning.handshake", error=ProtocolError)
        session.channel = session.handshake.complete()
        if self.streaming:
            raw, scan = self._receive_content_streamed(
                session, resilience=resilience, retransmit=retransmit
            )
        else:
            raw = self._receive_content(
                session, resilience=resilience, retransmit=retransmit
            )
            scan = None
        runtime = session.runtime
        cache = self.verdict_cache
        key = None
        if cache is not None:
            # Region geometry is part of the key: the same bytes loaded
            # into a differently-shaped client region can legitimately
            # produce a different verdict (the loader's capacity check).
            key = cache.key_for(
                raw, self.policies, runtime.client_base, runtime.client_pages,
            )
            cached = cache.get(key, benchmark=session.benchmark)
            if cached is not None:
                session.outcome = self._replay_cached_verdict(
                    session, raw, cached
                )
                return session.outcome.report
        session.outcome = session.engarde.inspect_and_load(
            raw,
            runtime.enclave,
            runtime.client_base,
            runtime.client_pages,
            benchmark=session.benchmark,
            scan=scan,
        )
        if key is not None:
            cache.put(key, session.outcome.report)
        if scan is not None:
            self._update_delta_index(session, scan)
        return session.outcome.report

    def _update_delta_index(self, session: ProvisioningSession, scan) -> None:
        """Refresh the benchmark's delta index from a *verified* scan.

        The index is only rebuilt from instruction tokens the disassembler
        actually adopted (``disasm.scan is scan`` — the speculative scan
        survived the exact-parse cross-check); a fallback run or a rejected
        binary leaves the previous index untouched.
        """
        outcome = session.outcome
        if outcome is None or outcome.disassembly is None:
            return
        disasm = outcome.disassembly
        if disasm.scan is not scan:
            return
        index = self._delta_index.get(session.benchmark)
        if index is None:
            index = DeltaIndex()
        text = disasm.image.text_sections[0]
        build_delta_index(
            index, text.data, scan,
            [addr for addr, _name in sorted(disasm.symtab.items())],
        )
        self._delta_index[session.benchmark] = index
        self._delta_index.move_to_end(session.benchmark)
        while len(self._delta_index) > self._delta_index_cap:
            self._delta_index.popitem(last=False)

    def _replay_cached_verdict(
        self,
        session: ProvisioningSession,
        raw: bytes,
        cached: ComplianceReport,
    ) -> InspectionOutcome:
        """Act on a cache hit without re-running inspection.

        A rejected verdict needs no enclave work at all.  A compliant one
        skips decode and policy checking but still *loads* the image into
        this session's fresh enclave — the report is rebuilt from what the
        loader actually mapped, so a hit can never claim pages it did not
        pin.
        """
        if not cached.compliant:
            return InspectionOutcome(report=cached)
        runtime = session.runtime
        engarde = session.engarde
        image = read_elf(raw)
        try:
            with engarde.meter.phase("loading"):
                loaded = engarde.loader.load(
                    image, runtime.enclave,
                    runtime.client_base, runtime.client_pages,
                )
        except RejectionError as exc:
            return InspectionOutcome(
                report=ComplianceReport.rejected(
                    session.benchmark, self.policies.names(), stage=exc.stage
                )
            )
        return InspectionOutcome(
            report=ComplianceReport.accepted(
                session.benchmark, self.policies.names(),
                loaded.executable_pages,
            ),
            loaded=loaded,
        )

    def finalize(self, session: ProvisioningSession) -> bool:
        """Act on the verdict: pin W^X + seal, or tear down.

        Returns True when the enclave was accepted and sealed.
        """
        if session.outcome is None or session.channel is None:
            raise ProtocolError("finalize before run_engarde")
        report = session.outcome.report
        # The verdict travels to the client over the *authenticated*
        # channel, so the provider cannot forge "non-compliant".
        session.channel.send(report.serialize())
        if report.compliant:
            self.host.apply_engarde_protections(
                session.runtime, list(report.executable_pages)
            )
            return True
        self.machine.eexit(session.runtime.enclave)
        self.machine.destroy(session.runtime.enclave)
        return False

    # ------------------------------------------------------------------

    def _receive_content(
        self,
        session: ProvisioningSession,
        *,
        resilience: "ResilienceConfig | None" = None,
        retransmit=None,
    ) -> bytes:
        """Receive the encrypted blocks through the host trampoline."""
        runtime = session.runtime
        channel = session.channel
        assert channel is not None
        meter = self.machine.meter

        fd = 3  # the socket registered in start_session
        header = self._recv_record(
            runtime, channel, fd, meter,
            resilience=resilience, retransmit=retransmit,
        )
        if len(header) != _CONTENT_HEADER.size:
            raise ProtocolError("bad content header")
        total, records = _CONTENT_HEADER.unpack(header)
        if total > runtime.client_pages * PAGE_SIZE * 4:
            raise ProtocolError("announced content size exceeds any sane image")
        chunks = []
        received = 0
        for _ in range(records):
            chunk = self._recv_record(
                runtime, channel, fd, meter,
                resilience=resilience, retransmit=retransmit,
            )
            chunks.append(chunk)
            received += len(chunk)
        if received != total:
            raise ProtocolError(
                f"content truncated: announced {total}, received {received}"
            )
        return b"".join(chunks)

    def _recv_record(
        self,
        runtime: EnclaveRuntime,
        channel: SecureChannel,
        fd: int,
        meter: CycleMeter,
        *,
        resilience: "ResilienceConfig | None" = None,
        retransmit=None,
    ) -> bytes:
        # Socket I/O exits the enclave (trampoline); decryption happens
        # back inside.  The AES work is charged per 16-byte block.
        #
        # With a ResilienceConfig and a retransmit callback, a corrupt or
        # missing record triggers bounded ARQ rounds: flush the broken
        # stream, exponential backoff on the shared clock, ask the peer
        # to rewind its resend window to the expected sequence number.
        attempt = 0
        while True:
            try:
                fault_hook("core.provisioning.record", error=ProtocolError)
                record = channel.recv()
                break
            except (CryptoError, NetError, ProtocolError):
                if (
                    resilience is None
                    or retransmit is None
                    or attempt >= resilience.max_retransmits
                ):
                    raise
                resilience.clock.sleep(
                    resilience.backoff_base * (2 ** attempt)
                )
                attempt += 1
                channel.drain_pending()
                retransmit(channel.expected_recv_seq)
        self.host.trampoline(runtime)
        meter.charge("aes_block", max(len(record) // 16, 1))
        return record

    def _receive_content_streamed(
        self,
        session: ProvisioningSession,
        *,
        resilience: "ResilienceConfig | None" = None,
        retransmit=None,
    ):
        """Streamed receive: decrypt in place and inspect while draining.

        Records decrypt straight into one preallocated buffer
        (:meth:`SecureChannel.recv_into` — no per-record copies), and a
        :class:`StreamingPipeline` speculatively decodes and prescans the
        text section as its bytes land, so disassembly overlaps the
        channel drain.  When a previous accepted image for the same
        benchmark is indexed, decode-during-receive is skipped entirely
        and the scan is spliced from the old one via the content-defined
        chunk diff (:func:`delta_scan`).  Either way the scan is
        *speculative*: the disassembler re-verifies it against the exact
        parse and falls back to the phased stage on any mismatch, so the
        verdict, wire bytes, and meter totals never depend on it.

        Returns ``(raw_bytes, scan_or_None)``.
        """
        runtime = session.runtime
        channel = session.channel
        assert channel is not None
        meter = self.machine.meter

        fd = 3  # the socket registered in start_session
        header = self._recv_record(
            runtime, channel, fd, meter,
            resilience=resilience, retransmit=retransmit,
        )
        if len(header) != _CONTENT_HEADER.size:
            raise ProtocolError("bad content header")
        total, records = _CONTENT_HEADER.unpack(header)
        if total > runtime.client_pages * PAGE_SIZE * 4:
            raise ProtocolError("announced content size exceeds any sane image")
        buf = bytearray(total)
        prev = self._delta_index.get(session.benchmark)
        if prev is not None and not prev.populated:
            prev = None
        # Seeded decoder faults must hit the real decode stage, not the
        # speculative one, so the pipeline stands down and the phased
        # disassembler (with its fault hooks) runs afterwards.
        want_decode = not _faults.wants("x86.decoder")
        pipeline = StreamingPipeline(buf, decode=want_decode and prev is None)
        received = 0
        for _ in range(records):
            n = self._recv_record_into(
                runtime, channel, fd, meter, buf, received,
                resilience=resilience, retransmit=retransmit,
            )
            received += n
            pipeline.advance(received)
        if received != total:
            raise ProtocolError(
                f"content truncated: announced {total}, received {received}"
            )
        raw = bytes(buf)
        scan = None
        if want_decode:
            if prev is not None:
                text = pipeline.text_slice()
                if text is not None:
                    scan = delta_scan(prev, text)
            else:
                scan = pipeline.finish()
        if scan is not None:
            index = self._delta_index.get(session.benchmark)
            if index is None:
                index = DeltaIndex()
                self._delta_index[session.benchmark] = index
            scan.delta = index.memo
        return raw, scan

    def _recv_record_into(
        self,
        runtime: EnclaveRuntime,
        channel: SecureChannel,
        fd: int,
        meter: CycleMeter,
        out: bytearray,
        offset: int,
        *,
        resilience: "ResilienceConfig | None" = None,
        retransmit=None,
    ) -> int:
        # Mirror of _recv_record (same trampoline, charges, and ARQ) that
        # decrypts directly into the shared receive buffer.
        attempt = 0
        while True:
            try:
                fault_hook("core.provisioning.record", error=ProtocolError)
                n = channel.recv_into(out, offset)
                break
            except (CryptoError, NetError, ProtocolError):
                if (
                    resilience is None
                    or retransmit is None
                    or attempt >= resilience.max_retransmits
                ):
                    raise
                resilience.clock.sleep(
                    resilience.backoff_base * (2 ** attempt)
                )
                attempt += 1
                channel.drain_pending()
                retransmit(channel.expected_recv_seq)
        self.host.trampoline(runtime)
        meter.charge("aes_block", max(n // 16, 1))
        return n


class EnclaveClient:
    """The client: binary owner, attestation verifier, content sender."""

    def __init__(
        self,
        binary: bytes,
        *,
        policies: PolicyRegistry,
        rng: HmacDrbg | None = None,
        benchmark: str = "client",
        optimized: bool = True,
        streaming: bool = False,
    ) -> None:
        self.binary = binary
        self.policies = policies
        self.rng = rng or HmacDrbg(b"enclave-client")
        self.benchmark = benchmark
        #: ``False`` runs the frozen reference crypto end to end on the
        #: client side (channel records + full MRENCLAVE replay)
        self.optimized = optimized
        #: streamed send: emit each record as soon as it is encrypted
        #: instead of buffering the whole keystream pass up front, and
        #: replay MRENCLAVE through the hashlib-backed measurement.
        #: Record boundaries and wire bytes are identical either way.
        self.streaming = streaming
        self.channel: SecureChannel | None = None
        self.verdict: ComplianceReport | None = None

    def challenge(self) -> bytes:
        return self.rng.generate(16)

    def verify_attestation(
        self,
        quote,
        device_key,
        challenge: bytes,
        *,
        heap_pages: int,
        client_pages: int,
        enclave_pages: int = DEFAULT_ENCLAVE_PAGES,
    ) -> bytes:
        """Verify the quote; returns the attested channel-key fingerprint."""
        expected = expected_mrenclave(
            self.policies,
            heap_pages=heap_pages,
            client_pages=client_pages,
            enclave_pages=enclave_pages,
            use_cache=self.optimized,
            fast=self.streaming,
        )
        verify_quote(
            quote, device_key,
            expected_mrenclave=expected, challenge=challenge,
        )
        return quote.report_data[:32]

    def open_channel(self, sock, attested_fingerprint: bytes) -> None:
        self.channel, _pub = client_handshake(
            sock, self.rng.fork(b"channel"),
            expected_fingerprint=attested_fingerprint,
            optimized=self.optimized,
        )

    def send_content(self) -> None:
        """Stream the binary as page-sized encrypted records."""
        if self.channel is None:
            raise ProtocolError("channel not established")
        # memoryview slices frame records straight out of the binary with
        # no per-record copy; the channel's join-based record assembly and
        # the socket framing both accept views.
        view = memoryview(self.binary)
        records = [
            view[i:i + PAGE_SIZE]
            for i in range(0, len(self.binary), PAGE_SIZE)
        ]
        self.channel.send(_CONTENT_HEADER.pack(len(self.binary), len(records)))
        if self.streaming:
            # Emit each record the moment it is encrypted: the provider's
            # pipeline starts decoding while later records are still being
            # sealed.  Per-record keystream warming reuses the same memo
            # ranges the batched pass would, so the ciphertext — and hence
            # the pinned wire transcript — is byte-identical.
            for record in records:
                self.channel.warm_send_keystream([len(record)])
                self.channel.send(record)
            return
        # One batched keystream pass covers the whole stream (a no-op on
        # reference-mode channels).
        self.channel.warm_send_keystream([len(r) for r in records])
        for record in records:
            self.channel.send(record)

    def retransmit(self, from_seq: int) -> int:
        """Resend every buffered record from *from_seq* (provider ARQ)."""
        if self.channel is None:
            raise ProtocolError("channel not established")
        return self.channel.resend_from(from_seq)

    def receive_verdict(self) -> ComplianceReport:
        if self.channel is None:
            raise ProtocolError("channel not established")
        self.verdict = ComplianceReport.deserialize(self.channel.recv())
        return self.verdict


def provision(
    provider: CloudProvider,
    client: EnclaveClient,
    *,
    resilience: ResilienceConfig | None = None,
) -> ProvisioningResult:
    """Drive one full provisioning exchange end to end.

    Without *resilience* this behaves exactly as the paper's protocol:
    any transport or protocol failure raises.  With a
    :class:`ResilienceConfig`, content records are retransmitted with
    bounded backoff, and whatever typed failure survives is converted
    into a REJECT verdict — a broken run can never surface as an ACCEPT.
    """
    if resilience is None:
        return _provision_once(provider, client, resilience=None)
    try:
        return _provision_once(provider, client, resilience=resilience)
    except ReproError as exc:
        stage = _fail_closed_stage(exc)
        report = ComplianceReport.rejected(
            client.benchmark, provider.policies.names(), stage=stage
        )
        return ProvisioningResult(
            accepted=False,
            report=report,
            outcome=InspectionOutcome(report=report),
            meter=provider.machine.meter,
            runtime=None,
            client_verdict=None,
            error=f"{type(exc).__name__}: {exc}",
        )


def _provision_once(
    provider: CloudProvider,
    client: EnclaveClient,
    *,
    resilience: ResilienceConfig | None,
) -> ProvisioningResult:
    pair = SocketPair("client", "enclave")

    session = provider.start_session(pair.right, benchmark=client.benchmark)

    challenge = client.challenge()
    quote = provider.attest(session, challenge)
    fingerprint = client.verify_attestation(
        quote,
        provider.quoting_enclave.device_public_key,
        challenge,
        heap_pages=provider.heap_pages,
        client_pages=provider.client_pages,
        enclave_pages=provider.enclave_pages,
    )

    client.open_channel(pair.left, fingerprint)
    client.send_content()

    report = provider.run_engarde(
        session,
        resilience=resilience,
        retransmit=client.retransmit if resilience is not None else None,
    )
    accepted = provider.finalize(session)
    client_verdict = client.receive_verdict()

    assert session.outcome is not None
    return ProvisioningResult(
        accepted=accepted,
        report=report,
        outcome=session.outcome,
        meter=provider.machine.meter,
        runtime=session.runtime if accepted else None,
        client_verdict=client_verdict,
    )


def _align_page(vaddr: int) -> int:
    return (vaddr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
