"""Function-extent parallel inspection of one huge binary.

One binary can never use more than one worker in the per-item batch
path.  This module splits a single binary's text section along its
*function-extent table* (the sorted function-symbol offsets the normal
pipeline already computes), decodes and policy-scans each extent on a
separate worker, and merges the per-extent artifacts into one verdict
that is **byte-identical** to whole-binary inspection:

* the report wire bytes are identical (same verdict, same failed-policy
  list, same stage, same pages),
* the cumulative :class:`~repro.sgx.cpu.CycleMeter` totals are
  tick-identical, per event and per phase — workers never touch the
  real meter; they return exact event *counts*, and the parent flushes
  them through :meth:`~repro.sgx.cpu.CycleMeter.charge_batch`, whose
  linearity (``cycles = weight x count``) makes the sum independent of
  how the work was partitioned,
* the buffer-growth trampoline sequence is replayed exactly.

The merge is *fail-safe by construction*: every precondition the split
cannot reproduce exactly — multi-text images, stripped binaries, an
extent decode that does not stitch exactly onto the next extent's
start, a stack-protection tail walk that reads outside its extent, a
decoder fault plan — is detected **before any meter charge**, and the
whole binary falls back to the ordinary serial
:meth:`~repro.core.engarde.EnGarde.inspect`, which is exact by
definition.  A worker *crash* (e.g. the ``service.batch.worker`` fault
hook) is different: it propagates as a typed error and fails the whole
verdict closed — a fault inside one extent never silently degrades to
a partial inspection.

Charge-equivalence argument, per pipeline stage:

=============  =====================================================
decode         per-extent ``decode_byte``/``decode_insn``/
               ``buffer_store`` counts sum to the serial totals when
               the extents stitch (same cursor, same bytes); flushed
               in one ``charge_batch`` exactly like the serial loop
symtab         built by the parent on the real meter, verbatim
validation     charges nothing; the merge re-runs all three NaCl
               checks from compact per-extent artifacts with the
               reference check order and first-offender semantics
library-link   runs entirely in the parent (it hashes *callee*
               functions, which may live in any extent) from the
               per-extent direct-call lists, charging verbatim
stack-protect  per-function, and the extent table guarantees a
               function never straddles an extent (extent boundaries
               are function starts): workers record exact per-event
               counts on a private meter; the parent flushes the sum
ifcc           the jump-table format check replays in the parent from
               worker-collected table-range instruction info; the
               per-site backward walks run in workers via the pure
               :func:`~repro.core.policies.ifcc.walk_call_site`
               helper, except sites within ``backward_window`` of an
               extent start, which the parent re-walks over a
               stitched window (provably the same slice of the
               global buffer)
=============  =====================================================
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from dataclasses import dataclass, field

from ..elf import read_elf
from ..errors import DecodeError, ElfError, PolicyError, RejectionError
from ..faults import hooks as _faults
from ..sgx.cpu import CycleMeter
from ..sgx.params import PAGE_SIZE
from ..x86 import Instruction, decode_extent
from .disasm import INSN_RECORD_BYTES
from .engarde import EnGarde, InspectionOutcome, static_text_pages
from .policies.ifcc import JUMP_TABLE_PREFIX, IfccPolicy, walk_call_site
from .policies.library_linking import LibraryLinkingPolicy
from .policies.stack_protection import StackProtectionPolicy
from .policy import PolicyContext, PolicyResult, SymbolHashTable
from .report import ComplianceReport

__all__ = [
    "ExtentPlan", "ExtentScan", "ExtentSplitOutcome",
    "plan_extent_split", "scan_extent", "inspect_extent_split",
    "DEFAULT_MIN_EXTENT_BYTES",
]

_ENTRY_SIZE = 8
#: an extent smaller than this is not worth a worker round-trip
DEFAULT_MIN_EXTENT_BYTES = 4096

#: the exact policy classes the merge knows how to decompose; a registry
#: containing anything else (including subclasses, whose behaviour may
#: differ) disables extent-split entirely
_SUPPORTED_POLICIES = (LibraryLinkingPolicy, StackProtectionPolicy, IfccPolicy)


class _OutOfExtent(Exception):
    """A policy scan read an offset outside its extent (fallback signal)."""


# ------------------------------------------------------------------ planning


@dataclass
class ExtentPlan:
    """The split decided by the parent before dispatching scan tasks."""

    #: half-open text-relative byte ranges, covering [0, len(text))
    extents: list[tuple[int, int]]
    #: candidate IFCC jump-table range (symbol-derived) or None
    cand_table: tuple[int, int] | None
    #: IFCC backward window (from the registry's module, default 12)
    window: int

    @property
    def parts(self) -> int:
        return len(self.extents)

    def tasks(self) -> list[dict]:
        """One picklable task descriptor per extent."""
        return [
            {
                "index": i, "start": s, "end": e,
                "cand_table": self.cand_table, "window": self.window,
            }
            for i, (s, e) in enumerate(self.extents)
        ]


def plan_extent_split(
    engarde: EnGarde,
    raw_elf,
    *,
    parts: int,
    min_extent_bytes: int = DEFAULT_MIN_EXTENT_BYTES,
    boundaries: list[int] | None = None,
):
    """Preflight: decide whether and how to split *raw_elf*.

    Returns ``(image, plan)`` on success or ``(None, reason)`` when the
    binary must take the serial path.  Every rejected precondition here
    is one the serial pipeline reproduces exactly (and charges for
    correctly), so "fallback" is always safe.
    """
    if not engarde.optimized:
        return None, "reference (unoptimized) engine"
    if engarde.disassembler.allow_stripped:
        return None, "stripped-binary recovery enabled"
    if _faults.wants("x86.decoder"):
        return None, "decoder fault plan active"
    modules = list(engarde.policies)
    for module in modules:
        if type(module) not in _SUPPORTED_POLICIES:
            return None, f"unsupported policy module {module.name!r}"
    try:
        image = read_elf(raw_elf)
    except ElfError:
        return None, "malformed ELF"
    if len(image.text_sections) != 1:
        return None, "not exactly one text section"
    text = image.text_sections[0]
    code_len = len(text.data)
    if not code_len:
        return None, "empty text section"
    symbols = image.function_symbols()
    if not symbols:
        return None, "no function symbols"
    offsets = []
    for sym in symbols:
        offset = sym.value - text.vaddr
        if not 0 <= offset < code_len:
            return None, "symbol outside text section"
        offsets.append(offset)
    try:
        engarde.disassembler.check_page_separation(image)
    except RejectionError:
        return None, "mixed code/data pages"

    if boundaries is not None:
        cuts = sorted({b for b in boundaries if 0 < b < code_len})
    else:
        cuts = _balanced_cuts(offsets, code_len, parts, min_extent_bytes)
    if not cuts:
        return None, "no usable function-extent boundaries"
    edges = [0, *cuts, code_len]
    extents = list(zip(edges, edges[1:]))
    if len(extents) < 2:
        return None, "fewer than two extents"

    table_syms = sorted(
        sym.value - text.vaddr
        for sym in symbols
        if sym.name.startswith(JUMP_TABLE_PREFIX)
    )
    cand_table = (
        (table_syms[0], table_syms[-1] + _ENTRY_SIZE) if table_syms else None
    )
    window = 12
    for module in modules:
        if type(module) is IfccPolicy:
            window = module.backward_window
    return image, ExtentPlan(
        extents=extents, cand_table=cand_table, window=window
    )


def _balanced_cuts(
    offsets: list[int], code_len: int, parts: int, min_bytes: int
) -> list[int]:
    """Pick ~``parts-1`` function-start offsets that balance extent bytes."""
    if parts < 2:
        return []
    bounds = sorted({o for o in offsets if 0 < o < code_len})
    cuts: list[int] = []
    prev = 0
    for k in range(1, parts):
        ideal = (code_len * k) // parts
        eligible = [
            b for b in bounds
            if b >= prev + min_bytes and code_len - b >= min_bytes
        ]
        if not eligible:
            break
        # closest available function start to the ideal cut — real function
        # layouts rarely have a start exactly at len/parts
        j = bisect_left(eligible, ideal)
        below = eligible[j - 1] if j > 0 else None
        above = eligible[j] if j < len(eligible) else None
        if below is None:
            cut = above
        elif above is None:
            cut = below
        else:
            cut = below if ideal - below <= above - ideal else above
        cuts.append(cut)
        prev = cut
    return cuts


# ------------------------------------------------------------ worker scans


@dataclass
class ExtentScan:
    """Everything one worker learned about one extent (picklable).

    All offsets are text-relative and global; all indices are local to
    the extent's instruction list unless suffixed ``_offset``.
    """

    index: int
    start: int
    end: int
    #: set when the scan hit a condition only the serial path can
    #: reproduce (the whole binary then falls back, charge-free)
    fallback: str | None = None
    #: exact DecodeError message when decode failed inside this extent
    decode_error: str | None = None
    n_insns: int = 0
    n_bytes: int = 0
    #: cursor position after the last decoded instruction
    stitch_pos: int = 0
    offsets: array = field(default_factory=lambda: array("q"))
    mnem_table: list[str] = field(default_factory=list)
    mnem_ids: bytes = b""
    term_local: array = field(default_factory=lambda: array("q"))
    branch_local: array = field(default_factory=lambda: array("q"))
    branch_targets: array = field(default_factory=lambda: array("q"))
    #: first instruction overlapping a 32-byte bundle: (offset, mnem, len)
    bundle_first: tuple | None = None
    #: stack-protection: exact event counts recorded on a private meter
    sp_events: dict = field(default_factory=dict)
    sp_violations: list[str] = field(default_factory=list)
    sp_checked: int = 0
    #: IFCC call sites: (offset, local index, ok, steps, deferred)
    ifcc_sites: list[tuple] = field(default_factory=list)
    #: instruction info inside the candidate jump-table range:
    #: offset -> (mnemonic, length, is_direct_jump)
    table_insns: dict = field(default_factory=dict)
    #: (offset, target) per direct call, in buffer order
    direct_calls: list[tuple] = field(default_factory=list)
    #: first/last ``window`` instructions, for boundary-straddling walks
    head_insns: list[Instruction] = field(default_factory=list)
    tail_insns: list[Instruction] = field(default_factory=list)


def scan_extent(raw_elf, policies, task: dict) -> ExtentScan:
    """Decode + policy-scan one extent (runs on a worker, meter-free).

    Never raises for content reasons: structural surprises set
    ``fallback`` (the parent then re-inspects serially), and decode
    errors are captured with exact partial counts so the parent can
    replay the serial rejection tick-for-tick.  Genuine crashes (e.g.
    an injected ``service.batch.worker`` fault in the service wrapper)
    propagate to the caller and fail the verdict closed.
    """
    start, end = task["start"], task["end"]
    index = task["index"]
    cand_table, window = task["cand_table"], task["window"]
    scan = ExtentScan(index=index, start=start, end=end)
    try:
        image = read_elf(raw_elf)
        text = image.text_sections[0]
        code = bytes(text.data)
    except Exception as exc:  # pragma: no cover - parent preflight parsed OK
        scan.fallback = f"worker ELF parse failed: {type(exc).__name__}"
        return scan

    insns: list[Instruction] = []
    try:
        _, pos = decode_extent(code, start, end, insns)
    except DecodeError as exc:
        scan.decode_error = str(exc)
        scan.n_insns = len(insns)
        scan.n_bytes = (insns[-1].end - start) if insns else 0
        scan.stitch_pos = start + scan.n_bytes
        return scan
    scan.n_insns = len(insns)
    scan.n_bytes = pos - start
    scan.stitch_pos = pos
    if pos != end:
        # the extent boundary fell mid-instruction: only the serial
        # decode knows what the bytes mean
        return scan

    _collect_decode_artifacts(scan, insns)
    try:
        _scan_policies(scan, insns, image, policies, cand_table, window)
    except (_OutOfExtent, PolicyError) as exc:
        scan.fallback = f"extent-local policy scan impossible: {exc}"
    return scan


def _collect_decode_artifacts(scan: ExtentScan, insns: list[Instruction]) -> None:
    offsets = array("q")
    term_local = array("q")
    branch_local = array("q")
    branch_targets = array("q")
    mnem_index: dict[str, int] = {}
    mnem_table: list[str] = []
    mnem_ids = bytearray(len(insns))
    bundle_first = None
    for i, insn in enumerate(insns):
        offsets.append(insn.offset)
        mid = mnem_index.get(insn.mnemonic)
        if mid is None:
            mid = mnem_index[insn.mnemonic] = len(mnem_table)
            mnem_table.append(insn.mnemonic)
        mnem_ids[i] = mid
        if insn.is_terminator:
            term_local.append(i)
        if insn.target is not None:
            branch_local.append(i)
            branch_targets.append(insn.target)
        if bundle_first is None and (
            insn.offset // 32 != (insn.end - 1) // 32
        ):
            bundle_first = (insn.offset, insn.mnemonic, insn.length)
    scan.offsets = offsets
    scan.term_local = term_local
    scan.branch_local = branch_local
    scan.branch_targets = branch_targets
    scan.mnem_table = mnem_table
    scan.mnem_ids = bytes(mnem_ids)
    scan.bundle_first = bundle_first


def _scan_policies(
    scan: ExtentScan,
    insns: list[Instruction],
    image,
    policies,
    cand_table,
    window: int,
) -> None:
    start, end = scan.start, scan.end

    # shared views every policy merge needs
    scan.direct_calls = [
        (insn.offset, insn.target) for insn in insns if insn.is_direct_call
    ]
    if cand_table is not None:
        lo, hi = cand_table
        scan.table_insns = {
            insn.offset: (insn.mnemonic, insn.length, insn.is_direct_jump)
            for insn in insns
            if lo <= insn.offset < hi
        }
    scan.head_insns = insns[:window]
    scan.tail_insns = insns[-window:] if len(insns) > window else list(insns)

    # IFCC: pure backward walks; sites too close to the extent start are
    # deferred to the parent's stitched re-walk
    has_ifcc = any(type(m) is IfccPolicy for m in policies)
    if has_ifcc:
        sites = []
        for i, insn in enumerate(insns):
            if insn.is_indirect_call or insn.is_indirect_jump:
                deferred = scan.index > 0 and i < window
                if cand_table is None or deferred:
                    ok, steps = False, 0
                else:
                    ok, steps = walk_call_site(insns, i, cand_table, window)
                sites.append((insn.offset, i, ok, steps, deferred))
        scan.ifcc_sites = sites

    # stack protection: run the module's own per-function check against
    # an extent-local context, recording exact charges on a private meter
    sp_modules = [m for m in policies if type(m) is StackProtectionPolicy]
    if not sp_modules:
        return
    scratch = CycleMeter()
    symtab = SymbolHashTable(scratch)
    text = image.text_sections[0]
    for sym in image.function_symbols():
        symtab.insert(sym.value - text.vaddr, sym.name)
    work = CycleMeter()
    symtab._meter = work

    local_map = {insn.offset: i for i, insn in enumerate(insns)}
    # a function ending exactly at the extent boundary resolves its end
    # index to len(insns), same as the global slice would
    boundary_sentinel = end
    local_map.setdefault(boundary_sentinel, len(insns))

    ctx = PolicyContext(
        instructions=insns, symtab=symtab, image=image, meter=work,
        index_by_offset=local_map, cached=True,
    )

    def guarded_at(offset, _at=PolicyContext.at, _ctx=ctx):
        if not start <= offset < end:
            raise _OutOfExtent(f"read at {offset:#x} outside [{start:#x},{end:#x})")
        return _at(_ctx, offset)

    ctx.at = guarded_at

    starts_here = [
        (addr, name) for addr, name in sorted(symtab.items())
        if start <= addr < end
    ]
    for module in sp_modules:
        checked = 0
        for addr, name in starts_here:
            if name in module.exempt_functions:
                continue
            inc, violation = module._check_one(ctx, addr, name)
            checked += inc
            if violation is not None:
                scan.sp_violations.append(violation)
        scan.sp_checked = checked
    scan.sp_events = dict(work.total.events)


# --------------------------------------------------------------- the merge


@dataclass
class ExtentSplitOutcome:
    """Result wrapper: the outcome plus how it was obtained."""

    outcome: InspectionOutcome
    split: bool = False
    extents: int = 0
    fallback_reason: str | None = None

    @property
    def report(self) -> ComplianceReport:
        return self.outcome.report


def inspect_extent_split(
    engarde: EnGarde,
    raw_elf,
    *,
    benchmark: str = "client",
    parts: int | None = None,
    min_extent_bytes: int = DEFAULT_MIN_EXTENT_BYTES,
    boundaries: list[int] | None = None,
    run_scans=None,
) -> ExtentSplitOutcome:
    """Inspect *raw_elf* by splitting its text across extent scans.

    *run_scans* maps ``plan.tasks()`` to a list of :class:`ExtentScan`
    (the service layer submits them to its executor; the default runs
    them inline, which the equivalence tests exploit).  The returned
    outcome's report wire and the charges on ``engarde.meter`` are
    byte-identical to ``engarde.inspect(raw_elf, benchmark=...)``; any
    condition the merge cannot reproduce exactly falls back to that
    very call before a single tick is charged.
    """
    parts = parts or 4
    image, plan = plan_extent_split(
        engarde, raw_elf, parts=parts,
        min_extent_bytes=min_extent_bytes, boundaries=boundaries,
    )
    if image is None:
        return ExtentSplitOutcome(
            outcome=engarde.inspect(raw_elf, benchmark=benchmark),
            fallback_reason=plan,
        )

    tasks = plan.tasks()
    if run_scans is None:
        scans = [scan_extent(raw_elf, engarde.policies, t) for t in tasks]
    else:
        scans = run_scans(tasks)

    merged = _merge_extent_scans(engarde, image, scans, plan, benchmark)
    if isinstance(merged, str):
        return ExtentSplitOutcome(
            outcome=engarde.inspect(raw_elf, benchmark=benchmark),
            fallback_reason=merged,
        )
    return ExtentSplitOutcome(
        outcome=merged, split=True, extents=plan.parts,
    )


def _merge_extent_scans(
    engarde: EnGarde, image, scans, plan: ExtentPlan, benchmark: str,
):
    """Merge worker scans into one outcome, or return a fallback reason.

    Structured so that *every* fallback decision happens before the
    first meter charge: once the disassembly replay starts, the merge
    is committed and provably exact.
    """
    meter = engarde.meter
    policy_names = engarde.policies.names()
    text = image.text_sections[0]
    code = text.data
    code_len = len(code)

    # ---- trust pass: no charges yet -----------------------------------
    if scans is None or len(scans) != plan.parts:
        return "scan tasks lost"
    pos = 0
    n_insns = 0
    n_bytes = 0
    failure: str | None = None
    clean: list[ExtentScan] = []
    for k, scan in enumerate(scans):
        if scan is None:
            return "scan task lost"
        if scan.fallback is not None:
            return scan.fallback
        if scan.start != pos:
            return "extent decode did not stitch"
        if scan.decode_error is not None:
            failure = scan.decode_error
            n_insns += scan.n_insns
            n_bytes += scan.n_bytes
            break
        if scan.stitch_pos != scan.end:
            return "extent decode did not stitch"
        n_insns += scan.n_insns
        n_bytes += scan.n_bytes
        pos = scan.end
        clean.append(scan)

    if failure is not None:
        # the serial decode provably fails at the same byte with the
        # same partial charges: replay them and reject
        with meter.phase("disassembly"):
            _replay_allocs(engarde.disassembler, n_insns)
            meter.charge_batch({
                "decode_byte": n_bytes,
                "decode_insn": n_insns,
                "buffer_store": n_insns,
            })
        return InspectionOutcome(
            report=ComplianceReport.rejected(
                benchmark, policy_names, stage="disasm"
            )
        )

    if pos != code_len:
        return "extent decode did not cover the text section"

    # ---- committed: disassembly phase replay --------------------------
    by_offset: dict[int, int] = {}
    base = 0
    for scan in clean:
        for j, offset in enumerate(scan.offsets):
            by_offset[offset] = base + j
        base += scan.n_insns

    with meter.phase("disassembly"):
        _replay_allocs(engarde.disassembler, n_insns)
        meter.charge_batch({
            "decode_byte": n_bytes,
            "decode_insn": n_insns,
            "buffer_store": n_insns,
        })
        symtab = SymbolHashTable(meter)
        roots: list[int] = []
        for sym in image.function_symbols():
            offset = sym.value - text.vaddr
            symtab.insert(offset, sym.name)
            roots.append(offset)
        entry_offset = image.entry - text.vaddr
        validation_error = _merged_validate(
            clean, by_offset, n_insns, entry_offset, roots
        )
    if validation_error is not None:
        return InspectionOutcome(
            report=ComplianceReport.rejected(
                benchmark, policy_names, stage="disasm"
            )
        )

    # ---- policy phase -------------------------------------------------
    results: list[PolicyResult] = []
    failed: list[str] = []
    with meter.phase("policy"):
        for module in engarde.policies:
            if type(module) is LibraryLinkingPolicy:
                result = _merge_library_linking(
                    module, clean, symtab, by_offset, n_insns, code, meter
                )
            elif type(module) is StackProtectionPolicy:
                result = _merge_stack_protection(module, clean, meter)
            else:
                result = _merge_ifcc(
                    module, clean, symtab, meter, plan, n_insns
                )
            results.append(result)
            if not result.compliant:
                failed.append(module.name)

    if failed:
        return InspectionOutcome(
            report=ComplianceReport.rejected(
                benchmark, policy_names, failed=failed
            ),
            policy_results=results,
        )
    pages = static_text_pages(image)
    if not pages:
        return InspectionOutcome(
            report=ComplianceReport.rejected(
                benchmark, policy_names, stage="no-text"
            ),
            policy_results=results,
        )
    return InspectionOutcome(
        report=ComplianceReport.accepted(benchmark, policy_names, pages),
        policy_results=results,
    )


def _replay_allocs(disassembler, n_insns: int) -> None:
    """Replay the buffer-growth trampoline calls of a serial decode."""
    alloc = disassembler._alloc_pages
    if disassembler.per_insn_malloc:
        for _ in range(n_insns):
            alloc(1)
    else:
        pages = -(-n_insns * INSN_RECORD_BYTES // PAGE_SIZE)
        for _ in range(pages):
            alloc(1)


# ------------------------------------------------------- validation merge


def _merged_validate(
    scans: list[ExtentScan],
    by_offset: dict[int, int],
    n_insns: int,
    entry: int,
    roots: list[int],
) -> str | None:
    """All three NaCl checks from compact artifacts; returns the error
    message (reference-identical order and wording) or None.

    The validator charges nothing, so only the pass/fail outcome (and
    the resulting ``stage="disasm"`` rejection) must match — the
    messages match anyway because they feed the detail field.
    """
    if not n_insns:
        return "empty instruction stream"
    for scan in scans:
        if scan.bundle_first is not None:
            offset, mnemonic, length = scan.bundle_first
            return (
                f"instruction at {offset:#x} ({mnemonic}, "
                f"{length} bytes) overlaps a 32-byte boundary"
            )
    for scan in scans:
        for j, target in zip(scan.branch_local, scan.branch_targets):
            if target not in by_offset:
                return (
                    f"{scan.mnem_table[scan.mnem_ids[j]]} at "
                    f"{scan.offsets[j]:#x} targets {target:#x}, "
                    "which is not a valid instruction start"
                )
    if entry not in by_offset:
        return f"entry point {entry:#x} is not an instruction start"

    term_idx: list[int] = []
    branch_idx: list[int] = []
    branch_tgt: list[int] = []
    base = 0
    for scan in scans:
        term_idx.extend(base + j for j in scan.term_local)
        branch_idx.extend(base + j for j in scan.branch_local)
        branch_tgt.extend(scan.branch_targets)
        base += scan.n_insns

    stack: list[int] = []
    for origin in [entry, *roots]:
        idx = by_offset.get(origin)
        if idx is None:
            return f"root {origin:#x} is not an instruction start"
        stack.append(idx)

    covered = bytearray(n_insns)
    tgt_by_branch = dict(zip(branch_idx, branch_tgt))
    nterm = len(term_idx)
    nbranch = len(branch_idx)
    while stack:
        idx = stack.pop()
        if idx >= n_insns or covered[idx]:
            continue
        j = bisect_left(term_idx, idx)
        span_end = term_idx[j] if j < nterm else n_insns - 1
        covered[idx:span_end + 1] = b"\x01" * (span_end + 1 - idx)
        k = bisect_left(branch_idx, idx)
        while k < nbranch and branch_idx[k] <= span_end:
            tgt = by_offset.get(tgt_by_branch[branch_idx[k]])
            if tgt is not None and not covered[tgt]:
                stack.append(tgt)
            k += 1

    if covered.count(0):
        base = 0
        for scan in scans:
            for j in range(scan.n_insns):
                if covered[base + j]:
                    continue
                mnemonic = scan.mnem_table[scan.mnem_ids[j]]
                if mnemonic in ("nop", "nopl"):
                    continue
                return (
                    f"unreachable instruction at {scan.offsets[j]:#x} "
                    f"({mnemonic})"
                )
            base += scan.n_insns
    return None


# ----------------------------------------------------------- policy merges


def _merge_stack_protection(
    module: StackProtectionPolicy, scans: list[ExtentScan], meter: CycleMeter
) -> PolicyResult:
    """Flush worker-recorded counts; order violations by extent order,
    which equals the serial sorted-function-starts order."""
    result = module.result()
    counts: dict[str, int] = {}
    checked = 0
    for scan in scans:
        for event, count in scan.sp_events.items():
            counts[event] = counts.get(event, 0) + count
        checked += scan.sp_checked
        for note in scan.sp_violations:
            result.add_violation(note)
    if counts:
        meter.charge_batch(counts)
    result.stats["functions_checked"] = checked
    return result


def _merge_library_linking(
    module: LibraryLinkingPolicy,
    scans: list[ExtentScan],
    symtab: SymbolHashTable,
    by_offset: dict[int, int],
    n_insns: int,
    code,
    meter: CycleMeter,
) -> PolicyResult:
    """:meth:`LibraryLinkingPolicy.check` verbatim over merged views.

    Callee hashing crosses extents freely, so it runs here in the
    parent — against the real symtab and the real meter, with the same
    digest-index/memoize behaviour as the serial cached context.
    """
    from ..crypto.sha256 import sha256_fast

    result = module.result()
    calls_checked = 0
    hashes_computed = 0
    cache: dict[int, bytes] = {}
    use_index = not module.memoize
    digest_index: dict[int, tuple[bytes, int, int]] = {}

    def hash_function(start: int) -> tuple[bytes, int, int]:
        first = by_offset[start]
        end_offset = symtab.next_function_start(start)
        if end_offset is None:
            last = n_insns
            end_byte = len(code)
        else:
            last = by_offset[end_offset]
            end_byte = end_offset
        meter.charge("symtab_lookup", max(last - first, 1))
        nbytes = end_byte - start
        blocks = (nbytes + 63) // 64 + 1
        meter.charge("sha256_block", blocks)
        digest = sha256_fast(bytes(code[start:end_byte]))
        return digest, 1 + max(last - first, 1), blocks

    meter.charge("policy_scan_insn", n_insns)
    for scan in scans:
        for offset, target in scan.direct_calls:
            name = symtab.lookup(target)
            if name is None:
                result.add_violation(
                    f"direct call at +{offset:#x} targets a non-function "
                    "address"
                )
                continue
            if name not in module.reference_hashes:
                if module.require_all_calls_known:
                    result.add_violation(
                        f"call to {name!r} which is not in the "
                        f"{module.library_name} database"
                    )
                continue
            calls_checked += 1
            if module.memoize and target in cache:
                digest = cache[target]
            elif use_index and target in digest_index:
                digest, lookups, blocks = digest_index[target]
                meter.charge_batch(
                    {"symtab_lookup": lookups, "sha256_block": blocks}
                )
                hashes_computed += 1
            else:
                digest, lookups, blocks = hash_function(target)
                hashes_computed += 1
                if module.memoize:
                    cache[target] = digest
                elif use_index:
                    digest_index[target] = (digest, lookups, blocks)
            if digest != module.reference_hashes[name]:
                result.add_violation(
                    f"function {name!r} does not match {module.library_name}"
                )

    result.stats["calls_checked"] = calls_checked
    result.stats["hashes_computed"] = hashes_computed
    return result


def _merge_ifcc(
    module: IfccPolicy,
    scans: list[ExtentScan],
    symtab: SymbolHashTable,
    meter: CycleMeter,
    plan: ExtentPlan,
    n_insns: int,
) -> PolicyResult:
    """Jump-table format check in the parent; per-site walk results from
    the workers, re-walked over a stitched window when deferred."""
    result = module.result()
    table_range = _merge_find_jump_table(scans, symtab, result, meter)
    indirect_calls = 0
    meter.charge("policy_scan_insn", n_insns)
    for k, scan in enumerate(scans):
        for offset, local_idx, ok, steps, deferred in scan.ifcc_sites:
            indirect_calls += 1
            if table_range is None:
                result.add_violation(
                    "indirect call present but no IFCC jump table found"
                )
                continue
            if deferred:
                ok, steps = _deferred_walk(
                    scans, k, local_idx, table_range, plan.window
                )
            if steps:
                meter.charge("policy_compare", steps)
            if not ok:
                result.add_violation(
                    f"indirect call at +{offset:#x} is not IFCC-protected"
                )
    result.stats["indirect_calls"] = indirect_calls
    return result


def _merge_find_jump_table(
    scans: list[ExtentScan],
    symtab: SymbolHashTable,
    result: PolicyResult,
    meter: CycleMeter,
):
    """:meth:`IfccPolicy._find_jump_table` from merged table-range info."""
    entries = sorted(
        addr for addr, name in symtab.items()
        if name.startswith(JUMP_TABLE_PREFIX)
    )
    if not entries:
        return None
    start, end = entries[0], entries[-1] + _ENTRY_SIZE
    expected = set(range(start, end, _ENTRY_SIZE))
    if set(entries) != expected:
        result.add_violation("jump table entries are not contiguous")
        return None
    table_insns: dict[int, tuple] = {}
    for scan in scans:
        table_insns.update(scan.table_insns)
    compares = 0
    try:
        for addr in entries:
            compares += 2
            jmp = table_insns.get(addr)
            if jmp is None or not jmp[2] or jmp[1] != 5:
                result.add_violation("malformed jump-table entry (no jmpq)")
                return None
            pad = table_insns.get(addr + 5)
            if pad is None or pad[0] != "nopl" or pad[1] != 3:
                result.add_violation("malformed jump-table entry (no nopl)")
                return None
    finally:
        if compares:
            meter.charge("policy_compare", compares)
    size = end - start
    if size & (size - 1):
        result.add_violation("jump table size is not a power of two")
        return None
    return start, end


def _deferred_walk(
    scans: list[ExtentScan],
    k: int,
    local_idx: int,
    table_range: tuple[int, int],
    window: int,
) -> tuple[bool, int]:
    """Re-run a boundary-straddling IFCC walk over a stitched window.

    Prepending predecessor tails reconstructs exactly the global
    instruction slice the serial walk reads: a tail shorter than the
    window is that extent *in full* (so stitching may continue left),
    and running out of extents means the stitched prefix IS the global
    prefix, making the window clamp exact as well.
    """
    prefix: list[Instruction] = []
    j = k - 1
    while j >= 0 and len(prefix) < window:
        prefix = scans[j].tail_insns + prefix
        j -= 1
    site = scans[k].head_insns[:local_idx + 1]
    stitched = prefix + site
    return walk_call_site(
        stitched, len(prefix) + local_idx, table_range, window
    )
