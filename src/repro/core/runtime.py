"""Runtime execution of the provisioned client image (extension).

The paper's EnGarde is purely static; it loads the image, sets up a call
stack, and "transfers control to the executable".  This module makes that
transfer real: it runs the loaded client code on the
:class:`~repro.x86.interp.Interpreter`, with

* memory accesses going through the enclave (EPC permissions enforced —
  writing a sealed code page faults exactly as EMODPR promises),
* a thread-local ``%fs:0x28`` canary supplied by the runtime,
* ``__stack_chk_fail`` / ``abort`` / ``exit`` intercepted as runtime
  events — so a smashed stack demonstrably *trips* the instrumentation
  the stack-protection policy verified statically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import HmacDrbg
from ..errors import ReproError, SgxError
from ..sgx.enclave import Enclave
from ..x86.interp import ExecutionFault, HaltExecution, Interpreter
from .loader import LoadedImage

__all__ = [
    "EnclaveMemoryBus", "EnclaveExecutor", "ExecutionResult",
    "StackSmashDetected", "ClientAborted",
]

CANARY_FS_OFFSET = 0x28


class StackSmashDetected(ReproError):
    """``__stack_chk_fail`` was reached: the canary check fired."""


class ClientAborted(ReproError):
    """The client called ``abort``."""


class EnclaveMemoryBus:
    """Adapter: interpreter memory operations -> enclave accesses.

    Reads/writes respect EPCM permissions via
    :meth:`~repro.sgx.enclave.Enclave.read`/``write``; instruction
    fetches additionally require execute permission (so jumping into a
    data page faults, and post-seal code pages cannot be written).
    """

    def __init__(self, enclave: Enclave) -> None:
        self.enclave = enclave

    def read(self, addr: int, size: int) -> bytes:
        try:
            return self.enclave.read(addr, size)
        except SgxError as exc:
            raise ExecutionFault(f"read fault at {addr:#x}: {exc}") from exc

    def write(self, addr: int, data: bytes) -> None:
        try:
            self.enclave.write(addr, data)
        except SgxError as exc:
            raise ExecutionFault(f"write fault at {addr:#x}: {exc}") from exc

    def fetch(self, addr: int, size: int) -> bytes:
        # An instruction near the end of a mapped region may not have a
        # full 15-byte window; shrink the window rather than fault.  A
        # genuine fetch fault (NX page, unmapped address) fails at every
        # size and is reported from the widest attempt.
        first_error: SgxError | None = None
        for attempt in range(size, 0, -1):
            try:
                return self.enclave.fetch_code(addr, attempt)
            except SgxError as exc:
                if first_error is None:
                    first_error = exc
        raise ExecutionFault(f"fetch fault at {addr:#x}: {first_error}")


@dataclass
class ExecutionResult:
    """What happened when the client image ran."""

    instructions_executed: int
    outcome: str          # "returned" | "exit" | "fault" | "stack-smash" | ...
    detail: str = ""
    exit_code: int | None = None


class EnclaveExecutor:
    """Runs a loaded client image inside its enclave."""

    def __init__(
        self,
        enclave: Enclave,
        loaded: LoadedImage,
        *,
        symbols: dict[str, int] | None = None,
        fuel: int = 2_000_000,
        canary_seed: bytes = b"tls-canary",
    ) -> None:
        self.enclave = enclave
        self.loaded = loaded
        self.fuel = fuel
        #: the thread-local canary value (%fs:0x28)
        self.canary = HmacDrbg(canary_seed).generate(8)
        self._symbols = symbols or {}
        self._events: list[str] = []

    # -- hook plumbing ---------------------------------------------------

    def _hook_address(self, symbol: str) -> int | None:
        vaddr = self._symbols.get(symbol)
        if vaddr is None:
            return None
        return self.loaded.load_bias + vaddr

    def _fs_read(self, offset: int, size: int) -> bytes:
        if offset == CANARY_FS_OFFSET and size == 8:
            return self.canary
        raise ExecutionFault(f"unmapped %fs:{offset:#x} access")

    def run(self, entry: int | None = None) -> ExecutionResult:
        """Execute from the image entry point until it returns or faults."""
        bus = EnclaveMemoryBus(self.enclave)
        hooks = {}
        for symbol, exception, label in (
            ("__stack_chk_fail", StackSmashDetected, "stack-smash"),
            ("abort", ClientAborted, "abort"),
        ):
            addr = self._hook_address(symbol)
            if addr is not None:
                hooks[addr] = self._make_raiser(exception, symbol)
        exit_addr = self._hook_address("exit")
        if exit_addr is not None:
            hooks[exit_addr] = self._exit_hook

        interp = Interpreter(
            bus, fs_base_read=self._fs_read, hooks=hooks, fuel=self.fuel
        )
        self._exit_code = None
        start = self.loaded.entry if entry is None else entry
        try:
            interp.run(start, self.loaded.stack_top)
        except StackSmashDetected as exc:
            return ExecutionResult(interp.executed, "stack-smash", str(exc))
        except ClientAborted as exc:
            return ExecutionResult(interp.executed, "abort", str(exc))
        except ExecutionFault as exc:
            return ExecutionResult(interp.executed, "fault", str(exc))
        if self._exit_code is not None:
            return ExecutionResult(
                interp.executed, "exit", exit_code=self._exit_code
            )
        return ExecutionResult(interp.executed, "returned")

    @staticmethod
    def _make_raiser(exception, symbol):
        def hook(interp: Interpreter) -> None:
            raise exception(f"{symbol} reached at depth {interp.call_depth}")

        return hook

    def _exit_hook(self, interp: Interpreter) -> None:
        self._exit_code = interp.state.regs[7] & 0xFF  # %rdi by SysV
        raise HaltExecution("exit")
