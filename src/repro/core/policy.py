"""Pluggable policy modules (the paper's central abstraction).

"EnGarde checks policies using pluggable policy modules.  Each policy
module checks compliance for a specific property, and [the] specific
policy modules that are loaded during enclave creation depend upon the
policies that the client and cloud provider have agreed upon." (section 3)

A policy module sees the :class:`PolicyContext` — the decoded instruction
buffer, the symbol hash table, and the parsed image — and returns a
:class:`PolicyResult`.  Policies charge the cycle meter for the work they
do, which is how the evaluation's "Policy Checking" column is produced.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass, field

from ..elf import ElfImage
from ..errors import PolicyError
from ..sgx.cpu import CycleMeter
from ..x86 import Instruction

__all__ = [
    "SymbolHashTable", "PolicyContext", "PolicyResult", "PolicyModule",
    "PolicyRegistry",
]

#: cap on recorded violations — the report must stay small and content-free
MAX_VIOLATIONS = 16


class SymbolHashTable:
    """The paper's symbol hash table: function address -> function name.

    Built during disassembly from the executable's .symtab.  Policies use
    it to (a) resolve call targets to names and (b) test whether an
    address is the start of a function.  Lookups charge the meter.
    """

    def __init__(self, meter: CycleMeter) -> None:
        self._meter = meter
        self._by_addr: dict[int, str] = {}
        self._starts: list[int] = []
        self._sorted = False

    def insert(self, addr: int, name: str) -> None:
        self._meter.charge("symtab_insert")
        self._by_addr[addr] = name
        self._sorted = False

    def lookup(self, addr: int) -> str | None:
        """Name of the function starting at *addr*, or None."""
        self._meter.charge("symtab_lookup")
        return self._by_addr.get(addr)

    def is_function_start(self, addr: int) -> bool:
        self._meter.charge("symtab_lookup")
        return addr in self._by_addr

    def next_function_start(self, addr: int) -> int | None:
        """Smallest function start strictly greater than *addr*.

        The sorted-starts cache is rebuilt lazily on the first lookup
        after an :meth:`insert`, so interleaved insert/lookup sequences
        always see a coherent table.
        """
        if not self._sorted:
            self._starts = sorted(self._by_addr)
            self._sorted = True
        idx = bisect.bisect_right(self._starts, addr)
        self._meter.charge("symtab_lookup")
        return self._starts[idx] if idx < len(self._starts) else None

    def items(self):
        return self._by_addr.items()

    def __len__(self) -> int:
        return len(self._by_addr)

    def __contains__(self, addr: int) -> bool:
        return addr in self._by_addr


@dataclass
class PolicyContext:
    """Everything a policy module may inspect.

    Offsets are *text-relative* throughout: instruction offsets, symbol
    addresses, and branch targets all use the same coordinate system.

    With ``cached=True`` (the default) the context lazily computes shared
    views of the instruction buffer — call-site lists, the sorted function
    boundary table, per-function instruction extents — so the policy
    modules stop re-scanning the whole buffer once each.  The caches are
    pure wall-clock memoization: every metered operation still charges the
    cycle meter exactly as the uncached walk does, and the views assume
    the context (instructions + symtab) is frozen for its lifetime, which
    the pipeline guarantees.  ``cached=False`` recomputes everything per
    call and is used by the differential reference path.
    """

    instructions: list[Instruction]
    symtab: SymbolHashTable
    image: ElfImage
    meter: CycleMeter
    #: index of each instruction by its text-relative offset
    index_by_offset: dict[int, int] = field(default_factory=dict)
    #: enable the shared lazily-computed views below
    cached: bool = True

    def __post_init__(self) -> None:
        if not self.index_by_offset:
            self.index_by_offset = {
                insn.offset: i for i, insn in enumerate(self.instructions)
            }
        self._call_sites: tuple[list[Instruction], list[int]] | None = None
        self._starts_view: list[tuple[int, str]] | None = None
        self._extents: dict[int, tuple[int, int]] = {}
        #: per-function verdict memo for delta re-inspection (set by the
        #: streamed pipeline; policies that support it consult it)
        self.delta = None

    def at(self, offset: int) -> Instruction | None:
        idx = self.index_by_offset.get(offset)
        return self.instructions[idx] if idx is not None else None

    # ------------------------------------------------- shared prescan views

    def _scan_call_sites(self) -> tuple[list[Instruction], list[int]]:
        """One pass over the buffer collecting both call-site views."""
        direct: list[Instruction] = []
        indirect: list[int] = []
        for i, insn in enumerate(self.instructions):
            if insn.is_direct_call:
                direct.append(insn)
            if insn.is_indirect_call or insn.is_indirect_jump:
                indirect.append(i)
        return direct, indirect

    def direct_calls(self) -> list[Instruction]:
        """Direct call instructions, in buffer order (shared prescan)."""
        if not self.cached:
            return self._scan_call_sites()[0]
        if self._call_sites is None:
            self._call_sites = self._scan_call_sites()
        return self._call_sites[0]

    def indirect_calls(self) -> list[int]:
        """Indices of indirect call/jump sites, in buffer order."""
        if not self.cached:
            return self._scan_call_sites()[1]
        if self._call_sites is None:
            self._call_sites = self._scan_call_sites()
        return self._call_sites[1]

    def function_extent(self, start: int) -> tuple[int, int]:
        """(first, last+1) instruction indices of the function at *start*.

        Models the paper's traversal — walking from *start* and asking the
        symbol hash table at each instruction whether it begins another
        function — charging one lookup per walked instruction (batched).
        Extents are cached per start, but each call charges the meter as
        if it had walked: one boundary probe plus one lookup per
        instruction in the function.
        """
        if self.cached:
            ext = self._extents.get(start)
            if ext is not None:
                first, last = ext
                self.meter.charge("symtab_lookup", 1 + max(last - first, 1))
                return ext
        first = self.index_by_offset.get(start)
        if first is None:
            raise PolicyError(f"function start {start:#x} is not an instruction")
        end_offset = self.symtab.next_function_start(start)
        if end_offset is None:
            last = len(self.instructions)
        else:
            last = self.index_by_offset.get(end_offset)
            if last is None:
                raise PolicyError(
                    f"function boundary {end_offset:#x} is not an instruction"
                )
        self.meter.charge("symtab_lookup", max(last - first, 1))
        if self.cached:
            self._extents[start] = (first, last)
        return first, last

    def function_starts(self) -> list[tuple[int, str]]:
        """All (address, name) pairs, sorted by address."""
        if not self.cached:
            return sorted(self.symtab.items())
        if self._starts_view is None:
            self._starts_view = sorted(self.symtab.items())
        return self._starts_view


@dataclass
class PolicyResult:
    """Outcome of one policy module."""

    policy: str
    compliant: bool
    #: human-readable violation notes; capped, and must never embed client
    #: code bytes (enforced by tests — see the threat model in section 3)
    violations: list[str] = field(default_factory=list)
    #: counters the module wants to expose (e.g. calls checked)
    stats: dict[str, int] = field(default_factory=dict)

    def add_violation(self, note: str) -> None:
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(note)
        self.compliant = False


class PolicyModule(abc.ABC):
    """Base class for policy modules."""

    #: stable identifier used in the provider/client agreement
    name: str = "abstract"

    @abc.abstractmethod
    def check(self, ctx: PolicyContext) -> PolicyResult:
        """Inspect the client code; must not mutate the context."""

    def config_digest(self) -> bytes:
        """Bytes capturing this module's *configuration*.

        Folded into the enclave measurement alongside the module name: a
        policy is only "the agreed policy" if its parameters (e.g. the
        golden hash database, the exemption list) match what both parties
        reviewed.  Modules with configuration must override this; the
        default covers parameterless modules.
        """
        return b""

    def result(self) -> PolicyResult:
        return PolicyResult(policy=self.name, compliant=True)


class PolicyRegistry:
    """The set of policy modules loaded into a given EnGarde build.

    Both parties review this set before agreeing to the enclave: it is
    part of the measured bootstrap, so attestation pins it.
    """

    def __init__(self, modules: list[PolicyModule] | None = None) -> None:
        self._modules: dict[str, PolicyModule] = {}
        for module in modules or []:
            self.register(module)

    def register(self, module: PolicyModule) -> None:
        if module.name in self._modules:
            raise PolicyError(f"duplicate policy module {module.name!r}")
        self._modules[module.name] = module

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def names(self) -> list[str]:
        return list(self._modules)

    def digest_material(self) -> bytes:
        """Bytes folded into the enclave measurement.

        Covers both the policy *names* and each module's configuration
        digest, so attestation certifies the exact policy set — a
        same-named module with a different hash database or exemption
        list yields a different MRENCLAVE.
        """
        parts = []
        for name in sorted(self._modules):
            config = self._modules[name].config_digest()
            parts.append(name.encode() + b"\x00" + config)
        return b"\x01".join(parts)
