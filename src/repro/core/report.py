"""The compliance report: everything the cloud provider gets to see.

The threat model (paper section 3) bounds EnGarde's explicit output to the
provider: *"the only explicit communication between EnGarde and the cloud
provider must be to inform the cloud provider about policy compliance and
to identify the virtual addresses of the pages that contain the client's
code."*  This module is that boundary — nothing else crosses it, and the
property tests assert no client-content bytes can appear here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComplianceReport"]


@dataclass(frozen=True)
class ComplianceReport:
    """EnGarde's verdict, as shared with the cloud provider."""

    benchmark: str               # the client-chosen job label (not content)
    compliant: bool
    #: names of the agreed policies that were evaluated
    policies_checked: tuple[str, ...] = ()
    #: names of the policies that failed (empty when compliant)
    policies_failed: tuple[str, ...] = ()
    #: rejection stage for structural failures ("elf", "disasm", ...)
    rejected_stage: str | None = None
    #: page-aligned virtual addresses of the client's executable pages —
    #: the host needs these to pin X-not-W permissions
    executable_pages: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.compliant and (self.policies_failed or self.rejected_stage):
            raise ValueError("compliant report cannot carry failures")
        if not self.compliant and self.executable_pages:
            raise ValueError("non-compliant report must not list code pages")

    @staticmethod
    def accepted(
        benchmark: str,
        policies: list[str],
        executable_pages: list[int],
    ) -> "ComplianceReport":
        return ComplianceReport(
            benchmark=benchmark,
            compliant=True,
            policies_checked=tuple(policies),
            executable_pages=tuple(executable_pages),
        )

    @staticmethod
    def rejected(
        benchmark: str,
        policies: list[str],
        *,
        failed: list[str] | None = None,
        stage: str | None = None,
    ) -> "ComplianceReport":
        return ComplianceReport(
            benchmark=benchmark,
            compliant=False,
            policies_checked=tuple(policies),
            policies_failed=tuple(failed or ()),
            rejected_stage=stage,
        )

    def serialize(self) -> bytes:
        """Wire form sent to the (untrusted) host."""
        lines = [
            f"benchmark={self.benchmark}",
            f"compliant={int(self.compliant)}",
            f"checked={','.join(self.policies_checked)}",
            f"failed={','.join(self.policies_failed)}",
            f"stage={self.rejected_stage or ''}",
            "pages=" + ",".join(f"{p:#x}" for p in self.executable_pages),
        ]
        return "\n".join(lines).encode()

    @staticmethod
    def deserialize(raw: bytes) -> "ComplianceReport":
        fields_map: dict[str, str] = {}
        for line in raw.decode().splitlines():
            key, _, value = line.partition("=")
            fields_map[key] = value
        pages = tuple(
            int(p, 16) for p in fields_map.get("pages", "").split(",") if p
        )
        return ComplianceReport(
            benchmark=fields_map.get("benchmark", ""),
            compliant=fields_map.get("compliant") == "1",
            policies_checked=tuple(
                p for p in fields_map.get("checked", "").split(",") if p
            ),
            policies_failed=tuple(
                p for p in fields_map.get("failed", "").split(",") if p
            ),
            rejected_stage=fields_map.get("stage") or None,
            executable_pages=pages,
        )
