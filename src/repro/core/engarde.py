"""The EnGarde in-enclave inspector: the paper's primary contribution.

Orchestrates the pipeline over client content that has already been
decrypted inside the enclave::

    ELF validation -> page-split check -> NaCl disassembly -> symbol hash
    table -> policy modules -> (if compliant) load + relocate -> report

Cycle charges land in three meter phases — ``disassembly``, ``policy``,
``loading`` — matching the three cost columns of Figures 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RejectionError
from ..sgx.cpu import CycleMeter
from ..sgx.enclave import Enclave
from .disasm import Disassembler, DisassemblyResult
from .loader import LoadedImage, Loader
from .policy import PolicyRegistry, PolicyResult
from .report import ComplianceReport

__all__ = [
    "EnGarde", "InspectionOutcome", "ENGARDE_VERSION", "static_text_pages",
]

ENGARDE_VERSION = "1.0"


def static_text_pages(image) -> list[int]:
    """Page-aligned vaddrs of every byte of executable text in *image*.

    The normal pipeline guarantees exactly one text section by the time
    this runs, but the report boundary must not assume it: an image with
    several text sections reports the union of their pages, and one with
    no (non-empty) text contributes nothing — the caller rejects rather
    than emit a compliant report with no code pages.
    """
    pages: set[int] = set()
    for text in image.text_sections:
        if not text.data:
            continue
        pages.update(range(
            text.vaddr & ~0xFFF, text.vaddr + len(text.data), 4096
        ))
    return sorted(pages)


@dataclass
class InspectionOutcome:
    """Everything the pipeline produced for one client binary."""

    report: ComplianceReport
    disassembly: DisassemblyResult | None = None
    policy_results: list[PolicyResult] = field(default_factory=list)
    loaded: LoadedImage | None = None

    @property
    def accepted(self) -> bool:
        return self.report.compliant


class EnGarde:
    """One EnGarde instance, configured with the agreed policy modules."""

    def __init__(
        self,
        policies: PolicyRegistry,
        meter: CycleMeter | None = None,
        *,
        alloc_pages=None,
        per_insn_malloc: bool = False,
        optimized: bool = True,
    ) -> None:
        self.policies = policies
        self.meter = meter or CycleMeter()
        #: ``optimized=False`` runs the frozen pre-optimization hot path
        #: (reference decoder, per-instruction charges, uncached policy
        #: context) — the differential-testing oracle and benchmark
        #: baseline.  Verdicts, reports, and meter totals are identical
        #: either way; only wall-clock differs.
        self.optimized = optimized
        self.disassembler = Disassembler(
            self.meter, alloc_pages=alloc_pages,
            per_insn_malloc=per_insn_malloc, optimized=optimized,
        )
        self.loader = Loader(self.meter)

    # ------------------------------------------------------------------

    def inspect(
        self, raw_elf: bytes, *, benchmark: str = "client", scan=None
    ) -> InspectionOutcome:
        """Disassemble and policy-check only (no enclave required).

        This is the static-inspection core; :meth:`inspect_and_load` adds
        the loading stage against a real enclave.  *scan* is an optional
        speculative :class:`~repro.core.streaming.StreamScan` collected
        while the content was still arriving; the disassembler verifies it
        against the exact parse and falls back to the phased stage on any
        mismatch, so verdicts and meter totals are identical either way.
        """
        policy_names = self.policies.names()
        try:
            with self.meter.phase("disassembly"):
                if scan is not None:
                    disasm = self.disassembler.run_streamed(raw_elf, scan)
                else:
                    disasm = self.disassembler.run(raw_elf)
        except RejectionError as exc:
            return InspectionOutcome(
                report=ComplianceReport.rejected(
                    benchmark, policy_names, stage=exc.stage
                )
            )

        ctx = disasm.policy_context(self.meter, cached=self.optimized)
        results: list[PolicyResult] = []
        failed: list[str] = []
        with self.meter.phase("policy"):
            for module in self.policies:
                result = module.check(ctx)
                results.append(result)
                if not result.compliant:
                    failed.append(module.name)

        if failed:
            return InspectionOutcome(
                report=ComplianceReport.rejected(
                    benchmark, policy_names, failed=failed
                ),
                disassembly=disasm,
                policy_results=results,
            )
        # The report's executable-page list is finalised by the loader; the
        # static-only path reports the image's own text pages.
        pages = static_text_pages(disasm.image)
        if not pages:
            return InspectionOutcome(
                report=ComplianceReport.rejected(
                    benchmark, policy_names, stage="no-text"
                ),
                disassembly=disasm,
                policy_results=results,
            )
        return InspectionOutcome(
            report=ComplianceReport.accepted(benchmark, policy_names, pages),
            disassembly=disasm,
            policy_results=results,
        )

    def inspect_and_load(
        self,
        raw_elf: bytes,
        enclave: Enclave,
        region_base: int,
        region_pages: int,
        *,
        benchmark: str = "client",
        scan=None,
    ) -> InspectionOutcome:
        """Full pipeline: inspect, then load into *enclave* if compliant."""
        outcome = self.inspect(raw_elf, benchmark=benchmark, scan=scan)
        if not outcome.accepted or outcome.disassembly is None:
            return outcome

        try:
            with self.meter.phase("loading"):
                loaded = self.loader.load(
                    outcome.disassembly.image, enclave, region_base, region_pages
                )
        except RejectionError as exc:
            return InspectionOutcome(
                report=ComplianceReport.rejected(
                    benchmark, self.policies.names(), stage=exc.stage
                ),
                disassembly=outcome.disassembly,
                policy_results=outcome.policy_results,
            )

        report = ComplianceReport.accepted(
            benchmark, self.policies.names(), loaded.executable_pages
        )
        return InspectionOutcome(
            report=report,
            disassembly=outcome.disassembly,
            policy_results=outcome.policy_results,
            loaded=loaded,
        )

    # ------------------------------------------------------------------

    def bootstrap_bytes(self) -> bytes:
        """The measured in-enclave bootstrap identity.

        Stands in for EnGarde's code pages: a deterministic blob binding
        the EnGarde version and the *exact policy set* — so the enclave
        measurement (and hence attestation) pins which policies will run.
        """
        return (
            b"ENGARDE-BOOTSTRAP v" + ENGARDE_VERSION.encode() + b"\x00"
            + self.policies.digest_material()
        )
