"""EnGarde's in-enclave loader: mapping, relocation, control transfer.

Runs only after every policy module has passed (paper section 4,
"Loading"): maps the text, data and bss segments into the enclave's
client region — text read-only + executable, data/bss writable +
non-executable — locates the relocation table through the ``.dynamic``
section (``DT_RELA``/``DT_RELASZ``/``DT_RELAENT``), applies the
``R_X86_64_RELATIVE`` entries against the chosen load bias, sets up a call
stack, and reports the executable page list for the host-side component
to pin via page tables and EMODPR.

Cycle charges: one ``page_map`` per page mapped, one ``reloc_apply`` per
relocation — loading is the cheapest phase by orders of magnitude
(Figures 3-5, last column), since segment mapping is page-table work, not
byte copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..elf import ElfImage
from ..errors import RejectionError, SgxError
from ..sgx.cpu import CycleMeter
from ..sgx.enclave import Enclave
from ..sgx.params import PAGE_SIZE

__all__ = ["LoadedImage", "Loader"]

_STACK_PAGES = 4


@dataclass
class LoadedImage:
    """Where the client image landed inside the enclave."""

    load_bias: int
    entry: int                      # absolute in-enclave entry address
    executable_pages: list[int]     # page-aligned in-enclave vaddrs (code)
    writable_pages: list[int]       # page-aligned in-enclave vaddrs (data/bss)
    stack_top: int
    relocations_applied: int
    pages_mapped: int


class Loader:
    """Maps a validated image into the enclave's client region."""

    def __init__(self, meter: CycleMeter) -> None:
        self.meter = meter

    def load(
        self,
        image: ElfImage,
        enclave: Enclave,
        region_base: int,
        region_pages: int,
    ) -> LoadedImage:
        """Copy segments into [region_base, region_base + region_pages*4K).

        The region's pages were EADDed writable+executable at enclave
        build; the host component restricts them after loading.
        """
        meter = self.meter
        meter.charge("loader_setup")
        min_vaddr = min(p.p_vaddr for p in image.load_segments)
        load_bias = region_base - _page_floor(min_vaddr)
        span = image.max_vaddr - _page_floor(min_vaddr)
        pages_needed = _pages(span) + _STACK_PAGES
        if pages_needed > region_pages:
            raise RejectionError(
                f"image needs {pages_needed} pages but the client region "
                f"has {region_pages}",
                stage="load",
            )

        executable_pages: list[int] = []
        writable_pages: list[int] = []
        pages_mapped = 0

        # -- map segments ---------------------------------------------------
        for phdr in image.load_segments:
            meter.charge("segment_map")
            seg_bytes = image.raw[phdr.p_offset:phdr.p_offset + phdr.p_filesz]
            dst = load_bias + phdr.p_vaddr
            if seg_bytes:
                try:
                    enclave.write(dst, seg_bytes)
                except SgxError as exc:
                    raise RejectionError(
                        f"segment does not fit the client region: {exc}",
                        stage="load",
                    ) from exc
            n_pages = _pages(phdr.p_memsz + (dst % PAGE_SIZE))
            executable = bool(phdr.p_flags & 0x1)
            for i in range(n_pages):
                page_vaddr = _page_floor(dst) + i * PAGE_SIZE
                meter.charge("page_map")
                pages_mapped += 1
                if executable:
                    executable_pages.append(page_vaddr)
                else:
                    writable_pages.append(page_vaddr)

        # -- relocations (already parsed via .dynamic by the reader) --------
        for rela in image.relocations:
            meter.charge("reloc_apply")
            slot = load_bias + rela.r_offset
            value = (load_bias + rela.r_addend) & 0xFFFFFFFFFFFFFFFF
            enclave.write(slot, value.to_bytes(8, "little"))

        # -- call stack -------------------------------------------------------
        stack_low = region_base + (region_pages - _STACK_PAGES) * PAGE_SIZE
        stack_top = region_base + region_pages * PAGE_SIZE - 16
        for i in range(_STACK_PAGES):
            meter.charge("page_map")
            pages_mapped += 1
            writable_pages.append(stack_low + i * PAGE_SIZE)
        # A zeroed argc/argv frame and a return address of 0 (the enclave
        # runtime regains control when the client's _start returns).
        enclave.write(stack_top, b"\x00" * 16)

        entry = load_bias + image.entry
        # De-duplicate: a page is executable if any mapping made it so.
        exec_set = sorted(set(executable_pages))
        write_set = sorted(set(writable_pages) - set(executable_pages))
        return LoadedImage(
            load_bias=load_bias,
            entry=entry,
            executable_pages=exec_set,
            writable_pages=write_set,
            stack_top=stack_top,
            relocations_applied=len(image.relocations),
            pages_mapped=pages_mapped,
        )


def _page_floor(vaddr: int) -> int:
    return vaddr & ~(PAGE_SIZE - 1)


def _pages(nbytes: int) -> int:
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
