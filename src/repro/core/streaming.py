"""Streaming provisioning: overlapped decode/prescan + delta re-inspection.

Two pieces the streamed receive path composes:

* :class:`StreamingPipeline` — fed the provisioning buffer as each channel
  record lands, it speculatively locates the text segment from the ELF and
  program headers (the writer places ``.text`` early and the symbol table
  at the end of the file, so code arrives long before symbols) and drives
  a :class:`~repro.x86.StreamDecoder` plus a fused prescan over every
  instruction the moment its bytes are available.  By the time the channel
  drains, decode and the prescan artifacts the validator and the policy
  context need (offset index, branch/terminator indices, call-site lists)
  are already done.  The pipeline is *speculative and fail-safe*: the
  disassembler verifies the scanned bytes against the exactly-parsed image
  and falls back to the phased path on any mismatch or decode error.

* Delta re-inspection — :func:`cdc_chunks` content-defined chunking over
  the text, :class:`DeltaIndex` remembering the previous version's chunk
  table and decoded tokens, :func:`delta_scan` splicing clean token runs
  with freshly-decoded dirty function extents, and
  :class:`FunctionVerdictMemo` caching per-function stack-protection
  verdicts keyed by the function's bytes (plus every byte the original
  check read outside them).  An updated binary re-pays decode and the
  super-linear policy scan only for the functions that changed, while the
  wire transcript, MRENCLAVE, verdict bytes, and meter totals stay exactly
  those of a cold phased run.
"""

from __future__ import annotations

import hashlib
import struct
from bisect import bisect_right
from dataclasses import dataclass, field

from ..elf.constants import ELF_MAGIC, PF_X, PT_LOAD
from ..errors import DecodeError
from ..x86 import BUNDLE_SIZE, Instruction, StreamDecoder, iter_decode

__all__ = [
    "StreamScan",
    "StreamingPipeline",
    "RecordingMeter",
    "FunctionVerdictMemo",
    "DeltaIndex",
    "cdc_chunks",
    "delta_scan",
    "build_delta_index",
]

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")

_TERMINATORS = frozenset(("ret", "retq", "jmp", "jmpq", "ud2", "hlt"))


# --------------------------------------------------------------------------
# Streamed decode + fused prescan
# --------------------------------------------------------------------------


@dataclass
class StreamScan:
    """Artifacts of one streamed (or delta-spliced) decode of a text blob.

    ``code`` is the byte slice the scan decoded; the disassembler only
    trusts the scan after verifying ``code`` equals the text section of
    the exactly-parsed image.  ``bundle_violation`` is *recorded*, never
    raised, during decode — decode errors must keep precedence exactly as
    in the phased order, so the fast validator raises it in the
    check-bundles position instead.
    """

    code: bytes
    instructions: list[Instruction]
    by_offset: dict[int, int]
    branch_idx: list[int]
    term_idx: list[int]
    direct_calls: list[Instruction]
    indirect_idx: list[int]
    bundle_violation: tuple[int, str, int] | None
    n_bytes: int
    error: DecodeError | None = None
    #: per-function verdict memo the provider threads into the policy
    #: context (None outside delta-capable provisioning)
    delta: "FunctionVerdictMemo | None" = None
    #: CDC chunking of ``code`` when the producer already computed one
    #: (lets the delta index skip re-chunking the same bytes)
    chunks: "list[tuple[int, int, bytes]] | None" = None

    @classmethod
    def from_instructions(
        cls, code: bytes, instructions: list[Instruction]
    ) -> "StreamScan":
        """Rebuild every prescan artifact with one pass over a token list."""
        scan = cls(
            code=code, instructions=instructions, by_offset={},
            branch_idx=[], term_idx=[], direct_calls=[], indirect_idx=[],
            bundle_violation=None, n_bytes=0,
        )
        by_offset = scan.by_offset
        branch_append = scan.branch_idx.append
        term_append = scan.term_idx.append
        direct_append = scan.direct_calls.append
        indirect_append = scan.indirect_idx.append
        for i, insn in enumerate(instructions):
            offset = insn.offset
            end = offset + len(insn.raw)
            by_offset[offset] = i
            scan.n_bytes += end - offset
            if (scan.bundle_violation is None
                    and offset // BUNDLE_SIZE != (end - 1) // BUNDLE_SIZE):
                scan.bundle_violation = (offset, insn.mnemonic, end - offset)
            mnemonic = insn.mnemonic
            if insn.target is not None:
                branch_append(i)
                if mnemonic == "callq":
                    direct_append(insn)
            elif mnemonic in ("callq", "jmp", "jmpq"):
                indirect_append(i)
            if mnemonic in _TERMINATORS:
                term_append(i)
        return scan


class StreamingPipeline:
    """Incremental decode + prescan over the provisioning receive buffer.

    The provider preallocates one buffer for the announced content size
    and decrypts each record in place; after every record it calls
    :meth:`advance` with the new valid-prefix length.  The pipeline shares
    the buffer (zero copies beyond the decoder's own accumulation),
    parses the ELF/program headers as soon as their bytes land to locate
    the text segment, and feeds the stream decoder as text bytes arrive.
    ``decode=False`` keeps only the header tracking (the delta path
    decodes after the fact from the chunk diff instead).
    """

    def __init__(self, buf: bytearray, *, decode: bool = True) -> None:
        self._buf = buf
        self.decode = decode
        self.text_off: int | None = None
        self.text_size: int | None = None
        self._gave_up = False
        self._headers_done = False
        self._decoder = StreamDecoder()
        self._fed = 0
        self._decode_done = False
        self._valid = 0
        # fused prescan accumulators
        self.instructions: list[Instruction] = []
        self.by_offset: dict[int, int] = {}
        self.branch_idx: list[int] = []
        self.term_idx: list[int] = []
        self.direct_calls: list[Instruction] = []
        self.indirect_idx: list[int] = []
        self.bundle_violation: tuple[int, str, int] | None = None
        self.n_bytes = 0
        self.error: DecodeError | None = None

    # ------------------------------------------------------------ headers

    def _try_headers(self) -> None:
        buf = self._buf
        valid = self._valid
        if valid < _EHDR.size:
            return
        (ident, _t, _m, _v, _entry, phoff, _shoff, _f, _eh, phentsize,
         phnum, _she, _shn, _shs) = _EHDR.unpack_from(buf, 0)
        if (not ident.startswith(ELF_MAGIC) or phentsize != _PHDR.size
                or phnum == 0 or phoff <= 0):
            self._gave_up = True
            self._headers_done = True
            return
        table_end = phoff + phnum * _PHDR.size
        if valid < table_end or table_end > len(buf):
            if table_end > len(buf):
                self._gave_up = True
                self._headers_done = True
            return
        for i in range(phnum):
            (p_type, p_flags, p_offset, _va, _pa, p_filesz, _msz,
             _align) = _PHDR.unpack_from(buf, phoff + i * _PHDR.size)
            if p_type == PT_LOAD and p_flags & PF_X:
                if p_filesz <= 0 or p_offset + p_filesz > len(buf):
                    self._gave_up = True
                else:
                    self.text_off = p_offset
                    self.text_size = p_filesz
                break
        else:
            self._gave_up = True
        self._headers_done = True

    # ------------------------------------------------------------ pumping

    def advance(self, valid: int) -> None:
        """Bytes ``[0, valid)`` of the shared buffer are now plaintext."""
        self._valid = valid
        if not self._headers_done:
            self._try_headers()
        if (not self.decode or self._gave_up or self.error is not None
                or self.text_off is None or self._decode_done):
            return
        start = self.text_off + self._fed
        avail_end = min(valid, self.text_off + self.text_size)
        if avail_end > start:
            piece = bytes(self._buf[start:avail_end])
            self._fed += len(piece)
            try:
                self._consume(self._decoder.feed(piece))
            except DecodeError as exc:
                self.error = exc
                return
        if self._fed == self.text_size:
            try:
                self._consume(self._decoder.finish(self.text_size))
            except DecodeError as exc:
                self.error = exc
                return
            self._decode_done = True

    def _consume(self, insns: list[Instruction]) -> None:
        instructions = self.instructions
        by_offset = self.by_offset
        branch_append = self.branch_idx.append
        term_append = self.term_idx.append
        direct_append = self.direct_calls.append
        indirect_append = self.indirect_idx.append
        for insn in insns:
            i = len(instructions)
            instructions.append(insn)
            offset = insn.offset
            end = offset + len(insn.raw)
            by_offset[offset] = i
            self.n_bytes += end - offset
            if (self.bundle_violation is None
                    and offset // BUNDLE_SIZE != (end - 1) // BUNDLE_SIZE):
                self.bundle_violation = (offset, insn.mnemonic, end - offset)
            mnemonic = insn.mnemonic
            if insn.target is not None:
                branch_append(i)
                if mnemonic == "callq":
                    direct_append(insn)
            elif mnemonic in ("callq", "jmp", "jmpq"):
                indirect_append(i)
            if mnemonic in _TERMINATORS:
                term_append(i)

    # ------------------------------------------------------------ results

    def text_slice(self) -> bytes | None:
        """The text bytes per the speculative header parse, or None."""
        if self._gave_up or self.text_off is None:
            return None
        if self._valid < self.text_off + self.text_size:
            return None
        return bytes(self._buf[self.text_off:self.text_off + self.text_size])

    def finish(self) -> StreamScan | None:
        """The completed scan, or None when the pipeline had to give up.

        A scan carrying a decode ``error`` is still returned: the
        disassembler re-runs the phased decode on it so the rejection's
        error text and charge sequence are bit-exact — only the happy path
        skips work.
        """
        if not self.decode or self._gave_up or self.text_off is None:
            return None
        if self.error is None and not self._decode_done:
            return None  # stream ended before the announced text did
        return StreamScan(
            code=bytes(self._buf[self.text_off:self.text_off + self.text_size]),
            instructions=self.instructions,
            by_offset=self.by_offset,
            branch_idx=self.branch_idx,
            term_idx=self.term_idx,
            direct_calls=self.direct_calls,
            indirect_idx=self.indirect_idx,
            bundle_violation=self.bundle_violation,
            n_bytes=self.n_bytes,
            error=self.error,
        )


# --------------------------------------------------------------------------
# Charge recording (delta replay)
# --------------------------------------------------------------------------


class RecordingMeter:
    """Meter proxy that forwards charges and keeps a replayable trace.

    Swapped in front of the real :class:`~repro.sgx.cpu.CycleMeter` while
    a function's policy check runs; a later memo hit re-issues the exact
    recorded sequence so meter totals are tick-identical to re-running.
    """

    def __init__(self, meter) -> None:
        self._meter = meter
        self.events: list[tuple] = []

    def charge(self, event: str, count: int = 1) -> int:
        self.events.append(("charge", event, count))
        return self._meter.charge(event, count)

    def charge_batch(self, counts) -> int:
        counts = dict(counts)
        self.events.append(("charge_batch", counts))
        return self._meter.charge_batch(counts)

    def __getattr__(self, name):
        return getattr(self._meter, name)

    @staticmethod
    def replay(meter, events) -> None:
        for ev in events:
            if ev[0] == "charge":
                meter.charge(ev[1], ev[2])
            else:
                meter.charge_batch(ev[1])


# --------------------------------------------------------------------------
# Content-defined chunking (FastCDC-style gear hash)
# --------------------------------------------------------------------------

try:  # vectorised gear hash; the scalar loop below is the exact oracle
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

_GEAR: tuple[int, ...] | None = None
_GEAR_NP = None


def _gear_table() -> tuple[int, ...]:
    """256 deterministic 64-bit gear values (no process randomness)."""
    global _GEAR
    if _GEAR is None:
        _GEAR = tuple(
            int.from_bytes(
                hashlib.sha256(b"engarde-cdc-gear-%d" % i).digest()[:8], "big"
            )
            for i in range(256)
        )
    return _GEAR


def _cdc_chunks_scalar(
    data: bytes, *, min_size: int, avg_bits: int, max_size: int
) -> list[tuple[int, int, bytes]]:
    """Reference per-byte gear walk (and fallback when numpy is absent)."""
    gear = _gear_table()
    mask = (1 << avg_bits) - 1
    n = len(data)
    chunks: list[tuple[int, int, bytes]] = []
    start = 0
    pos = 0
    h = 0
    sha = hashlib.sha256
    while pos < n:
        h = ((h << 1) + gear[data[pos]]) & 0xFFFFFFFFFFFFFFFF
        pos += 1
        size = pos - start
        if size >= min_size and (h & mask) == 0 or size >= max_size:
            chunks.append((start, pos, sha(data[start:pos]).digest()))
            start = pos
            h = 0
    if start < n:
        chunks.append((start, n, sha(data[start:]).digest()))
    return chunks


def _gear_candidates(data: bytes, avg_bits: int):
    """Sorted boundary-candidate positions of the *never-reset* gear hash.

    ``h`` shifts left once per byte, so bits older than 64 bytes fall off:
    the hash at any position is a pure function of the trailing 64-byte
    window.  The scalar walk resets ``h`` at each boundary, but it only
    *tests* positions at least ``min_size`` bytes past the reset — with
    ``min_size >= 64`` the reset has fully shifted out by then, so the
    reset and never-reset hashes agree at every tested position and the
    candidate set can be precomputed in one vector pass (log-doubling the
    window: 6 shifted adds instead of a per-byte Python loop).
    """
    global _GEAR_NP
    if _GEAR_NP is None:
        _GEAR_NP = _np.array(_gear_table(), dtype=_np.uint64)
    g = _GEAR_NP[_np.frombuffer(data, dtype=_np.uint8)]
    h = g.copy()
    m = 1
    while m < 64:
        h[m:] += h[:-m].copy() * _np.uint64(1 << m)
        m <<= 1
    mask = _np.uint64((1 << avg_bits) - 1)
    return _np.flatnonzero((h & mask) == 0) + 1


def cdc_chunks(
    data: bytes,
    *,
    min_size: int = 512,
    avg_bits: int = 12,
    max_size: int = 16384,
) -> list[tuple[int, int, bytes]]:
    """Gear-hash content-defined chunking: ``[(start, end, digest), ...]``.

    Boundaries depend only on local content, so an edit re-synchronises
    within one chunk and every chunk outside the edited window keeps its
    (start, end, digest) triple — which is exactly what the delta differ
    keys on.  The vectorised path produces bit-identical chunkings to the
    scalar walk (a property test pins this).
    """
    n = len(data)
    if _np is None or min_size < 64 or n < min_size:
        return _cdc_chunks_scalar(
            data, min_size=min_size, avg_bits=avg_bits, max_size=max_size
        )
    cand = _gear_candidates(data, avg_bits)
    chunks: list[tuple[int, int, bytes]] = []
    sha = hashlib.sha256
    start = 0
    while start < n:
        hard = start + max_size
        j = int(_np.searchsorted(cand, start + min_size))
        if j < len(cand) and cand[j] <= hard:
            end = int(cand[j])
        else:
            end = hard
        if end >= n:
            end = n
        chunks.append((start, end, sha(data[start:end]).digest()))
        start = end
    return chunks


def _dirty_ranges(
    prev: list[tuple[int, int, bytes]],
    cur: list[tuple[int, int, bytes]],
) -> list[tuple[int, int]] | None:
    """Byte ranges where two same-length chunkings disagree.

    Walks both partitions in lockstep; on a mismatch, advances whichever
    side is behind until the partitions re-synchronise at a common
    boundary, and reports the whole window as dirty.  Returns None when
    the partitions never re-align (callers fall back to a full decode).
    """
    if prev and cur and prev[-1][1] != cur[-1][1]:
        return None
    ranges: list[tuple[int, int]] = []
    ia = ib = 0
    na, nb = len(prev), len(cur)
    while ia < na and ib < nb:
        ca, cb = prev[ia], cur[ib]
        if ca[0] == cb[0] and ca[1] == cb[1] and ca[2] == cb[2]:
            ia += 1
            ib += 1
            continue
        dirty_start = min(ca[0], cb[0])
        end_a, end_b = ca[1], cb[1]
        ia += 1
        ib += 1
        while end_a != end_b:
            if end_a < end_b:
                if ia >= na:
                    return None
                end_a = prev[ia][1]
                ia += 1
            else:
                if ib >= nb:
                    return None
                end_b = cur[ib][1]
                ib += 1
        ranges.append((dirty_start, end_a))
    if ia != na or ib != nb:
        return None
    return ranges


# --------------------------------------------------------------------------
# Per-function stack-protection verdict memo
# --------------------------------------------------------------------------

#: bytes past a function's extent whose change conservatively invalidates
#: its memo entry (the check's tail walk can peek past the extent)
SPILL_WINDOW = 64


class FunctionVerdictMemo:
    """Cross-run cache of per-function policy verdicts (fail-closed).

    An entry is only replayed when *everything* the original check could
    have observed is provably unchanged: the policy configuration digest,
    the symbol-table digest, the text length, the function's own bytes at
    the *same* start offset (a moved function never hits), a spill window
    past the extent, and the full extent bytes of every out-of-extent
    instruction the check actually read (captured at record time).  Any
    doubt is a miss — the function is simply re-inspected.
    """

    def __init__(self) -> None:
        self._policy_digest: bytes | None = None
        self._symtab_digest: bytes | None = None
        self._text_len: int | None = None
        self._entries: dict[tuple, tuple] = {}

    def session(self, ctx, policy_digest: bytes) -> "_MemoSession | None":
        """Bind to one check invocation; wipes stale state (fail closed)."""
        sections = ctx.image.text_sections
        if len(sections) != 1:
            return None
        text = sections[0].data
        symtab_digest = hashlib.sha256(
            repr(sorted(ctx.symtab.items())).encode()
        ).digest()
        if (self._policy_digest != policy_digest
                or self._symtab_digest != symtab_digest
                or self._text_len != len(text)):
            self._entries = {}
            self._policy_digest = policy_digest
            self._symtab_digest = symtab_digest
            self._text_len = len(text)
        boundaries = sorted(offset for offset, _ in ctx.symtab.items())
        return _MemoSession(self._entries, text, boundaries)


class _MemoSession:
    """One check invocation's view of the memo over the current text."""

    def __init__(
        self, entries: dict, text: bytes, boundaries: list[int]
    ) -> None:
        self._entries = entries
        self._text = text
        self._boundaries = boundaries

    def _extent(self, offset: int) -> tuple[int, int]:
        """Byte extent of the function containing *offset*."""
        bounds = self._boundaries
        idx = bisect_right(bounds, offset)
        start = bounds[idx - 1] if idx else 0
        end = bounds[idx] if idx < len(bounds) else len(self._text)
        return start, end

    def _key(self, name: str, start: int) -> tuple | None:
        _, end = self._extent(start)
        text = self._text
        body_digest = hashlib.sha256(text[start:end]).digest()
        spill_digest = hashlib.sha256(
            text[end:end + SPILL_WINDOW]
        ).digest()
        return (name, start, body_digest, spill_digest)

    def lookup(self, name: str, start: int):
        """(checked_increment, violation, charges) or None on any doubt."""
        entry = self._entries.get(self._key(name, start))
        if entry is None:
            return None
        inc, violation, charges, windows = entry
        text = self._text
        for w_start, w_end, digest in windows:
            if hashlib.sha256(text[w_start:w_end]).digest() != digest:
                return None
        return inc, violation, charges

    def record(
        self,
        name: str,
        start: int,
        inc: int,
        violation: str | None,
        charges: list[tuple],
        read_offsets: list[int],
    ) -> None:
        own = self._extent(start)
        windows: dict[tuple[int, int], bytes] = {}
        text = self._text
        for offset in read_offsets:
            if not 0 <= offset < len(text):
                continue  # out-of-bounds reads stay out of bounds (len pinned)
            extent = self._extent(offset)
            if extent == own or extent in windows:
                continue
            windows[extent] = hashlib.sha256(
                text[extent[0]:extent[1]]
            ).digest()
        self._entries[self._key(name, start)] = (
            inc, violation, charges,
            tuple((s, e, d) for (s, e), d in windows.items()),
        )


# --------------------------------------------------------------------------
# Delta re-inspection over updated binaries
# --------------------------------------------------------------------------


@dataclass
class DeltaIndex:
    """Everything remembered from the last inspected version of a binary."""

    memo: FunctionVerdictMemo = field(default_factory=FunctionVerdictMemo)
    text_len: int = -1
    text_digest: bytes = b""
    chunks: list[tuple[int, int, bytes]] = field(default_factory=list)
    instructions: list[Instruction] = field(default_factory=list)
    by_offset: dict[int, int] = field(default_factory=dict)
    #: sorted function-start byte offsets of the indexed version
    boundaries: list[int] = field(default_factory=list)
    #: prescan artifacts of the indexed decode (reused verbatim when the
    #: next version's text is byte-identical)
    branch_idx: list[int] = field(default_factory=list)
    term_idx: list[int] = field(default_factory=list)
    direct_calls: list[Instruction] = field(default_factory=list)
    indirect_idx: list[int] = field(default_factory=list)
    bundle_violation: tuple[int, str, int] | None = None
    n_bytes: int = 0

    @property
    def populated(self) -> bool:
        return self.text_len >= 0


def build_delta_index(
    index: DeltaIndex,
    text: bytes,
    scan: StreamScan,
    symbol_offsets,
) -> DeltaIndex:
    """(Re)populate *index* from a just-inspected version's scan."""
    digest = hashlib.sha256(text).digest()
    if index.populated and index.text_digest == digest:
        return index  # identical version: everything indexed still holds
    index.text_len = len(text)
    index.text_digest = digest
    index.chunks = scan.chunks if scan.chunks is not None else cdc_chunks(text)
    index.instructions = scan.instructions
    index.by_offset = scan.by_offset
    index.boundaries = sorted(set(symbol_offsets))
    index.branch_idx = scan.branch_idx
    index.term_idx = scan.term_idx
    index.direct_calls = scan.direct_calls
    index.indirect_idx = scan.indirect_idx
    index.bundle_violation = scan.bundle_violation
    index.n_bytes = scan.n_bytes
    return index


def delta_scan(prev: DeltaIndex, text: bytes) -> StreamScan | None:
    """Splice the previous version's tokens with re-decoded dirty extents.

    Returns a :class:`StreamScan` equal to what a full decode of *text*
    would produce, or None whenever that equality cannot be proven cheaply
    (length change, chunking mis-alignment, extent boundaries that are not
    clean instruction starts, or any regional decode error) — the caller
    then falls back to the full phased decode.
    """
    if not prev.populated or len(text) != prev.text_len:
        return None
    if hashlib.sha256(text).digest() == prev.text_digest:
        # Identical bytes: the indexed decode and prescan ARE this text's
        # decode — reuse every artifact without a rebuild pass.
        return StreamScan(
            code=text,
            instructions=prev.instructions,
            by_offset=prev.by_offset,
            branch_idx=prev.branch_idx,
            term_idx=prev.term_idx,
            direct_calls=prev.direct_calls,
            indirect_idx=prev.indirect_idx,
            bundle_violation=prev.bundle_violation,
            n_bytes=prev.n_bytes,
            chunks=prev.chunks,
        )
    cur_chunks = cdc_chunks(text)
    dirty = _dirty_ranges(prev.chunks, cur_chunks)
    if dirty is None or not dirty:
        return None
    boundaries = prev.boundaries
    if not boundaries or boundaries[0] < 0 or boundaries[-1] > len(text):
        return None
    # Extent partition of [0, len): [0, b0), [b0, b1), ..., [bk, len).
    edges = ([0] if not boundaries or boundaries[0] != 0 else []) + boundaries
    if not edges or edges[-1] != len(text):
        edges = edges + [len(text)]
    # Mark extents overlapping any dirty byte range.
    dirty_extents: set[int] = set()
    for d_start, d_end in dirty:
        lo = max(bisect_right(edges, d_start) - 1, 0)
        hi = bisect_right(edges, d_end - 1) - 1
        dirty_extents.update(range(lo, hi + 1))
    spliced: list[Instruction] = []
    prev_insns = prev.instructions
    prev_by_offset = prev.by_offset
    n_prev = len(prev_insns)
    for k in range(len(edges) - 1):
        s, e = edges[k], edges[k + 1]
        if s == e:
            continue
        if k in dirty_extents:
            try:
                spliced.extend(iter_decode(text, s, e))
            except DecodeError:
                return None
        else:
            first = prev_by_offset.get(s)
            if first is None:
                return None
            last = prev_by_offset.get(e) if e < prev.text_len else n_prev
            if last is None:
                return None
            spliced.extend(prev_insns[first:last])
    scan = StreamScan.from_instructions(text, spliced)
    scan.chunks = cur_chunks
    return scan
