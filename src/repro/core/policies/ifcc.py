"""Indirect function-call compliance — IFCC (paper section 5, Figure 5).

Verifies that the executable was compiled with LLVM's forward-edge CFI
(IFCC patch, reviews.llvm.org/D4167): every indirect call must be
preceded by the jump-table masking sequence::

    1b459: lea  0x85c70(%rip),%rax   # jump-table base
    1b460: sub  %eax,%ecx
    1b462: and  $0x1ff8,%rcx          # mask to an 8-byte-aligned entry
    1b469: add  %rax,%rcx
    1b475: callq *%rcx

and jump-table entries have the canonical 8-byte format::

    a19d0: jmpq 41090 <target>
    a19d5: nopl (%rax)

The module first determines the table's range from the
``__llvm_jump_instr_table_0_*`` symbols (validating each entry's format),
then linearly scans the buffer; at each indirect call it walks backward
through the lea/sub/and/add chain checking register dataflow, verifies
the mask matches the table size, and checks the lea target lies at the
table base.  A single linear pass with a short backward window per call
site — which is why Figure 5's policy-checking column is two orders of
magnitude cheaper than the other policies'.
"""

from __future__ import annotations

from ...x86 import Imm, Instruction, Mem
from ...x86.registers import Reg
from ..policy import PolicyContext, PolicyModule, PolicyResult

__all__ = ["IfccPolicy", "JUMP_TABLE_PREFIX", "walk_call_site"]

JUMP_TABLE_PREFIX = "__llvm_jump_instr_table_0_"
_ENTRY_SIZE = 8


class IfccPolicy(PolicyModule):
    """Checks indirect calls against the IFCC jump-table discipline."""

    name = "indirect-function-call"

    def __init__(self, *, backward_window: int = 12) -> None:
        self.backward_window = backward_window

    def config_digest(self) -> bytes:
        return self.backward_window.to_bytes(2, "big")

    def check(self, ctx: PolicyContext) -> PolicyResult:
        result = self.result()
        meter = ctx.meter

        table_range = self._find_jump_table(ctx, result)
        indirect_calls = 0
        meter.charge("policy_scan_insn", len(ctx.instructions))
        instructions = ctx.instructions
        for idx in ctx.indirect_calls():
            insn = instructions[idx]
            indirect_calls += 1
            if table_range is None:
                result.add_violation(
                    "indirect call present but no IFCC jump table found"
                )
                continue
            if not self._check_call_site(ctx, idx, table_range):
                result.add_violation(
                    f"indirect call at +{insn.offset:#x} is not IFCC-protected"
                )
        result.stats["indirect_calls"] = indirect_calls
        return result

    # ------------------------------------------------------------------

    def _find_jump_table(
        self, ctx: PolicyContext, result: PolicyResult
    ) -> tuple[int, int] | None:
        """Locate and format-check the jump table; returns (start, end)."""
        meter = ctx.meter
        entries = sorted(
            addr for addr, name in ctx.symtab.items()
            if name.startswith(JUMP_TABLE_PREFIX)
        )
        if not entries:
            return None
        start, end = entries[0], entries[-1] + _ENTRY_SIZE
        # Entries must tile the range contiguously at 8-byte stride and
        # each must be "jmpq ...; nopl".
        expected = set(range(start, end, _ENTRY_SIZE))
        if set(entries) != expected:
            result.add_violation("jump table entries are not contiguous")
            return None
        # Two comparisons per entry, accumulated locally and flushed in one
        # batched charge even when a malformed entry aborts the loop early.
        compares = 0
        try:
            for addr in entries:
                compares += 2
                jmp = ctx.at(addr)
                if jmp is None or not jmp.is_direct_jump or jmp.length != 5:
                    result.add_violation("malformed jump-table entry (no jmpq)")
                    return None
                pad = ctx.at(addr + 5)
                if pad is None or pad.mnemonic != "nopl" or pad.length != 3:
                    result.add_violation("malformed jump-table entry (no nopl)")
                    return None
        finally:
            if compares:
                meter.charge("policy_compare", compares)
        size = end - start
        if size & (size - 1):
            result.add_violation("jump table size is not a power of two")
            return None
        return start, end

    def _check_call_site(
        self, ctx: PolicyContext, idx: int, table_range: tuple[int, int]
    ) -> bool:
        """Walk backward over add/and/sub/lea verifying register dataflow."""
        ok, steps = walk_call_site(
            ctx.instructions, idx, table_range, self.backward_window
        )
        if steps:
            ctx.meter.charge("policy_compare", steps)
        return ok


def walk_call_site(
    instructions: list[Instruction],
    idx: int,
    table_range: tuple[int, int],
    backward_window: int,
) -> tuple[bool, int]:
    """The IFCC backward dataflow walk, meter-free.

    Returns ``(protected, steps)`` where *steps* is the number of
    backward comparisons the walk performed — the caller charges
    ``policy_compare`` with it (one charge per call site, whichever way
    the walk exits).  Factored out of :meth:`IfccPolicy._check_call_site`
    so the extent-split merge can re-run boundary-straddling walks over
    a stitched window with provably identical semantics.
    """
    call = instructions[idx]
    target = call.operands[0] if call.operands else None
    if not isinstance(target, Reg):
        return False, 0  # memory-indirect calls are never IFCC-emitted

    table_start, table_end = table_range
    ptr = target  # e.g. %rcx
    base: Reg | None = None
    mask_value: int | None = None
    state = "add"  # expected next (walking backward): add, and, sub, lea
    # One comparison per backward step; counted and returned whichever
    # way the walk exits.
    steps = 0
    for back in range(idx - 1, max(idx - 1 - backward_window, -1), -1):
        steps += 1
        insn = instructions[back]
        if insn.mnemonic in ("nop", "nopl"):
            continue
        if state == "add":
            # add %base,%ptr
            if (insn.mnemonic == "add" and len(insn.operands) == 2
                    and isinstance(insn.operands[0], Reg)
                    and isinstance(insn.operands[1], Reg)
                    and insn.operands[1].num == ptr.num):
                base = insn.operands[0]
                state = "and"
                continue
            return False, steps
        if state == "and":
            # and $mask,%ptr
            if (insn.mnemonic == "and" and len(insn.operands) == 2
                    and isinstance(insn.operands[0], Imm)
                    and isinstance(insn.operands[1], Reg)
                    and insn.operands[1].num == ptr.num):
                mask_value = insn.operands[0].value
                state = "sub"
                continue
            return False, steps
        if state == "sub":
            # sub %base(32),%ptr(32)
            if (insn.mnemonic == "sub" and len(insn.operands) == 2
                    and isinstance(insn.operands[0], Reg)
                    and isinstance(insn.operands[1], Reg)
                    and base is not None
                    and insn.operands[0].num == base.num
                    and insn.operands[1].num == ptr.num):
                state = "lea"
                continue
            return False, steps
        if state == "lea":
            # lea table(%rip),%base
            if (insn.mnemonic == "lea" and len(insn.operands) == 2
                    and isinstance(insn.operands[0], Mem)
                    and insn.operands[0].rip_relative
                    and isinstance(insn.operands[1], Reg)
                    and base is not None
                    and insn.operands[1].num == base.num):
                lea_target = insn.end + insn.operands[0].disp
                if lea_target != table_start:
                    return False, steps
                if mask_value != (table_end - table_start) - _ENTRY_SIZE:
                    return False, steps
                return True, steps
            # tolerate the pointer load interleaved in the chain
            if _writes_reg(insn, ptr) or (base is not None and _writes_reg(insn, base)):
                return False, steps
            continue
    return False, steps


def _writes_reg(insn: Instruction, reg: Reg) -> bool:
    if not insn.operands:
        return False
    dst = insn.operands[-1]
    return (
        isinstance(dst, Reg)
        and dst.num == reg.num
        and insn.mnemonic not in ("cmp", "test", "push")
    )
