"""Stack-protection compliance (paper section 5, Figure 4).

Verifies that functions carry Clang ``-fstack-protector(-all)``-style
canary instrumentation::

    19311: mov %fs:0x28,%rax     ; prologue: load the canary
    1931a: mov %rax,(%rsp)       ;           store at top of frame
    193fe: mov %fs:0x28,%rax     ; epilogue: recompute
    19407: cmp (%rsp),%rax       ;           compare
    1940b: jne 1941f             ;           mismatch ->
    1941f: callq __stack_chk_fail

The algorithm follows the paper's description: within each function,
**every** instruction that stores to a stack slot is examined — the source
register's defining instruction is found by scanning backward, and the
whole function is searched for a ``cmp`` pairing that slot with that
register (followed by the ``jne`` / ``callq __stack_chk_fail`` tail).  The
per-store full-function search makes the check super-linear in function
size, which is why 401.bzip2 (few huge functions) costs *more* cycles than
Nginx in Figure 4 despite a tenth of the instructions.

The implementation batches its cycle charges (one ``charge`` call per
scan, with the exact instruction counts the naive loop would examine)
so that simulated cost is faithful while Python overhead stays sane.
"""

from __future__ import annotations

from bisect import bisect_left

from ...x86 import Instruction, Mem
from ...x86.registers import Reg
from ..policy import PolicyContext, PolicyModule, PolicyResult
from ..streaming import RecordingMeter

__all__ = ["StackProtectionPolicy", "CANARY_FS_OFFSET"]

CANARY_FS_OFFSET = 0x28
_CHK_FAIL = "__stack_chk_fail"


def _is_stack_store(insn: Instruction) -> tuple[Reg, Mem] | None:
    """``mov %reg, disp(%rsp|%rbp)``: returns (source reg, slot) or None.

    Both %rsp- and %rbp-based slots are "the stack's variables"; the
    canary spill itself is always %rsp-based (`mov %rax,(%rsp)`).
    """
    if insn.mnemonic != "mov" or len(insn.operands) != 2:
        return None
    src, dst = insn.operands
    if not isinstance(src, Reg) or not isinstance(dst, Mem):
        return None
    if dst.base is None or dst.base.num not in (4, 5) or dst.seg or dst.index:
        return None
    return src, dst


def _is_canary_load(insn: Instruction, into: Reg | None = None) -> bool:
    """``mov %fs:0x28, %reg`` (optionally into a specific register)."""
    if insn.mnemonic != "mov" or len(insn.operands) != 2:
        return False
    src, dst = insn.operands
    if not isinstance(src, Mem) or not isinstance(dst, Reg):
        return False
    if not (src.seg == "fs" and src.disp == CANARY_FS_OFFSET
            and src.base is None and src.index is None):
        return False
    return into is None or dst.num == into.num


def _writes_register(insn: Instruction, reg_num: int) -> bool:
    """Conservative: does *insn* define register *reg_num*?  (AT&T:
    destination last.)"""
    if not insn.operands:
        return False
    dst = insn.operands[-1]
    if isinstance(dst, Reg) and dst.num == reg_num:
        return insn.mnemonic not in ("cmp", "test", "push")
    return False


class StackProtectionPolicy(PolicyModule):
    """Checks every client function for canary instrumentation."""

    name = "stack-protection"

    def __init__(
        self,
        *,
        exempt_functions: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        #: functions not subject to the check — by agreement, the linked
        #: library's own functions (verified by the library-linking policy
        #: instead) plus the entry stub
        self.exempt_functions = frozenset(exempt_functions) | {"_start"}

    def config_digest(self) -> bytes:
        """The exemption list is part of the agreement."""
        from ...crypto.sha256 import sha256_fast

        return sha256_fast("\n".join(sorted(self.exempt_functions)).encode())

    def check(self, ctx: PolicyContext) -> PolicyResult:
        result = self.result()
        functions_checked = 0
        memo = getattr(ctx, "delta", None)
        session = (
            memo.session(ctx, self.config_digest()) if memo is not None else None
        )
        for start, name in ctx.function_starts():
            if name in self.exempt_functions:
                continue
            if session is None:
                inc, violation = self._check_one(ctx, start, name)
            else:
                hit = session.lookup(name, start)
                if hit is not None:
                    inc, violation, charges = hit
                    RecordingMeter.replay(ctx.meter, charges)
                else:
                    inc, violation = self._check_one_recorded(
                        ctx, start, name, session
                    )
            functions_checked += inc
            if violation is not None:
                result.add_violation(violation)
        result.stats["functions_checked"] = functions_checked
        return result

    def _check_one(
        self, ctx: PolicyContext, start: int, name: str
    ) -> tuple[int, str | None]:
        """The per-function check: (checked increment, violation or None)."""
        first, last = ctx.function_extent(start)
        body = ctx.instructions[first:last]
        if not any(_is_stack_store(i) for i in body):
            return 0, None  # no stack variables: nothing to protect
        if not self._function_protected(ctx, body):
            return 1, (
                f"function {name!r} lacks stack-protector instrumentation"
            )
        return 1, None

    def _check_one_recorded(
        self, ctx: PolicyContext, start: int, name: str, session
    ) -> tuple[int, str | None]:
        """Run the check while capturing charges and out-of-extent reads.

        The recorded trace makes the verdict replayable: a later run may
        skip this function only if its bytes (and everything the tail walk
        read outside them) are provably unchanged — then the charges are
        re-issued verbatim, keeping meter totals tick-identical.
        """
        real_meter = ctx.meter
        real_symtab_meter = ctx.symtab._meter
        recorder = RecordingMeter(real_meter)
        reads: list[int] = []
        cls_at = type(ctx).at

        def tracked_at(offset):
            reads.append(offset)
            return cls_at(ctx, offset)

        ctx.meter = recorder
        ctx.symtab._meter = recorder
        ctx.at = tracked_at
        try:
            inc, violation = self._check_one(ctx, start, name)
        finally:
            ctx.meter = real_meter
            ctx.symtab._meter = real_symtab_meter
            del ctx.at
        session.record(name, start, inc, violation, recorder.events, reads)
        return inc, violation

    # ------------------------------------------------------------------

    def _function_protected(self, ctx: PolicyContext, body: list[Instruction]) -> bool:
        """The paper's per-function algorithm, with batched cost charging.

        For every stack store: (a) scan backward for the source register's
        defining instruction; (b) scan the function for a ``cmp`` matching
        (slot, register) with the check tail.  Protected iff some store's
        value is the ``%fs:0x28`` canary *and* its tail exists.
        """
        meter = ctx.meter
        n = len(body)
        meter.charge("policy_scan_insn", n)

        # Precomputed views of the function body.
        stores: list[tuple[int, int, int]] = []      # (idx, src reg, disp)
        writes_by_reg: dict[int, list[int]] = {}     # reg -> write indices
        cmps: list[tuple[int, int, int]] = []        # (idx, disp, reg)
        for idx, insn in enumerate(body):
            store = _is_stack_store(insn)
            if store is not None:
                stores.append((idx, store[0].num, store[1].disp))
            if insn.operands:
                dst = insn.operands[-1]
                if isinstance(dst, Reg) and insn.mnemonic not in ("cmp", "test", "push"):
                    writes_by_reg.setdefault(dst.num, []).append(idx)
            if insn.mnemonic == "cmp" and len(insn.operands) == 2:
                mem, reg = insn.operands
                if (isinstance(mem, Mem) and isinstance(reg, Reg)
                        and mem.base is not None and mem.base.num == 4
                        and not mem.seg and mem.index is None):
                    cmps.append((idx, mem.disp, reg.num))

        tail_cache: dict[int, bool] = {}
        protected = False
        backward_charges = 0
        forward_charges = 0

        for idx, src_num, disp in stores:
            # (a) backward scan to the defining instruction.
            wlist = writes_by_reg.get(src_num, ())
            pos = bisect_left(wlist, idx)
            defining_idx = wlist[pos - 1] if pos else None
            if defining_idx is not None:
                backward_charges += idx - defining_idx
            else:
                backward_charges += idx
            # (b) forward scan for the first matching cmp with a valid tail.
            match_charge = n  # examined everything when nothing matches
            found_tail = False
            for cmp_idx, cmp_disp, cmp_reg in cmps:
                if cmp_disp != disp or cmp_reg != src_num:
                    continue
                ok = tail_cache.get(cmp_idx)
                if ok is None:
                    ok = self._tail_ok(ctx, body, cmp_idx, cmp_reg)
                    tail_cache[cmp_idx] = ok
                if ok:
                    match_charge = cmp_idx + 1
                    found_tail = True
                    break
            forward_charges += match_charge

            if found_tail and defining_idx is not None and _is_canary_load(
                body[defining_idx], body[idx].operands[0]
            ):
                protected = True

        compares = backward_charges + forward_charges
        if compares:
            meter.charge("policy_compare", compares)
        return protected

    def _tail_ok(
        self, ctx: PolicyContext, body: list[Instruction], cmp_idx: int, reg_num: int
    ) -> bool:
        """cmp is preceded by the canary recompute and followed by
        ``jne -> callq __stack_chk_fail`` (alignment NOPs transparent)."""
        meter = ctx.meter
        prev = cmp_idx - 1
        while prev >= 0 and body[prev].mnemonic in ("nop", "nopl"):
            meter.charge("policy_compare")
            prev -= 1
        if prev < 0 or not _is_canary_load(body[prev], Reg(reg_num, 64)):
            return False
        nxt = cmp_idx + 1
        while nxt < len(body) and body[nxt].mnemonic in ("nop", "nopl"):
            meter.charge("policy_compare")
            nxt += 1
        if nxt >= len(body):
            return False
        jne = body[nxt]
        if jne.mnemonic != "jne" or jne.target is None:
            return False
        fail_call = ctx.at(jne.target)
        while fail_call is not None and fail_call.mnemonic in ("nop", "nopl"):
            meter.charge("policy_compare")
            fail_call = ctx.at(fail_call.end)
        if fail_call is None or not fail_call.is_direct_call:
            return False
        return ctx.symtab.lookup(fail_call.target) == _CHK_FAIL
