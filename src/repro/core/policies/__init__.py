"""The three policy modules the paper evaluates (section 5)."""

from .ifcc import IfccPolicy, JUMP_TABLE_PREFIX
from .library_linking import LibraryLinkingPolicy
from .stack_protection import CANARY_FS_OFFSET, StackProtectionPolicy

__all__ = [
    "LibraryLinkingPolicy",
    "StackProtectionPolicy",
    "IfccPolicy",
    "JUMP_TABLE_PREFIX",
    "CANARY_FS_OFFSET",
]
