"""Library-linking compliance (paper section 5, Figure 3).

Verifies that every libc function the client's code calls is byte-for-byte
the agreed library version (the paper uses musl-libc v1.0.5): the module
iterates the instruction buffer; for every *direct* call it resolves the
target through the symbol hash table and, when the name belongs to the
reference database, walks the callee instruction-by-instruction (stopping
when it reaches the start of another function), hashing its bytes with
SHA-256 and comparing against the golden hash.

Faithful to the paper, the walk+hash is repeated for **every call site**
— there is no memoisation.  ``memoize=True`` enables it, quantified by
the ``bench_ablation_hash_memo`` benchmark.
"""

from __future__ import annotations

from ...crypto.sha256 import sha256_fast
from ..policy import PolicyContext, PolicyModule, PolicyResult

__all__ = ["LibraryLinkingPolicy"]


class LibraryLinkingPolicy(PolicyModule):
    """Checks linked-library identity via per-function SHA-256 hashes."""

    name = "library-linking"

    def __init__(
        self,
        reference_hashes: dict[str, bytes],
        *,
        library_name: str = "musl-libc v1.0.5",
        require_all_calls_known: bool = False,
        memoize: bool = False,
    ) -> None:
        if not reference_hashes:
            raise ValueError("reference hash database is empty")
        self.reference_hashes = dict(reference_hashes)
        self.library_name = library_name
        self.require_all_calls_known = require_all_calls_known
        self.memoize = memoize

    def config_digest(self) -> bytes:
        """The golden database and flags are part of the agreement."""
        acc = sha256_fast(self.library_name.encode())
        for name in sorted(self.reference_hashes):
            acc = sha256_fast(acc + name.encode() + self.reference_hashes[name])
        return sha256_fast(
            acc + bytes([self.require_all_calls_known])
        )

    def check(self, ctx: PolicyContext) -> PolicyResult:
        result = self.result()
        meter = ctx.meter
        calls_checked = 0
        hashes_computed = 0
        cache: dict[int, bytes] = {}
        # Wall-clock-only digest index (cached contexts, unmemoized mode):
        # each callee's bytes are hashed once, but repeat call sites still
        # charge the meter — and count toward ``hashes_computed`` — exactly
        # as the paper's per-call-site walk does.  Observable behaviour is
        # identical to recomputing; only Python time is saved.
        use_index = ctx.cached and not self.memoize
        digest_index: dict[int, tuple[bytes, int, int]] = {}

        meter.charge("policy_scan_insn", len(ctx.instructions))
        for insn in ctx.direct_calls():
            target = insn.target
            name = ctx.symtab.lookup(target)
            if name is None:
                result.add_violation(
                    f"direct call at +{insn.offset:#x} targets a non-function "
                    "address"
                )
                continue
            if name not in self.reference_hashes:
                if self.require_all_calls_known:
                    result.add_violation(
                        f"call to {name!r} which is not in the "
                        f"{self.library_name} database"
                    )
                continue
            calls_checked += 1
            if self.memoize and target in cache:
                digest = cache[target]
            elif use_index and target in digest_index:
                digest, lookups, blocks = digest_index[target]
                meter.charge_batch(
                    {"symtab_lookup": lookups, "sha256_block": blocks}
                )
                hashes_computed += 1
            else:
                digest, lookups, blocks = self._hash_function(ctx, target)
                hashes_computed += 1
                if self.memoize:
                    cache[target] = digest
                elif use_index:
                    digest_index[target] = (digest, lookups, blocks)
            if digest != self.reference_hashes[name]:
                result.add_violation(
                    f"function {name!r} does not match {self.library_name}"
                )

        result.stats["calls_checked"] = calls_checked
        result.stats["hashes_computed"] = hashes_computed
        return result

    def _hash_function(
        self, ctx: PolicyContext, start: int
    ) -> tuple[bytes, int, int]:
        """Walk the callee from *start* to the next function start, hashing.

        Each walked instruction consults the symbol hash table ("is this
        the beginning of another function?"), exactly as the paper
        describes — that lookup, plus the SHA-256 compression over the
        callee's bytes, is what makes this the most expensive policy in
        Figure 3.  Charges are batched with the exact counts the
        instruction-by-instruction walk performs.

        Returns ``(digest, symtab_lookups, sha256_blocks)`` — the charge
        counts let the digest index re-charge repeat call sites with
        exactly what this walk cost (``next_function_start`` charges one
        extra symtab_lookup on top of the per-instruction probes).
        """
        meter = ctx.meter
        first = ctx.index_by_offset[start]
        end_offset = ctx.symtab.next_function_start(start)
        instructions = ctx.instructions
        if end_offset is None:
            last = len(instructions)
            end_byte = instructions[-1].end
        else:
            last = ctx.index_by_offset[end_offset]
            end_byte = end_offset
        # One is-function-start probe per walked instruction (including the
        # boundary instruction that terminates the walk).
        meter.charge("symtab_lookup", max(last - first, 1))
        nbytes = end_byte - start
        blocks = (nbytes + 63) // 64 + 1  # +1 finalise
        meter.charge("sha256_block", blocks)
        text = ctx.image.text_sections[0].data
        digest = sha256_fast(text[start:end_byte])
        return digest, 1 + max(last - first, 1), blocks
