"""EnGarde's in-enclave disassembly stage.

Follows the paper's pipeline (sections 3-4):

1. split the received content into page-level chunks and reject pages that
   mix code and data (EnGarde "operates at the granularity of memory
   pages"),
2. validate the ELF header (signature, class) and extract the text
   sections,
3. disassemble with the NaCl-style decoder into a **dynamically allocated
   instruction buffer** — unlike NaCl, which validates instruction-by-
   instruction with a small ring buffer, EnGarde keeps every instruction
   for the policy modules; buffer memory is requested from the host a page
   at a time because each ``malloc`` trampoline costs an enclave
   exit/re-entry (two SGX instructions),
4. enforce the NaCl structural constraints (32-byte bundles, valid branch
   targets, reachability),
5. read the symbol table into the symbol hash table (address -> name),
   auto-rejecting binaries without symbols.

Every step charges the cycle meter; the harness attributes this stage to
the "Disassembly" column of Figures 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..elf import ElfImage, read_elf
from ..errors import DecodeError, ElfError, RejectionError, ValidationError
from ..faults import hooks as _faults
from ..sgx.cpu import CycleMeter
from ..sgx.params import PAGE_SIZE
from ..x86 import Instruction, iter_decode, validate, validate_fast
from ..x86.refdecode import ref_decode_one
from .policy import PolicyContext, SymbolHashTable
from .streaming import StreamScan

__all__ = ["DisassemblyResult", "Disassembler", "INSN_RECORD_BYTES"]

#: size of one stored instruction record in the buffer (NaCl keeps raw
#: bytes + decoded metadata; 64 bytes is the C struct's footprint)
INSN_RECORD_BYTES = 64


@dataclass
class DisassemblyResult:
    """Output of the stage, consumed by the policy engine and the loader."""

    image: ElfImage
    instructions: list[Instruction]
    symtab: SymbolHashTable
    text_vaddr: int
    #: pages of instruction-buffer memory requested from the host
    buffer_pages_allocated: int
    #: streamed prescan artifacts when the scan was verified and used
    scan: StreamScan | None = None

    def policy_context(self, meter: CycleMeter, *, cached: bool = True) -> PolicyContext:
        scan = self.scan
        if scan is not None and cached:
            # Seed the context with the prescan's byproducts: the offset
            # index and call-site views were already collected while the
            # content streamed in, so the policy stage starts warm.
            ctx = PolicyContext(
                instructions=self.instructions,
                symtab=self.symtab,
                image=self.image,
                meter=meter,
                index_by_offset=scan.by_offset,
                cached=cached,
            )
            ctx._call_sites = (scan.direct_calls, scan.indirect_idx)
            ctx.delta = scan.delta
            return ctx
        return PolicyContext(
            instructions=self.instructions,
            symtab=self.symtab,
            image=self.image,
            meter=meter,
            cached=cached,
        )


class Disassembler:
    """The in-enclave disassembly component.

    *alloc_pages* is the host trampoline for growing the instruction
    buffer (``HostOS.svc_alloc_pages`` in the full stack; a counter stub in
    unit tests).  *per_insn_malloc* reproduces the naive strategy the
    paper optimised away — one trampoline per instruction record instead
    of one per page — for the ablation benchmark.

    *optimized* selects the decode loop: the default drives the
    dispatch-table decoder through a resumable cursor and flushes meter
    charges once per stage; ``optimized=False`` runs the frozen
    pre-optimization loop (per-instruction ``ref_decode_one`` + three
    per-instruction ``charge`` calls) for differential testing and
    baseline benchmarks.  Both produce identical instructions, identical
    trampoline call sequences, and tick-identical meter totals.
    """

    def __init__(
        self,
        meter: CycleMeter,
        *,
        alloc_pages=None,
        per_insn_malloc: bool = False,
        allow_stripped: bool = False,
        optimized: bool = True,
    ) -> None:
        self.meter = meter
        self._alloc_pages = alloc_pages or (lambda n: 0)
        self.per_insn_malloc = per_insn_malloc
        #: extension (paper section 6): recover function starts in
        #: stripped binaries instead of auto-rejecting them
        self.allow_stripped = allow_stripped
        self.optimized = optimized

    # ------------------------------------------------------------ stages

    def check_page_separation(self, image: ElfImage) -> None:
        """Reject pages containing both code and data (paper section 3)."""
        code_pages: set[int] = set()
        data_pages: set[int] = set()
        for section in image.sections:
            if not section.size or not section.vaddr:
                continue
            pages = range(
                section.vaddr // PAGE_SIZE,
                (section.vaddr + section.size - 1) // PAGE_SIZE + 1,
            )
            if section.is_text:
                code_pages.update(pages)
            else:
                data_pages.update(pages)
        mixed = code_pages & data_pages
        if mixed:
            raise RejectionError(
                f"{len(mixed)} page(s) contain mixed code and data "
                "(compile with separated sections)",
                stage="page-split",
            )

    def parse_elf(self, raw: bytes) -> ElfImage:
        """Header validation + parsing; ElfError becomes a rejection."""
        try:
            image = read_elf(raw)
        except ElfError as exc:
            raise RejectionError(f"malformed ELF: {exc}", stage="elf") from exc
        if not image.text_sections:
            raise RejectionError("no executable sections", stage="elf")
        if not image.function_symbols() and not self.allow_stripped:
            # Paper section 6: stripped binaries are auto-rejected.
            raise RejectionError(
                "binary carries no function symbols (stripped binaries "
                "are rejected)",
                stage="elf",
            )
        return image

    def disassemble(self, image: ElfImage) -> DisassemblyResult:
        """Decode all text sections into the dynamic instruction buffer."""
        meter = self.meter
        if len(image.text_sections) != 1:
            raise RejectionError(
                "expected exactly one text section", stage="disasm"
            )
        text = image.text_sections[0]

        if self.optimized:
            instructions, buffer_pages = self._decode_fast(text.data)
        else:
            instructions, buffer_pages = self._decode_reference(text.data)

        symtab, roots = self._build_symtab(image, text, instructions)

        entry_offset = image.entry - text.vaddr
        try:
            validate(instructions, entry=entry_offset, roots=roots)
        except ValidationError as exc:
            raise RejectionError(
                f"NaCl constraint violated: {exc}", stage="disasm"
            ) from exc

        return DisassemblyResult(
            image=image,
            instructions=instructions,
            symtab=symtab,
            text_vaddr=text.vaddr,
            buffer_pages_allocated=buffer_pages,
        )

    def _build_symtab(self, image: ElfImage, text, instructions):
        """Symbol hash table + reachability roots (shared by both paths)."""
        code = text.data
        symtab = SymbolHashTable(self.meter)
        roots = []
        if image.function_symbols():
            for sym in image.function_symbols():
                offset = sym.value - text.vaddr
                if not 0 <= offset < len(code):
                    raise RejectionError(
                        f"symbol {sym.name!r} lies outside the text section",
                        stage="disasm",
                    )
                symtab.insert(offset, sym.name)
                roots.append(offset)
        else:
            # Stripped-binary extension: recover function starts
            # structurally (paper section 6's "future enhancement").
            from .funcid import recognize_functions

            entry_off = image.entry - text.vaddr
            recognized = recognize_functions(instructions, entry=entry_off)
            for offset, name in recognized.synthetic_names().items():
                symtab.insert(offset, name)
                roots.append(offset)
        return symtab, roots

    def _disassemble_from_scan(
        self, image: ElfImage, scan: StreamScan
    ) -> DisassemblyResult:
        """Adopt a verified streamed scan instead of re-decoding.

        The decode already happened while the content streamed in, so this
        replays its *observable* effects exactly: the same buffer-growth
        trampoline sequence (all one-page requests, in order), the same
        batched decode charges, and the fast validator over the prescan
        artifacts — whose check order and error strings match the
        reference validator byte for byte.
        """
        meter = self.meter
        text = image.text_sections[0]
        instructions = scan.instructions
        n = len(instructions)
        if self.per_insn_malloc:
            buffer_pages = n
            for _ in range(n):
                self._alloc_pages(1)
        else:
            buffer_pages = -(-n * INSN_RECORD_BYTES // PAGE_SIZE)
            for _ in range(buffer_pages):
                self._alloc_pages(1)
        meter.charge_batch({
            "decode_byte": scan.n_bytes,
            "decode_insn": n,
            "buffer_store": n,
        })

        symtab, roots = self._build_symtab(image, text, instructions)

        entry_offset = image.entry - text.vaddr
        try:
            validate_fast(
                instructions,
                entry=entry_offset,
                roots=roots,
                by_offset=scan.by_offset,
                bundle_violation=scan.bundle_violation,
                branch_idx=scan.branch_idx,
                term_idx=scan.term_idx,
            )
        except ValidationError as exc:
            raise RejectionError(
                f"NaCl constraint violated: {exc}", stage="disasm"
            ) from exc

        return DisassemblyResult(
            image=image,
            instructions=instructions,
            symtab=symtab,
            text_vaddr=text.vaddr,
            buffer_pages_allocated=buffer_pages,
            scan=scan,
        )

    # ------------------------------------------------------- decode loops

    def _decode_fast(self, code: bytes) -> tuple[list[Instruction], int]:
        """Hot decode loop: resumable-cursor decoding, batched charges.

        Meter counts are accumulated in locals and flushed with one
        :meth:`CycleMeter.charge_batch` call per stage — including on the
        rejection path, so a binary that fails mid-stream still charges
        exactly what the per-instruction reference loop would have charged
        for the instructions completed before the failure.
        """
        instructions: list[Instruction] = []
        append = instructions.append
        alloc = self._alloc_pages
        per_insn = self.per_insn_malloc
        buffer_bytes_used = 0
        buffer_pages = 0
        n_bytes = 0
        # Hot path: the per-instruction fault hook only exists when a plan
        # actually watches the decoder — zero overhead otherwise.
        hooked = _faults.wants("x86.decoder")
        try:
            for insn in iter_decode(code, 0, len(code)):
                if hooked:
                    _faults.fault_hook("x86.decoder", error=DecodeError)
                n_bytes += insn.length
                # Dynamic buffer bookkeeping: allocate via the trampoline
                # page-at-a-time (or per record, for the ablation).
                if per_insn:
                    alloc(1)
                    buffer_pages += 1
                else:
                    buffer_bytes_used += INSN_RECORD_BYTES
                    if buffer_bytes_used > buffer_pages * PAGE_SIZE:
                        alloc(1)
                        buffer_pages += 1
                append(insn)
        except DecodeError as exc:
            self.meter.charge_batch({
                "decode_byte": n_bytes,
                "decode_insn": len(instructions),
                "buffer_store": len(instructions),
            })
            raise RejectionError(
                f"disassembly failed: {exc}", stage="disasm"
            ) from exc
        self.meter.charge_batch({
            "decode_byte": n_bytes,
            "decode_insn": len(instructions),
            "buffer_store": len(instructions),
        })
        return instructions, buffer_pages

    def _decode_reference(self, code: bytes) -> tuple[list[Instruction], int]:
        """Frozen pre-optimization loop (differential oracle / baseline)."""
        meter = self.meter
        instructions: list[Instruction] = []
        buffer_bytes_used = 0
        buffer_pages = 0
        pos = 0
        hooked = _faults.wants("x86.decoder")
        try:
            while pos < len(code):
                insn = ref_decode_one(code, pos)
                if hooked:
                    _faults.fault_hook("x86.decoder", error=DecodeError)
                if insn.end > len(code):
                    raise DecodeError("instruction extends past section end")
                meter.charge("decode_byte", insn.length)
                meter.charge("decode_insn")
                if self.per_insn_malloc:
                    self._alloc_pages(1)
                    buffer_pages += 1
                else:
                    buffer_bytes_used += INSN_RECORD_BYTES
                    if buffer_bytes_used > buffer_pages * PAGE_SIZE:
                        self._alloc_pages(1)
                        buffer_pages += 1
                meter.charge("buffer_store")
                instructions.append(insn)
                pos = insn.end
        except DecodeError as exc:
            raise RejectionError(
                f"disassembly failed: {exc}", stage="disasm"
            ) from exc
        return instructions, buffer_pages

    def run(self, raw: bytes) -> DisassemblyResult:
        """Full stage: parse, page-split check, disassemble, validate."""
        image = self.parse_elf(raw)
        self.check_page_separation(image)
        return self.disassemble(image)

    def run_streamed(self, raw: bytes, scan: StreamScan | None) -> DisassemblyResult:
        """:meth:`run` reusing a speculative streamed *scan* when safe.

        The scan was produced against bytes decrypted straight off the
        channel, before the exact ELF parse; it is only adopted when the
        parsed image has exactly one text section whose bytes equal what
        the scan decoded and the scan completed without error.  Everything
        else — decode errors (their message and charge sequence must be
        bit-exact), multi-section images, header/extent mismatches, fault
        plans watching the decoder — falls back to the phased stage.
        """
        image = self.parse_elf(raw)
        self.check_page_separation(image)
        if (
            scan is not None
            and scan.error is None
            and self.optimized
            and not _faults.wants("x86.decoder")
            and len(image.text_sections) == 1
            and image.text_sections[0].data == scan.code
        ):
            return self._disassemble_from_scan(image, scan)
        return self.disassemble(image)
