"""Function recognition in stripped binaries (extension).

EnGarde auto-rejects binaries without symbol tables; the paper notes
(section 6) that as function-recognition techniques "develop and improve
in their accuracy and performance, EnGarde can be enhanced to even
consider stripped binaries."  This module is that enhancement: a
structural recogniser that recovers function starts from the decoded
instruction stream, good enough for the *structural* policies
(stack-protection, IFCC) which don't need real names.

Three complementary evidence sources:

1. **call targets** — the target of every direct ``callq`` is a function
   entry (ground truth by construction);
2. **prologue idiom** — ``push %rbp; mov %rsp,%rbp`` at a 32-byte bundle
   boundary (our NaCl-style code aligns every function);
3. **jump-table tiles** — runs of 8-byte ``jmpq+nopl`` units are IFCC
   jump-table entries.

Precision matters more than recall for policy soundness: a false
function start would split a real function and could mask violations, so
evidence (2) is only accepted at bundle boundaries that are not already
inside a known extent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..x86 import BUNDLE_SIZE, Instruction, Mem, Reg

__all__ = ["RecognizedFunctions", "recognize_functions"]


@dataclass(frozen=True)
class RecognizedFunctions:
    """Output of the recogniser."""

    starts: tuple[int, ...]          # sorted text-relative offsets
    by_evidence: dict[str, int]      # evidence kind -> count

    def synthetic_names(self) -> dict[int, str]:
        """Offset -> generated name (``fn_0x...``), for the symbol table."""
        return {start: f"fn_{start:#x}" for start in self.starts}


def _is_prologue(insns: list[Instruction], idx: int) -> bool:
    """``push %rbp`` followed by ``mov %rsp,%rbp`` (NOPs transparent)."""
    insn = insns[idx]
    if insn.mnemonic != "push" or not insn.operands:
        return False
    op = insn.operands[0]
    if not (isinstance(op, Reg) and op.num == 5):
        return False
    j = idx + 1
    while j < len(insns) and insns[j].mnemonic in ("nop", "nopl"):
        j += 1
    if j >= len(insns):
        return False
    nxt = insns[j]
    if nxt.mnemonic != "mov" or len(nxt.operands) != 2:
        return False
    src, dst = nxt.operands
    return (
        isinstance(src, Reg) and isinstance(dst, Reg)
        and src.num == 4 and dst.num == 5 and src.bits == 64
    )


def _is_table_entry(insns: list[Instruction], idx: int) -> bool:
    """``jmpq rel32`` (5 bytes) + ``nopl`` (3 bytes): one 8-byte tile."""
    insn = insns[idx]
    if not (insn.is_direct_jump and insn.length == 5 and insn.offset % 8 == 0):
        return False
    if idx + 1 >= len(insns):
        return False
    pad = insns[idx + 1]
    return pad.mnemonic == "nopl" and pad.length == 3


def recognize_functions(
    instructions: list[Instruction],
    entry: int = 0,
) -> RecognizedFunctions:
    """Recover function starts from a decoded, symbol-less text section."""
    starts: set[int] = {entry}
    evidence = {"entry": 1, "call-target": 0, "prologue": 0, "jump-table": 0}
    offsets = {insn.offset for insn in instructions}

    # 1. direct call targets
    for insn in instructions:
        if insn.is_direct_call and insn.target in offsets:
            if insn.target not in starts:
                starts.add(insn.target)
                evidence["call-target"] += 1

    # 3. jump-table tiles (before prologue scan: tiles are bundle-dense)
    for idx, insn in enumerate(instructions):
        if _is_table_entry(instructions, idx) and insn.offset not in starts:
            starts.add(insn.offset)
            evidence["jump-table"] += 1

    # 2. bundle-aligned prologues not already inside a one-bundle radius
    #    of a known start (conservative: favour precision)
    for idx, insn in enumerate(instructions):
        if insn.offset % BUNDLE_SIZE:
            continue
        if insn.offset in starts:
            continue
        if _is_prologue(instructions, idx):
            starts.add(insn.offset)
            evidence["prologue"] += 1

    return RecognizedFunctions(
        starts=tuple(sorted(starts)), by_evidence=evidence
    )
