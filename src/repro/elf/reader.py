"""ELF64 reader with EnGarde's format validation.

Implements the checks from the paper's "Binary Disassembly" section: "the
loader checks its header to verify that the executable is correctly
formatted.  The checks include checking the signature as well as the ELF
class of the executable."  On top of that it enforces EnGarde's stated
requirements: 64-bit, position-independent (``ET_DYN``), and carrying a
symbol table (stripped binaries are auto-rejected, section 6).

The parsed :class:`ElfImage` exposes exactly what the in-enclave pipeline
consumes: text/data section bytes and addresses, the symbol list, and the
relocation table located through ``.dynamic`` (``DT_RELA``/``DT_RELASZ``/
``DT_RELAENT``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ElfError
from ..faults.hooks import DROP, fault_hook
from .constants import (
    DT_NULL, DT_RELA, DT_RELAENT, DT_RELASZ,
    ELF_MAGIC, ELFCLASS64, ELFDATA2LSB, EM_X86_64, ET_DYN,
    PT_DYNAMIC, PT_LOAD, R_X86_64_RELATIVE,
    SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE,
    SHT_DYNAMIC, SHT_NOBITS, SHT_PROGBITS, SHT_RELA, SHT_STRTAB, SHT_SYMTAB,
    STT_FUNC, STT_OBJECT,
)
from .structs import Dyn, Ehdr, Phdr, Rela, Shdr, Sym

__all__ = ["ElfImage", "Section", "Symbol", "read_elf"]


@dataclass(frozen=True)
class Section:
    """A parsed section with its raw bytes (empty for SHT_NOBITS)."""

    name: str
    sh_type: int
    flags: int
    vaddr: int
    offset: int
    size: int
    data: bytes

    @property
    def is_text(self) -> bool:
        return bool(self.flags & SHF_EXECINSTR) and self.sh_type == SHT_PROGBITS

    @property
    def is_writable_data(self) -> bool:
        return bool(self.flags & SHF_WRITE) and bool(self.flags & SHF_ALLOC)

    @property
    def is_bss(self) -> bool:
        return self.sh_type == SHT_NOBITS


@dataclass(frozen=True)
class Symbol:
    """A parsed symbol-table entry."""

    name: str
    value: int
    size: int
    sym_type: int
    binding: int

    @property
    def is_function(self) -> bool:
        return self.sym_type == STT_FUNC

    @property
    def is_object(self) -> bool:
        return self.sym_type == STT_OBJECT


@dataclass
class ElfImage:
    """A validated, parsed ELF64 PIE image."""

    raw: bytes
    ehdr: Ehdr
    phdrs: list[Phdr]
    sections: list[Section]
    symbols: list[Symbol]
    relocations: list[Rela]
    entry: int

    @property
    def text_sections(self) -> list[Section]:
        return [s for s in self.sections if s.is_text]

    @property
    def data_sections(self) -> list[Section]:
        return [
            s for s in self.sections
            if s.is_writable_data and not s.is_bss and s.sh_type == SHT_PROGBITS
        ]

    @property
    def bss_sections(self) -> list[Section]:
        return [s for s in self.sections if s.is_bss]

    def section(self, name: str) -> Section:
        for s in self.sections:
            if s.name == name:
                return s
        raise ElfError(f"no section named {name!r}")

    def function_symbols(self) -> list[Symbol]:
        return [s for s in self.symbols if s.is_function]

    @property
    def has_symbols(self) -> bool:
        return any(self.symbols)

    @property
    def load_segments(self) -> list[Phdr]:
        return [p for p in self.phdrs if p.p_type == PT_LOAD]

    @property
    def max_vaddr(self) -> int:
        return max((p.p_vaddr + p.p_memsz for p in self.load_segments), default=0)


def _cstr(blob: bytes, offset: int) -> str:
    end = blob.index(b"\x00", offset)
    return blob[offset:end].decode()


def read_elf(raw) -> ElfImage:
    """Parse and validate an ELF64 image, raising :class:`ElfError` on any
    malformation EnGarde is specified to reject.

    *raw* may be ``bytes`` or a ``memoryview`` (e.g. a zero-copy view
    into a shared-memory arena slot); section payloads are sliced from
    it without copying either way."""
    raw = fault_hook("elf.reader", raw, error=ElfError)
    if raw is DROP:
        raise ElfError("[fault:elf.reader:drop] image vanished before parsing")
    ehdr = Ehdr.unpack(raw)

    # -- the paper's header checks ----------------------------------------
    if ehdr.e_ident[:4] != ELF_MAGIC:
        raise ElfError("bad ELF signature")
    if ehdr.e_ident[4] != ELFCLASS64:
        raise ElfError("not a 64-bit ELF (EnGarde supports x86-64 only)")
    if ehdr.e_ident[5] != ELFDATA2LSB:
        raise ElfError("not little-endian")
    if ehdr.e_machine != EM_X86_64:
        raise ElfError(f"unexpected machine {ehdr.e_machine}")
    if ehdr.e_type != ET_DYN:
        raise ElfError("not a position-independent executable (ET_DYN)")
    if ehdr.e_phnum == 0:
        raise ElfError("no program headers")
    if ehdr.e_shnum == 0:
        raise ElfError("no section headers")

    if ehdr.e_phoff + ehdr.e_phnum * Phdr.SIZE > len(raw):
        raise ElfError("program header table extends past end of file")
    phdrs = [
        Phdr.unpack(raw, ehdr.e_phoff + i * Phdr.SIZE) for i in range(ehdr.e_phnum)
    ]

    if ehdr.e_shoff + ehdr.e_shnum * Shdr.SIZE > len(raw):
        raise ElfError("section header table extends past end of file")
    shdrs = [
        Shdr.unpack(raw, ehdr.e_shoff + i * Shdr.SIZE) for i in range(ehdr.e_shnum)
    ]
    if ehdr.e_shstrndx >= len(shdrs):
        raise ElfError("bad section-name string table index")
    shstr = shdrs[ehdr.e_shstrndx]
    # String tables are tiny; materialize them so name lookups work the
    # same whether *raw* is bytes or a zero-copy memoryview.
    shstr_blob = bytes(raw[shstr.sh_offset:shstr.sh_offset + shstr.sh_size])

    sections: list[Section] = []
    for sh in shdrs:
        if sh.sh_name >= len(shstr_blob) and sh.sh_type != 0:
            raise ElfError("section name out of range")
        name = _cstr(shstr_blob, sh.sh_name) if shstr_blob else ""
        if sh.sh_type == SHT_NOBITS:
            data = b""
        else:
            if sh.sh_offset + sh.sh_size > len(raw):
                raise ElfError(f"section {name} extends past end of file")
            data = raw[sh.sh_offset:sh.sh_offset + sh.sh_size]
        sections.append(
            Section(
                name=name, sh_type=sh.sh_type, flags=sh.sh_flags,
                vaddr=sh.sh_addr, offset=sh.sh_offset, size=sh.sh_size, data=data,
            )
        )

    # -- symbols -----------------------------------------------------------
    symbols: list[Symbol] = []
    for idx, sh in enumerate(shdrs):
        if sh.sh_type != SHT_SYMTAB:
            continue
        if sh.sh_link >= len(shdrs) or shdrs[sh.sh_link].sh_type != SHT_STRTAB:
            raise ElfError(".symtab has no linked string table")
        strtab_sh = shdrs[sh.sh_link]
        strtab = bytes(
            raw[strtab_sh.sh_offset:strtab_sh.sh_offset + strtab_sh.sh_size]
        )
        count = sh.sh_size // Sym.SIZE
        for i in range(1, count):  # skip the null symbol
            sym = Sym.unpack(raw, sh.sh_offset + i * Sym.SIZE)
            if sym.st_name >= len(strtab):
                raise ElfError("symbol name out of range")
            symbols.append(
                Symbol(
                    name=_cstr(strtab, sym.st_name),
                    value=sym.st_value,
                    size=sym.st_size,
                    sym_type=sym.type,
                    binding=sym.binding,
                )
            )

    # -- relocations via .dynamic (DT_RELA / DT_RELASZ / DT_RELAENT) -------
    relocations: list[Rela] = []
    dyn_phdr = next((p for p in phdrs if p.p_type == PT_DYNAMIC), None)
    if dyn_phdr is not None:
        if dyn_phdr.p_offset + dyn_phdr.p_filesz > len(raw):
            raise ElfError("PT_DYNAMIC extends past end of file")
        tags: dict[int, int] = {}
        pos = dyn_phdr.p_offset
        end = dyn_phdr.p_offset + dyn_phdr.p_filesz
        while pos + Dyn.SIZE <= end:
            entry = Dyn.unpack(raw, pos)
            pos += Dyn.SIZE
            if entry.d_tag == DT_NULL:
                break
            tags[entry.d_tag] = entry.d_val
        if DT_RELA in tags:
            rela_vaddr = tags[DT_RELA]
            rela_size = tags.get(DT_RELASZ, 0)
            entsize = tags.get(DT_RELAENT, Rela.SIZE)
            if entsize != Rela.SIZE:
                raise ElfError(f"unsupported relocation entry size {entsize}")
            rela_off = _vaddr_to_offset(phdrs, rela_vaddr)
            if rela_off is None or rela_off + rela_size > len(raw):
                raise ElfError("relocation table not mapped by any segment")
            for i in range(rela_size // Rela.SIZE):
                rela = Rela.unpack(raw, rela_off + i * Rela.SIZE)
                if rela.type != R_X86_64_RELATIVE:
                    raise ElfError(
                        f"unsupported relocation type {rela.type} "
                        "(static PIE should only carry R_X86_64_RELATIVE)"
                    )
                relocations.append(rela)

    return ElfImage(
        raw=raw, ehdr=ehdr, phdrs=phdrs, sections=sections,
        symbols=symbols, relocations=relocations, entry=ehdr.e_entry,
    )


def _vaddr_to_offset(phdrs: list[Phdr], vaddr: int) -> int | None:
    for p in phdrs:
        if p.p_type == PT_LOAD and p.p_vaddr <= vaddr < p.p_vaddr + p.p_filesz:
            return p.p_offset + (vaddr - p.p_vaddr)
    return None
