"""ELF64 image writer: statically-linked position-independent executables.

Produces the exact binary format the paper's prototype consumes: 64-bit
ELF, ``ET_DYN`` (PIE), statically linked, code and data in separate
page-aligned ``PT_LOAD`` segments (EnGarde rejects pages with mixed code
and data), full symbol table (EnGarde auto-rejects stripped binaries), and
``R_X86_64_RELATIVE`` relocations reachable through ``PT_DYNAMIC`` /
``DT_RELA`` as the in-enclave loader expects.

File layout::

    0x0000  Ehdr + 3 Phdrs
    0x1000  .text                (PT_LOAD  R+X, vaddr 0x1000)
    D       .rela.dyn .dynamic .data        (PT_LOAD  R+W)
            .bss (vaddr-only, memsz > filesz)
            .symtab .strtab .shstrtab       (not loaded)
            section header table
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ElfError
from .constants import (
    DT_DEBUG, DT_FLAGS, DT_NULL, DT_RELA, DT_RELAENT, DT_RELASZ, DF_PIE_FLAG,
    ELF_MAGIC, ELFCLASS64, ELFDATA2LSB, ELFOSABI_SYSV, EM_X86_64, ET_DYN,
    EV_CURRENT, PAGE_SIZE, PF_R, PF_W, PF_X, PT_DYNAMIC, PT_LOAD,
    R_X86_64_RELATIVE, SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE, SHN_UNDEF,
    SHT_DYNAMIC, SHT_NOBITS, SHT_NULL, SHT_PROGBITS, SHT_RELA, SHT_STRTAB,
    SHT_SYMTAB, STB_GLOBAL, STB_LOCAL, STT_FUNC, STT_NOTYPE, STT_OBJECT,
    TEXT_VADDR,
)
from .structs import Dyn, Ehdr, Phdr, Rela, Shdr, Sym

__all__ = ["ElfSymbol", "Layout", "write_elf", "DYNAMIC_ENTRY_COUNT"]

#: fixed .dynamic contents: RELA, RELASZ, RELAENT, FLAGS, DEBUG, NULL
DYNAMIC_ENTRY_COUNT = 6


def _align(value: int, boundary: int) -> int:
    return (value + boundary - 1) & ~(boundary - 1)


@dataclass(frozen=True)
class ElfSymbol:
    """A symbol to place in .symtab.

    *vaddr* is the final virtual address (the linker computes it via
    :class:`Layout` before calling :func:`write_elf`).
    """

    name: str
    vaddr: int
    size: int
    kind: str = "func"      # "func" | "object" | "notype"
    section: str = "text"   # "text" | "data" | "bss" | "abs"
    binding: str = "global"  # "global" | "local"


@dataclass(frozen=True)
class Layout:
    """Virtual-address layout shared by the linker and the writer.

    The linker needs final addresses *before* emitting the image (rel32
    patches, relocation addends), so layout is a pure function of the
    component sizes.
    """

    text_vaddr: int
    text_size: int
    rela_vaddr: int
    rela_size: int
    dynamic_vaddr: int
    dynamic_size: int
    data_vaddr: int
    data_size: int
    bss_vaddr: int
    bss_size: int

    @classmethod
    def compute(
        cls, text_size: int, n_relocs: int, data_size: int, bss_size: int
    ) -> "Layout":
        text_vaddr = TEXT_VADDR
        seg2 = _align(text_vaddr + text_size, PAGE_SIZE)
        rela_size = n_relocs * Rela.SIZE
        dynamic_size = DYNAMIC_ENTRY_COUNT * Dyn.SIZE
        rela_vaddr = seg2
        dynamic_vaddr = rela_vaddr + rela_size
        data_vaddr = _align(dynamic_vaddr + dynamic_size, 16)
        bss_vaddr = _align(data_vaddr + data_size, 16)
        return cls(
            text_vaddr=text_vaddr, text_size=text_size,
            rela_vaddr=rela_vaddr, rela_size=rela_size,
            dynamic_vaddr=dynamic_vaddr, dynamic_size=dynamic_size,
            data_vaddr=data_vaddr, data_size=data_size,
            bss_vaddr=bss_vaddr, bss_size=bss_size,
        )

    @property
    def data_segment_vaddr(self) -> int:
        return self.rela_vaddr

    @property
    def data_segment_filesz(self) -> int:
        return self.data_vaddr + self.data_size - self.rela_vaddr

    @property
    def data_segment_memsz(self) -> int:
        return self.bss_vaddr + self.bss_size - self.rela_vaddr


class _StrTab:
    """Incremental string table builder."""

    def __init__(self) -> None:
        self._blob = bytearray(b"\x00")
        self._index: dict[str, int] = {"": 0}

    def add(self, name: str) -> int:
        if name not in self._index:
            self._index[name] = len(self._blob)
            self._blob += name.encode() + b"\x00"
        return self._index[name]

    def bytes(self) -> bytes:
        return bytes(self._blob)


def write_elf(
    *,
    text: bytes,
    data: bytes,
    bss_size: int,
    symbols: list[ElfSymbol],
    relocations: list[tuple[int, int]],
    entry_vaddr: int,
    layout: Layout | None = None,
) -> bytes:
    """Serialise a PIE ELF64 image.

    *relocations* are ``(slot_vaddr, target_vaddr)`` pairs, emitted as
    ``R_X86_64_RELATIVE`` entries (load-time value = base + target_vaddr).
    """
    layout = layout or Layout.compute(len(text), len(relocations), len(data), bss_size)
    if layout.text_size != len(text) or layout.data_size != len(data):
        raise ElfError("layout does not match the supplied section sizes")
    if not (layout.text_vaddr <= entry_vaddr < layout.text_vaddr + max(len(text), 1)):
        raise ElfError(f"entry point {entry_vaddr:#x} is outside .text")

    # ---- build the pieces ------------------------------------------------
    rela_blob = b"".join(
        Rela(slot, Rela.info(0, R_X86_64_RELATIVE), target).pack()
        for slot, target in relocations
    )
    dynamic_blob = b"".join(
        entry.pack()
        for entry in (
            Dyn(DT_RELA, layout.rela_vaddr),
            Dyn(DT_RELASZ, layout.rela_size),
            Dyn(DT_RELAENT, Rela.SIZE),
            Dyn(DT_FLAGS, DF_PIE_FLAG),
            Dyn(DT_DEBUG, 0),
            Dyn(DT_NULL, 0),
        )
    )
    assert len(rela_blob) == layout.rela_size
    assert len(dynamic_blob) == layout.dynamic_size

    strtab = _StrTab()
    shstrtab = _StrTab()
    section_index = {"text": 1, "rela": 2, "dynamic": 3, "data": 4, "bss": 5}
    kind_map = {"func": STT_FUNC, "object": STT_OBJECT, "notype": STT_NOTYPE}
    binding_map = {"local": STB_LOCAL, "global": STB_GLOBAL}

    sym_entries = [Sym(0, 0, 0, SHN_UNDEF, 0, 0)]  # mandatory null symbol
    # Locals must precede globals (sh_info = index of first global).
    ordered = sorted(symbols, key=lambda s: s.binding != "local")
    first_global = next(
        (i + 1 for i, s in enumerate(ordered) if s.binding != "local"),
        len(ordered) + 1,
    )
    for sym in ordered:
        if sym.kind not in kind_map:
            raise ElfError(f"unknown symbol kind {sym.kind!r} for {sym.name}")
        sym_entries.append(
            Sym(
                st_name=strtab.add(sym.name),
                st_info=Sym.info(binding_map[sym.binding], kind_map[sym.kind]),
                st_other=0,
                st_shndx=section_index.get(sym.section, SHN_UNDEF),
                st_value=sym.vaddr,
                st_size=sym.size,
            )
        )
    symtab_blob = b"".join(s.pack() for s in sym_entries)
    strtab_blob = strtab.bytes()

    # ---- file layout -----------------------------------------------------
    phnum = 3
    text_off = PAGE_SIZE
    if Ehdr.SIZE + phnum * Phdr.SIZE > text_off:
        raise ElfError("headers overflow the first page")
    seg2_off = _align(text_off + len(text), PAGE_SIZE)
    rela_off = seg2_off
    dynamic_off = rela_off + len(rela_blob)
    # Keep file offsets congruent with vaddrs inside the data segment.
    data_off = seg2_off + (layout.data_vaddr - layout.rela_vaddr)
    seg2_filesz = layout.data_segment_filesz
    symtab_off = _align(seg2_off + seg2_filesz, 8)
    strtab_off = symtab_off + len(symtab_blob)
    shstrtab_off = strtab_off + len(strtab_blob)

    # ---- section headers ---------------------------------------------------
    def shdr(name: str, **kw) -> Shdr:
        return Shdr(sh_name=shstrtab.add(name), **kw)

    sections = [
        Shdr(0, SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0),
        shdr(".text", sh_type=SHT_PROGBITS, sh_flags=SHF_ALLOC | SHF_EXECINSTR,
             sh_addr=layout.text_vaddr, sh_offset=text_off, sh_size=len(text),
             sh_link=0, sh_info=0, sh_addralign=32, sh_entsize=0),
        shdr(".rela.dyn", sh_type=SHT_RELA, sh_flags=SHF_ALLOC,
             sh_addr=layout.rela_vaddr, sh_offset=rela_off, sh_size=len(rela_blob),
             sh_link=6, sh_info=0, sh_addralign=8, sh_entsize=Rela.SIZE),
        shdr(".dynamic", sh_type=SHT_DYNAMIC, sh_flags=SHF_ALLOC | SHF_WRITE,
             sh_addr=layout.dynamic_vaddr, sh_offset=dynamic_off,
             sh_size=len(dynamic_blob), sh_link=7, sh_info=0,
             sh_addralign=8, sh_entsize=Dyn.SIZE),
        shdr(".data", sh_type=SHT_PROGBITS, sh_flags=SHF_ALLOC | SHF_WRITE,
             sh_addr=layout.data_vaddr, sh_offset=data_off, sh_size=len(data),
             sh_link=0, sh_info=0, sh_addralign=16, sh_entsize=0),
        shdr(".bss", sh_type=SHT_NOBITS, sh_flags=SHF_ALLOC | SHF_WRITE,
             sh_addr=layout.bss_vaddr, sh_offset=data_off + len(data),
             sh_size=bss_size, sh_link=0, sh_info=0, sh_addralign=16, sh_entsize=0),
        shdr(".symtab", sh_type=SHT_SYMTAB, sh_flags=0,
             sh_addr=0, sh_offset=symtab_off, sh_size=len(symtab_blob),
             sh_link=7, sh_info=first_global, sh_addralign=8, sh_entsize=Sym.SIZE),
        shdr(".strtab", sh_type=SHT_STRTAB, sh_flags=0,
             sh_addr=0, sh_offset=strtab_off, sh_size=len(strtab_blob),
             sh_link=0, sh_info=0, sh_addralign=1, sh_entsize=0),
        shdr(".shstrtab", sh_type=SHT_STRTAB, sh_flags=0,
             sh_addr=0, sh_offset=shstrtab_off, sh_size=0,  # patched below
             sh_link=0, sh_info=0, sh_addralign=1, sh_entsize=0),
    ]
    shstrtab_blob = shstrtab.bytes()
    sections[-1].sh_size = len(shstrtab_blob)
    shoff = _align(shstrtab_off + len(shstrtab_blob), 8)

    # ---- program headers ---------------------------------------------------
    phdrs = [
        Phdr(PT_LOAD, PF_R | PF_X, text_off, layout.text_vaddr, layout.text_vaddr,
             len(text), len(text), PAGE_SIZE),
        Phdr(PT_LOAD, PF_R | PF_W, seg2_off, layout.data_segment_vaddr,
             layout.data_segment_vaddr, seg2_filesz,
             layout.data_segment_memsz, PAGE_SIZE),
        Phdr(PT_DYNAMIC, PF_R | PF_W, dynamic_off, layout.dynamic_vaddr,
             layout.dynamic_vaddr, len(dynamic_blob), len(dynamic_blob), 8),
    ]

    ident = bytearray(16)
    ident[:4] = ELF_MAGIC
    ident[4] = ELFCLASS64
    ident[5] = ELFDATA2LSB
    ident[6] = EV_CURRENT
    ident[7] = ELFOSABI_SYSV
    ehdr = Ehdr(
        e_ident=bytes(ident), e_type=ET_DYN, e_machine=EM_X86_64,
        e_version=EV_CURRENT, e_entry=entry_vaddr, e_phoff=Ehdr.SIZE,
        e_shoff=shoff, e_flags=0, e_ehsize=Ehdr.SIZE,
        e_phentsize=Phdr.SIZE, e_phnum=phnum,
        e_shentsize=Shdr.SIZE, e_shnum=len(sections), e_shstrndx=len(sections) - 1,
    )

    # ---- assemble the file -------------------------------------------------
    blob = bytearray()
    blob += ehdr.pack()
    for ph in phdrs:
        blob += ph.pack()
    blob += b"\x00" * (text_off - len(blob))
    blob += text
    blob += b"\x00" * (seg2_off - len(blob))
    blob += rela_blob
    blob += dynamic_blob
    blob += b"\x00" * (data_off - len(blob))
    blob += data
    blob += b"\x00" * (symtab_off - len(blob))
    blob += symtab_blob
    blob += strtab_blob
    blob += shstrtab_blob
    blob += b"\x00" * (shoff - len(blob))
    for sh in sections:
        blob += sh.pack()
    return bytes(blob)
