"""ELF64 on-disk structures: pack/unpack helpers.

Field names and sizes follow the System V ABI.  Each dataclass round-trips
through ``pack``/``unpack``; the writer and reader share these definitions
so a written image always re-parses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ElfError

__all__ = ["Ehdr", "Phdr", "Shdr", "Sym", "Rela", "Dyn"]

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_SHDR = struct.Struct("<IIQQQQIIQQ")
_SYM = struct.Struct("<IBBHQQ")
_RELA = struct.Struct("<QQq")
_DYN = struct.Struct("<qQ")


@dataclass
class Ehdr:
    """ELF file header (64 bytes)."""

    e_ident: bytes
    e_type: int
    e_machine: int
    e_version: int
    e_entry: int
    e_phoff: int
    e_shoff: int
    e_flags: int
    e_ehsize: int
    e_phentsize: int
    e_phnum: int
    e_shentsize: int
    e_shnum: int
    e_shstrndx: int

    SIZE = _EHDR.size  # 64

    def pack(self) -> bytes:
        return _EHDR.pack(
            self.e_ident, self.e_type, self.e_machine, self.e_version,
            self.e_entry, self.e_phoff, self.e_shoff, self.e_flags,
            self.e_ehsize, self.e_phentsize, self.e_phnum,
            self.e_shentsize, self.e_shnum, self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "Ehdr":
        if len(data) < cls.SIZE:
            raise ElfError("file too small for an ELF header")
        return cls(*_EHDR.unpack_from(data))


@dataclass
class Phdr:
    """Program header (56 bytes)."""

    p_type: int
    p_flags: int
    p_offset: int
    p_vaddr: int
    p_paddr: int
    p_filesz: int
    p_memsz: int
    p_align: int

    SIZE = _PHDR.size  # 56

    def pack(self) -> bytes:
        return _PHDR.pack(
            self.p_type, self.p_flags, self.p_offset, self.p_vaddr,
            self.p_paddr, self.p_filesz, self.p_memsz, self.p_align,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Phdr":
        return cls(*_PHDR.unpack_from(data, offset))


@dataclass
class Shdr:
    """Section header (64 bytes)."""

    sh_name: int
    sh_type: int
    sh_flags: int
    sh_addr: int
    sh_offset: int
    sh_size: int
    sh_link: int
    sh_info: int
    sh_addralign: int
    sh_entsize: int

    SIZE = _SHDR.size  # 64

    def pack(self) -> bytes:
        return _SHDR.pack(
            self.sh_name, self.sh_type, self.sh_flags, self.sh_addr,
            self.sh_offset, self.sh_size, self.sh_link, self.sh_info,
            self.sh_addralign, self.sh_entsize,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Shdr":
        return cls(*_SHDR.unpack_from(data, offset))


@dataclass
class Sym:
    """Symbol table entry (24 bytes)."""

    st_name: int
    st_info: int
    st_other: int
    st_shndx: int
    st_value: int
    st_size: int

    SIZE = _SYM.size  # 24

    @property
    def binding(self) -> int:
        return self.st_info >> 4

    @property
    def type(self) -> int:
        return self.st_info & 0xF

    @staticmethod
    def info(binding: int, sym_type: int) -> int:
        return (binding << 4) | (sym_type & 0xF)

    def pack(self) -> bytes:
        return _SYM.pack(
            self.st_name, self.st_info, self.st_other,
            self.st_shndx, self.st_value, self.st_size,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Sym":
        return cls(*_SYM.unpack_from(data, offset))


@dataclass
class Rela:
    """Relocation entry with addend (24 bytes)."""

    r_offset: int
    r_info: int
    r_addend: int

    SIZE = _RELA.size  # 24

    @property
    def sym(self) -> int:
        return self.r_info >> 32

    @property
    def type(self) -> int:
        return self.r_info & 0xFFFFFFFF

    @staticmethod
    def info(sym: int, rel_type: int) -> int:
        return (sym << 32) | rel_type

    def pack(self) -> bytes:
        return _RELA.pack(self.r_offset, self.r_info, self.r_addend)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Rela":
        return cls(*_RELA.unpack_from(data, offset))


@dataclass
class Dyn:
    """Dynamic-section entry (16 bytes)."""

    d_tag: int
    d_val: int

    SIZE = _DYN.size  # 16

    def pack(self) -> bytes:
        return _DYN.pack(self.d_tag, self.d_val)

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "Dyn":
        return cls(*_DYN.unpack_from(data, offset))
