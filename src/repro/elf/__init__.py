"""ELF64 substrate: the binary format EnGarde's clients ship.

The writer produces statically-linked position-independent ELF64 images
(the only format the paper's prototype accepts); the reader implements
EnGarde's validation checks and exposes text/data sections, the symbol
table, and the ``.dynamic``-reachable relocation table.
"""

from . import constants
from .reader import ElfImage, Section, Symbol, read_elf
from .structs import Dyn, Ehdr, Phdr, Rela, Shdr, Sym
from .writer import DYNAMIC_ENTRY_COUNT, ElfSymbol, Layout, write_elf

__all__ = [
    "constants",
    "read_elf", "ElfImage", "Section", "Symbol",
    "write_elf", "ElfSymbol", "Layout", "DYNAMIC_ENTRY_COUNT",
    "Ehdr", "Phdr", "Shdr", "Sym", "Rela", "Dyn",
]
