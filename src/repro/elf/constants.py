"""ELF64 constants (System V ABI, x86-64 supplement) — the subset we emit."""

from __future__ import annotations

ELF_MAGIC = b"\x7fELF"

# e_ident indices
EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6
EI_OSABI = 7

ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1
ELFOSABI_SYSV = 0

# e_type
ET_DYN = 3   # position-independent executable
ET_EXEC = 2

# e_machine
EM_X86_64 = 62

# Program header types / flags
PT_LOAD = 1
PT_DYNAMIC = 2
PF_X = 1
PF_W = 2
PF_R = 4

# Section header types
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_NOBITS = 8
SHT_DYNAMIC = 6

# Section flags
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# Symbol binding / type
STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3

SHN_UNDEF = 0
SHN_ABS = 0xFFF1

# Dynamic tags
DT_NULL = 0
DT_RELA = 7
DT_RELASZ = 8
DT_RELAENT = 9
DT_DEBUG = 21
DT_FLAGS = 30
DF_PIE_FLAG = 0x08000000  # DF_1_PIE lives in DT_FLAGS_1; we fold it here

# x86-64 relocation types
R_X86_64_NONE = 0
R_X86_64_64 = 1
R_X86_64_RELATIVE = 8

PAGE_SIZE = 0x1000
TEXT_VADDR = 0x1000  # conventional first-page-after-headers load address
