"""In-memory duplex sockets with length-prefixed message framing."""

from __future__ import annotations

import struct
from collections import deque

from ..errors import NetError
from ..faults.hooks import DROP, fault_hook

__all__ = ["SimSocket", "SocketPair"]

_LEN = struct.Struct(">I")
MAX_MESSAGE = 64 * 1024 * 1024  # 64 MiB; larger frames indicate a bug


class SimSocket:
    """One endpoint of an in-memory duplex connection.

    Messages are atomic byte strings.  ``send`` appends to the peer's inbox;
    ``recv`` pops from this endpoint's inbox.  Because the simulation is
    single-threaded and protocol-driven, ``recv`` on an empty inbox is a
    protocol error rather than a blocking wait.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inbox: deque[bytes] = deque()
        self._peer: "SimSocket | None" = None
        self._closed = False
        #: running totals, used by tests asserting what crosses the boundary
        self.bytes_sent = 0
        self.bytes_received = 0

    def _attach(self, peer: "SimSocket") -> None:
        self._peer = peer

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: bytes) -> None:
        """Send one framed message to the peer."""
        if self._closed:
            raise NetError(f"{self.name}: send on closed socket")
        if self._peer is None or self._peer._closed:
            raise NetError(f"{self.name}: peer is closed")
        if len(message) > MAX_MESSAGE:
            raise NetError(f"{self.name}: message of {len(message)} bytes exceeds frame limit")
        # The length prefix is what a real TCP framing layer would add; we
        # keep it so byte accounting matches a wire protocol.  ``join``
        # accepts memoryview payloads without an intermediate copy, so
        # callers may frame straight out of a larger buffer.
        frame = fault_hook("net.sock.send",
                           b"".join((_LEN.pack(len(message)), message)),
                           error=NetError)
        self.bytes_sent += _LEN.size + len(message)
        if frame is DROP:
            return  # lost in transit; the sender already counted it
        self._peer._inbox.append(frame)

    def recv(self) -> bytes:
        """Receive one framed message, verifying the frame header."""
        if self._closed:
            raise NetError(f"{self.name}: recv on closed socket")
        if not self._inbox:
            raise NetError(f"{self.name}: recv would block (no pending message)")
        frame = fault_hook("net.sock.recv", self._inbox.popleft(), error=NetError)
        if frame is DROP:
            raise NetError(
                f"{self.name}: [fault:net.sock.recv:drop] frame lost before receipt"
            )
        if len(frame) < _LEN.size:
            raise NetError(f"{self.name}: corrupt frame (short header)")
        (length,) = _LEN.unpack_from(frame)
        body = frame[_LEN.size:]
        if len(body) != length:
            raise NetError(f"{self.name}: corrupt frame (header {length}, body {len(body)})")
        self.bytes_received += len(frame)
        return body

    def pending(self) -> int:
        """Number of messages waiting to be received."""
        return len(self._inbox)

    def drain(self) -> int:
        """Discard every pending frame; returns how many were dropped.

        Used by the retransmit path: once one record of a stream is bad,
        everything queued behind it belongs to the broken stream and must
        be flushed before the peer resends.
        """
        dropped = len(self._inbox)
        self._inbox.clear()
        return dropped

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._inbox)} pending"
        return f"<SimSocket {self.name}: {state}>"


class SocketPair:
    """A connected pair of :class:`SimSocket` endpoints."""

    def __init__(self, left_name: str = "client", right_name: str = "enclave") -> None:
        self.left = SimSocket(left_name)
        self.right = SimSocket(right_name)
        self.left._attach(self.right)
        self.right._attach(self.left)

    def __iter__(self):
        return iter((self.left, self.right))
