"""In-memory duplex sockets with length-prefixed message framing.

Two in-memory flavours share one wire format:

* :class:`SimSocket` — the original single-threaded, protocol-driven
  endpoint.  ``recv`` on an empty inbox is a protocol error, never a
  wait; the provisioning simulation interleaves both sides explicitly.
* :class:`QueueSocket` — the thread-safe, *blocking* variant the
  inspection daemon serves over: ``recv`` waits (bounded by a timeout)
  for a frame from the handler thread on the other side, and ``close``
  wakes any blocked receiver.  Frame bytes, the 4-byte length prefix,
  and the ``net.sock.send`` / ``net.sock.recv`` fault hooks are
  identical to :class:`SimSocket`, so everything layered above (the
  secure channel, the daemon protocol) cannot tell the two apart.

:mod:`repro.net.tcp` adds a third backend with the same interface over
a real TCP connection.
"""

from __future__ import annotations

import queue
import struct
import threading
from collections import deque

from ..errors import NetError
from ..faults.hooks import DROP, fault_hook

__all__ = ["SimSocket", "SocketPair", "QueueSocket", "queue_pair"]

_LEN = struct.Struct(">I")
MAX_MESSAGE = 64 * 1024 * 1024  # 64 MiB; larger frames indicate a bug


class SimSocket:
    """One endpoint of an in-memory duplex connection.

    Messages are atomic byte strings.  ``send`` appends to the peer's inbox;
    ``recv`` pops from this endpoint's inbox.  Because the simulation is
    single-threaded and protocol-driven, ``recv`` on an empty inbox is a
    protocol error rather than a blocking wait.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inbox: deque[bytes] = deque()
        self._peer: "SimSocket | None" = None
        self._closed = False
        #: running totals, used by tests asserting what crosses the boundary
        self.bytes_sent = 0
        self.bytes_received = 0

    def _attach(self, peer: "SimSocket") -> None:
        self._peer = peer

    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, message: bytes) -> None:
        """Send one framed message to the peer."""
        if self._closed:
            raise NetError(f"{self.name}: send on closed socket")
        if self._peer is None or self._peer._closed:
            raise NetError(f"{self.name}: peer is closed")
        if len(message) > MAX_MESSAGE:
            raise NetError(f"{self.name}: message of {len(message)} bytes exceeds frame limit")
        # The length prefix is what a real TCP framing layer would add; we
        # keep it so byte accounting matches a wire protocol.  ``join``
        # accepts memoryview payloads without an intermediate copy, so
        # callers may frame straight out of a larger buffer.
        frame = fault_hook("net.sock.send",
                           b"".join((_LEN.pack(len(message)), message)),
                           error=NetError)
        self.bytes_sent += _LEN.size + len(message)
        if frame is DROP:
            return  # lost in transit; the sender already counted it
        self._peer._inbox.append(frame)

    def recv(self) -> bytes:
        """Receive one framed message, verifying the frame header."""
        if self._closed:
            raise NetError(f"{self.name}: recv on closed socket")
        if not self._inbox:
            raise NetError(f"{self.name}: recv would block (no pending message)")
        frame = fault_hook("net.sock.recv", self._inbox.popleft(), error=NetError)
        if frame is DROP:
            raise NetError(
                f"{self.name}: [fault:net.sock.recv:drop] frame lost before receipt"
            )
        if len(frame) < _LEN.size:
            raise NetError(f"{self.name}: corrupt frame (short header)")
        (length,) = _LEN.unpack_from(frame)
        body = frame[_LEN.size:]
        if len(body) != length:
            raise NetError(f"{self.name}: corrupt frame (header {length}, body {len(body)})")
        self.bytes_received += len(frame)
        return body

    def pending(self) -> int:
        """Number of messages waiting to be received."""
        return len(self._inbox)

    def drain(self) -> int:
        """Discard every pending frame; returns how many were dropped.

        Used by the retransmit path: once one record of a stream is bad,
        everything queued behind it belongs to the broken stream and must
        be flushed before the peer resends.
        """
        dropped = len(self._inbox)
        self._inbox.clear()
        return dropped

    def close(self) -> None:
        self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._inbox)} pending"
        return f"<SimSocket {self.name}: {state}>"


class SocketPair:
    """A connected pair of :class:`SimSocket` endpoints."""

    def __init__(self, left_name: str = "client", right_name: str = "enclave") -> None:
        self.left = SimSocket(left_name)
        self.right = SimSocket(right_name)
        self.left._attach(self.right)
        self.right._attach(self.left)

    def __iter__(self):
        return iter((self.left, self.right))


#: queue sentinel posted when an endpoint closes (TCP FIN analogue)
_EOF = object()


class QueueSocket:
    """Thread-safe blocking endpoint; the daemon's in-process transport.

    Same framing, limits, and fault hooks as :class:`SimSocket`, but
    ``recv`` blocks until the peer's thread sends (or the timeout runs
    out), and closing either side wakes blocked receivers.  Frames sent
    before a ``close`` remain receivable — matching TCP, where data
    queued ahead of the FIN is still delivered.
    """

    def __init__(self, name: str, *, timeout: float | None = None) -> None:
        self.name = name
        self._inbox: "queue.Queue[object]" = queue.Queue()
        self._peer: "QueueSocket | None" = None
        self._closed = False
        self._timeout = timeout
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0

    def _attach(self, peer: "QueueSocket") -> None:
        self._peer = peer

    @property
    def closed(self) -> bool:
        return self._closed

    def settimeout(self, timeout: float | None) -> None:
        """Default bound for every subsequent :meth:`recv` wait."""
        self._timeout = timeout

    def send(self, message: bytes) -> None:
        """Frame and enqueue one message for the peer's thread."""
        if self._closed:
            raise NetError(f"{self.name}: send on closed socket")
        peer = self._peer
        if peer is None or peer._closed:
            raise NetError(f"{self.name}: peer is closed")
        if len(message) > MAX_MESSAGE:
            raise NetError(f"{self.name}: message of {len(message)} bytes exceeds frame limit")
        frame = fault_hook("net.sock.send",
                           b"".join((_LEN.pack(len(message)), message)),
                           error=NetError)
        self.bytes_sent += _LEN.size + len(message)
        if frame is DROP:
            return  # lost in transit; the sender already counted it
        peer._inbox.put(frame)

    def recv(self, timeout: float | None = None) -> bytes:
        """Block for one framed message; *timeout* overrides the default."""
        if self._closed:
            raise NetError(f"{self.name}: recv on closed socket")
        bound = self._timeout if timeout is None else timeout
        try:
            frame = self._inbox.get(timeout=bound)
        except queue.Empty:
            raise NetError(
                f"{self.name}: recv timed out after {bound}s"
            ) from None
        if frame is _EOF:
            # Re-post so every later recv (and any other blocked thread)
            # also observes the close instead of waiting forever.
            self._inbox.put(_EOF)
            raise NetError(f"{self.name}: connection closed by peer")
        frame = fault_hook("net.sock.recv", frame, error=NetError)
        if frame is DROP:
            raise NetError(
                f"{self.name}: [fault:net.sock.recv:drop] frame lost before receipt"
            )
        if len(frame) < _LEN.size:
            raise NetError(f"{self.name}: corrupt frame (short header)")
        (length,) = _LEN.unpack_from(frame)
        body = frame[_LEN.size:]
        if len(body) != length:
            raise NetError(f"{self.name}: corrupt frame (header {length}, body {len(body)})")
        self.bytes_received += len(frame)
        return body

    def pending(self) -> int:
        """Approximate number of frames waiting (racy by nature)."""
        return self._inbox.qsize()

    def drain(self) -> int:
        """Discard every currently-queued frame; returns how many."""
        dropped = 0
        while True:
            try:
                frame = self._inbox.get_nowait()
            except queue.Empty:
                return dropped
            if frame is _EOF:
                self._inbox.put(_EOF)
                return dropped
            dropped += 1

    def close(self) -> None:
        """Close this endpoint, waking both sides' blocked receivers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Wake our own blocked recv (shutdown path) and deliver EOF to
        # the peer behind anything already queued.
        self._inbox.put(_EOF)
        peer = self._peer
        if peer is not None:
            peer._inbox.put(_EOF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"~{self._inbox.qsize()} pending"
        return f"<QueueSocket {self.name}: {state}>"


def queue_pair(
    left_name: str = "client",
    right_name: str = "daemon",
    *,
    timeout: float | None = None,
) -> tuple[QueueSocket, QueueSocket]:
    """A connected pair of :class:`QueueSocket` endpoints."""
    left = QueueSocket(left_name, timeout=timeout)
    right = QueueSocket(right_name, timeout=timeout)
    left._attach(right)
    right._attach(left)
    return left, right
