"""Real-TCP backend behind the :class:`~repro.net.SimSocket` interface.

The provisioning simulation stays on in-memory sockets, but the
long-lived inspection daemon also serves real clients: this module
speaks the exact same 4-byte big-endian length-prefixed framing over an
OS TCP stream, so :class:`TcpSocket` drops in anywhere a
:class:`~repro.net.sock.SimSocket` or
:class:`~repro.net.sock.QueueSocket` is accepted — including under the
secure channel.  The ``net.sock.send`` / ``net.sock.recv`` fault hooks
fire on every framed message exactly as they do on the in-memory
backends, so the chaos soak covers the TCP paths too.
"""

from __future__ import annotations

import socket
import struct

from ..errors import NetError
from ..faults.hooks import DROP, fault_hook
from .sock import MAX_MESSAGE

__all__ = ["TcpSocket", "TcpListener", "connect_tcp"]

_LEN = struct.Struct(">I")


class TcpSocket:
    """One endpoint of a framed message stream over a real TCP socket."""

    def __init__(
        self,
        sock: socket.socket,
        name: str = "tcp",
        *,
        timeout: float | None = None,
    ) -> None:
        self.name = name
        self._sock = sock
        self._closed = False
        self._sock.settimeout(timeout)
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def settimeout(self, timeout: float | None) -> None:
        self._sock.settimeout(timeout)

    def send(self, message: bytes) -> None:
        """Send one framed message."""
        if self._closed:
            raise NetError(f"{self.name}: send on closed socket")
        if len(message) > MAX_MESSAGE:
            raise NetError(
                f"{self.name}: message of {len(message)} bytes exceeds frame limit"
            )
        frame = fault_hook("net.sock.send",
                           b"".join((_LEN.pack(len(message)), message)),
                           error=NetError)
        self.bytes_sent += _LEN.size + len(message)
        if frame is DROP:
            return  # lost in transit; the sender already counted it
        try:
            self._sock.sendall(frame if isinstance(frame, bytes) else bytes(frame))
        except OSError as exc:
            raise NetError(f"{self.name}: send failed: {exc}") from exc

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise NetError(f"{self.name}: recv timed out") from None
            except OSError as exc:
                raise NetError(f"{self.name}: recv failed: {exc}") from exc
            if not chunk:
                raise NetError(f"{self.name}: connection closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout: float | None = None) -> bytes:
        """Receive one framed message, verifying the frame header.

        The fault hook sees the whole reassembled frame (header
        included), mirroring the in-memory backends, so an injected
        truncate/bitflip is caught by the same header validation.
        """
        if self._closed:
            raise NetError(f"{self.name}: recv on closed socket")
        if timeout is not None:
            self._sock.settimeout(timeout)
        header = self._recv_exact(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > MAX_MESSAGE:
            raise NetError(
                f"{self.name}: announced frame of {length} bytes exceeds frame limit"
            )
        frame = fault_hook("net.sock.recv", header + self._recv_exact(length),
                           error=NetError)
        if frame is DROP:
            raise NetError(
                f"{self.name}: [fault:net.sock.recv:drop] frame lost before receipt"
            )
        if len(frame) < _LEN.size:
            raise NetError(f"{self.name}: corrupt frame (short header)")
        (length,) = _LEN.unpack_from(frame)
        body = frame[_LEN.size:]
        if len(body) != length:
            raise NetError(
                f"{self.name}: corrupt frame (header {length}, body {len(body)})"
            )
        self.bytes_received += len(frame)
        return bytes(body)

    def pending(self) -> int:
        """Unknowable for a kernel stream; reported as 0."""
        return 0

    def drain(self) -> int:
        """Discard whatever the kernel has buffered right now."""
        dropped = 0
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    if not self._sock.recv(65536):
                        break
                except (BlockingIOError, OSError):
                    break
                dropped += 1
        finally:
            self._sock.setblocking(True)
        return dropped

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<TcpSocket {self.name}: {state}>"


class TcpListener:
    """Accepting side of the TCP backend (loopback by default)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def accept(self, timeout: float | None = None) -> TcpSocket:
        """Accept one connection; raises :class:`NetError` on timeout/close."""
        try:
            # close() can race us between these calls — both convert to
            # NetError so an accept loop shuts down without a traceback
            self._sock.settimeout(timeout)
            conn, addr = self._sock.accept()
        except socket.timeout:
            raise NetError("accept timed out") from None
        except OSError as exc:
            raise NetError(f"accept failed: {exc}") from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return TcpSocket(conn, name=f"tcp:{addr[0]}:{addr[1]}")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sock.close()


def connect_tcp(
    host: str, port: int, *, timeout: float | None = 10.0, name: str | None = None
) -> TcpSocket:
    """Dial the daemon; returns a framed :class:`TcpSocket`."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise NetError(f"connect to {host}:{port} failed: {exc}") from exc
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return TcpSocket(sock, name=name or f"tcp:{host}:{port}", timeout=timeout)
