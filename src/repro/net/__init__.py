"""Simulated networking: an in-memory, deterministic duplex socket pair.

The paper's enclave "establishes a socket connection to the client machine".
Real sockets would add nondeterminism and no fidelity — the interesting
behaviour is the framing and the crypto above it — so the reproduction uses
an in-process duplex pipe with length-prefixed message framing.
"""

from .sock import SocketPair, SimSocket

__all__ = ["SocketPair", "SimSocket"]
