"""Simulated and real networking behind one framed-socket interface.

The paper's enclave "establishes a socket connection to the client machine".
The provisioning simulation uses an in-process duplex pipe with
length-prefixed message framing (:class:`SimSocket` / :class:`SocketPair`)
— deterministic and single-threaded.  The long-lived inspection daemon
adds two more backends with identical framing and fault-hook coverage:
:class:`QueueSocket` (thread-safe, blocking, still in-memory — the
hermetic test transport) and :class:`~repro.net.tcp.TcpSocket` (a real
TCP stream, for `repro serve`).
"""

from .sock import QueueSocket, SimSocket, SocketPair, queue_pair
from .tcp import TcpListener, TcpSocket, connect_tcp

__all__ = [
    "SocketPair", "SimSocket",
    "QueueSocket", "queue_pair",
    "TcpSocket", "TcpListener", "connect_tcp",
]
