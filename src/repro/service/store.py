"""Persistent, content-addressed verdict store for the provider fleet.

The in-memory :class:`~repro.service.cache.InspectionCache` makes one
daemon fast *while it lives*; a provider fleet also needs the "judge the
binary once, reuse the attested verdict" economy to survive restarts
and shard churn.  :class:`VerdictStore` is the durable tier:

* **content-addressed layout** — one blob per cache key
  (``(sha256(elf), policy digest[, geometry...])``), filed under the
  sha256 of the joined key, so any number of shards can share one store
  directory without coordination and a rebalanced shard is warm for
  every key it inherits,
* **crash-consistent writes** — every publish goes to a temp file in
  the same directory, is flushed and ``fsync``-ed, then atomically
  ``os.replace``-d into place.  A reader concurrent with a publish (or
  a compaction) sees either the complete old blob, the complete new
  blob, or a clean miss — never a torn read,
* **self-verifying blobs** — each blob carries a magic/version header,
  its own key, the payload length, and a trailing sha256 over
  everything before it.  :meth:`load` re-checks all of it on every
  read; any mismatch (truncation, bitflip, a blob renamed onto the
  wrong key) raises a typed :class:`~repro.errors.StoreError` and the
  blob is discarded — **fail closed: a corrupt blob is a miss plus a
  typed error, never a false verdict hit**,
* **startup recovery** — :meth:`recover` (run by the constructor)
  sweeps the directory, deletes leftover temp files from interrupted
  publishes, and discards every blob that fails validation, so a fleet
  restarted over a crashed store serves only verdicts that verify.

:class:`TieredCache` stacks the existing in-memory LRU on top: memory
first, then the store (promoting hits), with puts written through.  It
is a drop-in :class:`InspectionCache`, so the :class:`BatchInspector`,
the daemon, and the provisioning path pick up persistence without
touching the inspection pipeline.

Like the in-memory caches, the store is provider-side service
infrastructure outside the enclave TCB — it uses :mod:`hashlib` and the
host filesystem, not the from-scratch crypto plane.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from dataclasses import replace
from pathlib import Path

from ..core.report import ComplianceReport
from ..errors import StoreError
from .cache import InspectionCache, ProvisioningVerdictCache

__all__ = [
    "VerdictStore", "TieredCache", "TieredProvisioningVerdictCache",
    "ZERO_STORE",
]

#: blob header: magic, format version, key length, payload length
_BLOB_HEADER = struct.Struct(">4sBHI")
_BLOB_MAGIC = b"EGVS"
_BLOB_VERSION = 1
#: trailing sha256 over header + key + payload
_DIGEST_LEN = 32
#: separator joining key components before hashing/embedding (never
#: appears in hex-digest or decimal key parts)
_KEY_SEP = b"\x1f"

#: the stable, always-present shape of the daemon's STATUS/METRICS
#: ``store`` block when no store is attached — mirrors the
#: ``ZERO_RESILIENCE`` pattern so the schema never changes shape
ZERO_STORE = {
    "attached": False,
    "path": "",
    "blobs": 0,
    "hits": 0,
    "misses": 0,
    "puts": 0,
    "corrupt_discarded": 0,
    "recovered": 0,
    "recovery_discarded": 0,
    "compacted": 0,
}


def _encode_key(key) -> bytes:
    """The joined byte form of a cache key (any tuple of strings)."""
    if isinstance(key, str):
        key = (key,)
    return _KEY_SEP.join(part.encode() for part in key)


class VerdictStore:
    """Durable content-addressed verdict blobs under one directory.

    Parameters
    ----------
    root:
        Store directory (created if missing).  Blobs live under
        ``root/blobs/<xx>/<key-digest>.blob``; temp files share the
        leaf directory so the final rename never crosses filesystems.
    fsync:
        Flush every publish to stable storage before the atomic rename
        (default).  ``False`` trades crash durability for speed in
        tests and benchmarks — atomicity is kept either way.
    capacity:
        Soft blob-count bound enforced by :meth:`compact` (``None`` =
        unbounded; :meth:`put` never blocks on compaction).
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        fsync: bool = True,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise StoreError("store capacity must be >= 1 or None")
        self.root = Path(root)
        self.fsync = fsync
        self.capacity = capacity
        self._blob_dir = self.root / "blobs"
        try:
            self._blob_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"store root unusable: {exc}") from exc
        self._lock = threading.Lock()
        self._tmp_seq = 0
        self._stats = dict(ZERO_STORE)
        self._stats["attached"] = True
        self._stats["path"] = str(self.root)
        self.recover()

    # ------------------------------------------------------------ layout

    def _key_digest(self, key) -> str:
        return hashlib.sha256(_encode_key(key)).hexdigest()

    def _path_for(self, key) -> Path:
        digest = self._key_digest(key)
        return self._blob_dir / digest[:2] / f"{digest}.blob"

    # ------------------------------------------------------------- blobs

    @staticmethod
    def _encode_blob(key_bytes: bytes, payload: bytes) -> bytes:
        body = _BLOB_HEADER.pack(
            _BLOB_MAGIC, _BLOB_VERSION, len(key_bytes), len(payload)
        ) + key_bytes + payload
        return body + hashlib.sha256(body).digest()

    @staticmethod
    def _decode_blob(blob: bytes, *, what: str) -> tuple[bytes, bytes]:
        """(key bytes, payload) — raises typed :class:`StoreError` on any
        torn, truncated, or corrupted blob."""
        if len(blob) < _BLOB_HEADER.size + _DIGEST_LEN:
            raise StoreError(
                f"torn verdict blob {what}: {len(blob)} bytes is shorter "
                f"than the {_BLOB_HEADER.size + _DIGEST_LEN}-byte minimum"
            )
        magic, version, key_len, payload_len = _BLOB_HEADER.unpack_from(blob)
        if magic != _BLOB_MAGIC:
            raise StoreError(
                f"verdict blob {what} has bad magic {magic!r} "
                f"(expected {_BLOB_MAGIC!r})"
            )
        if version != _BLOB_VERSION:
            raise StoreError(
                f"verdict blob {what} has unsupported format version "
                f"{version} (this store writes {_BLOB_VERSION})"
            )
        expected = _BLOB_HEADER.size + key_len + payload_len + _DIGEST_LEN
        if len(blob) != expected:
            raise StoreError(
                f"verdict blob {what} length mismatch: header implies "
                f"{expected} bytes, file carries {len(blob)} (torn write?)"
            )
        body, digest = blob[:-_DIGEST_LEN], blob[-_DIGEST_LEN:]
        if hashlib.sha256(body).digest() != digest:
            raise StoreError(
                f"verdict blob {what} failed its sha256 integrity check"
            )
        off = _BLOB_HEADER.size
        return bytes(blob[off:off + key_len]), bytes(blob[off + key_len:-_DIGEST_LEN])

    # ---------------------------------------------------------------- io

    def put(self, key, wire: bytes) -> None:
        """Publish the report wire bytes for *key* (atomic, idempotent).

        A duplicate publish replaces the blob atomically — concurrent
        readers keep whichever complete version they opened.
        """
        if not isinstance(wire, (bytes, bytearray, memoryview)):
            raise StoreError(
                f"verdict payload must be bytes, got {type(wire).__name__}"
            )
        key_bytes = _encode_key(key)
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = self._encode_blob(key_bytes, bytes(wire))
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        tmp = path.parent / f".{path.stem}.{os.getpid()}.{seq}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            fresh = not path.exists()
            os.replace(tmp, path)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise StoreError(
                f"verdict blob publish failed: {type(exc).__name__}: {exc}"
            ) from exc
        with self._lock:
            self._stats["puts"] += 1
            if fresh:
                self._stats["blobs"] += 1

    def load(self, key) -> bytes | None:
        """The stored report wire for *key*, ``None`` when absent.

        Any validation failure discards the blob and raises a typed
        :class:`StoreError` — the caller decides whether to surface it
        or degrade to a miss (:class:`TieredCache` does the latter).
        """
        path = self._path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self._stats["misses"] += 1
            return None
        except OSError as exc:
            raise StoreError(
                f"verdict blob read failed: {type(exc).__name__}: {exc}"
            ) from exc
        try:
            stored_key, payload = self._decode_blob(blob, what=path.name)
            if stored_key != _encode_key(key):
                raise StoreError(
                    f"verdict blob {path.name} carries a different key than "
                    "it is filed under (misplaced or forged blob)"
                )
        except StoreError:
            self._discard(path)
            raise
        with self._lock:
            self._stats["hits"] += 1
        return payload

    def get(self, key) -> bytes | None:
        """:meth:`load` degraded fail-closed: corruption becomes a miss
        (the blob is still discarded and counted)."""
        try:
            return self.load(key)
        except StoreError:
            return None

    def __contains__(self, key) -> bool:
        return self._path_for(key).exists()

    def __len__(self) -> int:
        with self._lock:
            return self._stats["blobs"]

    def _discard(self, path: Path) -> None:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        with self._lock:
            self._stats["corrupt_discarded"] += 1
            self._stats["blobs"] = max(0, self._stats["blobs"] - 1)

    # ---------------------------------------------------------- recovery

    def recover(self) -> dict:
        """Sweep the directory: drop temp leftovers, validate every blob.

        Returns ``{"kept": n, "discarded": m}``.  Discards are
        unconditional — a blob that cannot prove its own integrity is
        deleted, never served.
        """
        kept = discarded = 0
        for path in sorted(self._blob_dir.rglob("*")):
            if not path.is_file():
                continue
            if path.suffix != ".blob":
                # interrupted publish: the rename never happened
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                discarded += 1
                continue
            try:
                stored_key, _ = self._decode_blob(
                    path.read_bytes(), what=path.name
                )
                if self._key_digest_bytes(stored_key) != path.stem:
                    raise StoreError(
                        f"verdict blob {path.name} is filed under the wrong "
                        "key digest"
                    )
            except (StoreError, OSError):
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
                discarded += 1
                continue
            kept += 1
        with self._lock:
            self._stats["blobs"] = kept
            self._stats["recovered"] = kept
            self._stats["recovery_discarded"] += discarded
        return {"kept": kept, "discarded": discarded}

    @staticmethod
    def _key_digest_bytes(key_bytes: bytes) -> str:
        return hashlib.sha256(key_bytes).hexdigest()

    # -------------------------------------------------------- compaction

    def compact(self, *, max_blobs: int | None = None) -> int:
        """Prune oldest blobs until at most *max_blobs* remain.

        Removal is whole-file deletion, so a reader racing the
        compaction sees either the complete blob or a clean miss.
        Returns the number of blobs removed.
        """
        limit = self.capacity if max_blobs is None else max_blobs
        if limit is None:
            return 0
        if limit < 0:
            raise StoreError("compaction limit must be >= 0")
        entries = []
        for path in self._blob_dir.rglob("*.blob"):
            try:
                entries.append((path.stat().st_mtime_ns, str(path), path))
            except OSError:  # pragma: no cover - racing deletion
                continue
        removed = 0
        if len(entries) > limit:
            entries.sort()
            for _, _, path in entries[: len(entries) - limit]:
                try:
                    path.unlink(missing_ok=True)
                    removed += 1
                except OSError:  # pragma: no cover - racing deletion
                    continue
        if removed:
            with self._lock:
                self._stats["compacted"] += removed
                self._stats["blobs"] = max(0, self._stats["blobs"] - removed)
        return removed

    # ------------------------------------------------------------- stats

    def stats(self) -> dict:
        """JSON-ready counters — same key set as :data:`ZERO_STORE`."""
        with self._lock:
            return dict(self._stats)


# ------------------------------------------------------------------ tiering


class TieredCache(InspectionCache):
    """The in-memory LRU tiered over a :class:`VerdictStore`.

    * :meth:`get` — memory first; on a miss, the store.  A store hit is
      promoted into memory (label-stripped, LRU rules unchanged).  A
      corrupt or non-round-tripping blob is discarded by the store and
      degraded to a miss — the inspection re-runs, it is never served
      a wrong verdict.
    * :meth:`put` — memory plus write-through to the store, so a
      restarted process (or a rebalanced shard sharing the directory)
      is warm from its first request.
    """

    def __init__(self, store: VerdictStore, capacity: int = 1024) -> None:
        super().__init__(capacity)
        self.store = store

    def get(self, key, *, benchmark: str = "") -> ComplianceReport | None:
        report = super().get(key, benchmark=benchmark)
        if report is not None:
            return report
        wire = self.store.get(key)
        if wire is None:
            return None
        try:
            report = ComplianceReport.deserialize(wire)
        except Exception:  # noqa: BLE001 — integrity boundary
            report = None
        if report is None or report.serialize() != wire:
            # a blob that validated its digest but does not round-trip
            # is still refused — fail closed to a re-inspection
            self.store._discard(self.store._path_for(key))
            return None
        super().put(key, report)
        if report.benchmark != benchmark:
            report = replace(report, benchmark=benchmark)
        return report

    def put(self, key, report: ComplianceReport) -> None:
        super().put(key, report)
        if report.benchmark:
            report = replace(report, benchmark="")
        try:
            self.store.put(key, report.serialize())
        except StoreError:
            # durability is best-effort from the cache's point of view;
            # the verdict is already served from memory
            pass

    def tier_stats(self) -> dict:
        """Both tiers' counters in one JSON-ready dict."""
        return {"memory": self.stats().as_dict(), "store": self.store.stats()}


class TieredProvisioningVerdictCache(TieredCache, ProvisioningVerdictCache):
    """Tiered variant of :class:`ProvisioningVerdictCache` — same
    geometry-binding key, same storage semantics, durable tier below."""
