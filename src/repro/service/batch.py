"""Batched, parallel front-end over the sequential :class:`EnGarde` core.

The paper inspects one client binary per provisioning run; a provider
inspecting a fleet wants to amortize.  :class:`BatchInspector` keeps the
inspection pipeline untouched and adds the service layer around it:

* fan-out over ``concurrent.futures`` workers — a **process** pool by
  default because disassembly and policy checking are CPU-bound pure
  Python (threads only help in the degenerate all-cache-hit case),
* a content-addressed :class:`InspectionCache` consulted before any work
  is dispatched, plus in-flight deduplication so a batch containing the
  same bytes twice inspects them once,
* per-binary error isolation: a malformed ELF produces a *rejected
  report* (exactly as ``EnGarde.inspect`` does), an unexpected crash or
  timeout produces an *errored item* — neither kills the batch,
* deterministic output: results come back in submission order no matter
  which worker finished first.

Workers return ``ComplianceReport.serialize()`` bytes, not rich outcome
objects: the wire form is cheap to pickle and guarantees the batch path
can be compared byte-for-byte against the sequential baseline (the
differential tests do exactly that).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field, replace

from ..core.engarde import EnGarde
from ..core.policy import PolicyRegistry
from ..core.report import ComplianceReport
from .cache import CacheKey, InspectionCache, cache_key

__all__ = ["BatchInspector", "BatchItemResult", "BatchReport", "BatchSummary"]

MODES = ("process", "thread", "serial")


# ----------------------------------------------------------------- workers

_WORKER_ENGARDE: EnGarde | None = None


def _init_worker(policies: PolicyRegistry) -> None:
    """Build one EnGarde per worker process (policies travel once)."""
    global _WORKER_ENGARDE
    _WORKER_ENGARDE = EnGarde(policies)


def _pool_inspect(raw_elf: bytes) -> bytes:
    return _WORKER_ENGARDE.inspect(raw_elf, benchmark="").report.serialize()


def _fresh_inspect(policies: PolicyRegistry, raw_elf: bytes) -> bytes:
    """Thread-mode task: a fresh EnGarde per call (CycleMeter phase
    bookkeeping is not shareable across concurrent inspections)."""
    return EnGarde(policies).inspect(raw_elf, benchmark="").report.serialize()


# ----------------------------------------------------------------- results


@dataclass(frozen=True)
class BatchItemResult:
    """Verdict (or failure) for one submitted binary."""

    index: int
    label: str
    report: ComplianceReport | None
    error: str | None = None
    #: how the verdict was obtained
    source: str = "inspected"        # inspected | cache | dedup | error

    @property
    def accepted(self) -> bool:
        return self.report is not None and self.report.compliant

    @property
    def cache_hit(self) -> bool:
        return self.source == "cache"


@dataclass
class BatchSummary:
    """Throughput and cache accounting for one batch."""

    total: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    inspected: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    mode: str = "process"
    cache: dict = field(default_factory=dict)

    @property
    def binaries_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "inspected": self.inspected,
            "wall_seconds": round(self.wall_seconds, 4),
            "binaries_per_second": round(self.binaries_per_second, 2),
            "workers": self.workers,
            "mode": self.mode,
            "cache": dict(self.cache),
        }


@dataclass
class BatchReport:
    """Everything one :meth:`BatchInspector.inspect_batch` call produced."""

    results: list[BatchItemResult]
    summary: BatchSummary

    def to_json(self, *, indent: int | None = 2) -> str:
        payload = {
            "summary": self.summary.as_dict(),
            "results": [
                {
                    "index": r.index,
                    "label": r.label,
                    "accepted": r.accepted,
                    "source": r.source,
                    "error": r.error,
                    "report": r.report.serialize().decode() if r.report else None,
                }
                for r in self.results
            ],
        }
        return json.dumps(payload, indent=indent)


# --------------------------------------------------------------- inspector


class BatchInspector:
    """Inspect fleets of binaries in parallel, with verdict memoization.

    Parameters
    ----------
    policies:
        The agreed policy set; folded into every cache key.
    workers:
        Pool size for ``process``/``thread`` modes (default: ``os.cpu_count()``
        capped at 8).
    mode:
        ``"process"`` (default, real parallelism for the CPU-bound
        pipeline), ``"thread"`` (useful when the cache absorbs most
        requests), or ``"serial"`` (no pool — the differential baseline).
    cache:
        An :class:`InspectionCache` to share across inspectors, ``None``
        to create a private one, or ``False`` to disable caching.
    timeout:
        Per-binary seconds to wait for a pooled verdict, measured from
        when the batch starts collecting that binary's result; ``None``
        waits forever.  Ignored in ``serial`` mode.
    """

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        workers: int | None = None,
        mode: str = "process",
        cache: InspectionCache | None | bool = None,
        cache_capacity: int = 1024,
        timeout: float | None = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.policies = policies
        self.mode = mode
        self.timeout = timeout
        if workers is None:
            import os

            workers = min(os.cpu_count() or 1, 8)
        self.workers = 1 if mode == "serial" else workers
        if cache is False:
            self.cache: InspectionCache | None = None
        elif cache is None or cache is True:
            self.cache = InspectionCache(cache_capacity)
        else:
            self.cache = cache
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._serial_engarde: EnGarde | None = None

    # -------------------------------------------------------------- pool

    def _ensure_executor(self):
        if self._executor is None:
            if self.mode == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.policies,),
                )
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def _submit(self, raw_elf: bytes) -> Future:
        executor = self._ensure_executor()
        if self.mode == "process":
            return executor.submit(_pool_inspect, raw_elf)
        return executor.submit(_fresh_inspect, self.policies, raw_elf)

    def close(self) -> None:
        """Shut the pool down (idempotent; the cache survives)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "BatchInspector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- batch

    def inspect_batch(self, binaries) -> BatchReport:
        """Inspect ``[(label, raw_elf), ...]`` and return ordered results.

        *binaries* may be any iterable of ``(label, bytes)`` pairs; bare
        ``bytes`` items are accepted and labelled by position.
        """
        t0 = time.perf_counter()
        items: list[tuple[str, bytes]] = []
        for i, entry in enumerate(binaries):
            if isinstance(entry, (bytes, bytearray)):
                items.append((f"binary-{i}", bytes(entry)))
            else:
                label, raw = entry
                items.append((str(label), raw))

        summary = BatchSummary(
            total=len(items), workers=self.workers, mode=self.mode
        )
        results: list[BatchItemResult | None] = [None] * len(items)

        # Pass 1: answer from the cache; group the rest by content key so
        # duplicate bytes inside one batch are inspected exactly once.
        misses: dict[CacheKey, list[int]] = {}
        keys: list[CacheKey | None] = [None] * len(items)
        for i, (label, raw) in enumerate(items):
            if not isinstance(raw, (bytes, bytearray)):
                results[i] = BatchItemResult(
                    index=i, label=label, report=None, source="error",
                    error=f"expected bytes, got {type(raw).__name__}",
                )
                continue
            key = cache_key(raw, self.policies)
            keys[i] = key
            if self.cache is not None:
                cached = self.cache.get(key, benchmark=label)
                if cached is not None:
                    results[i] = BatchItemResult(
                        index=i, label=label, report=cached, source="cache",
                    )
                    continue
            misses.setdefault(key, []).append(i)

        # Pass 2: run the unique misses (pooled or inline).
        verdicts = (
            self._run_serial(items, misses)
            if self.mode == "serial"
            else self._run_pooled(items, misses)
        )

        # Pass 3: fan verdicts back out to every index that wanted them,
        # in submission order.
        for key, indices in misses.items():
            wire, error = verdicts[key]
            report = (
                ComplianceReport.deserialize(wire) if wire is not None else None
            )
            if report is not None and self.cache is not None:
                self.cache.put(key, report)
            for rank, i in enumerate(indices):
                label = items[i][0]
                if report is None:
                    results[i] = BatchItemResult(
                        index=i, label=label, report=None,
                        source="error", error=error,
                    )
                else:
                    results[i] = BatchItemResult(
                        index=i, label=label,
                        report=replace(report, benchmark=label),
                        source="inspected" if rank == 0 else "dedup",
                    )

        final = [r for r in results if r is not None]
        for r in final:
            if r.error is not None:
                summary.errors += 1
            elif r.accepted:
                summary.accepted += 1
            else:
                summary.rejected += 1
            if r.source == "cache":
                summary.cache_hits += 1
            elif r.source == "dedup":
                summary.deduplicated += 1
            elif r.source == "inspected":
                summary.inspected += 1
        summary.wall_seconds = time.perf_counter() - t0
        if self.cache is not None:
            summary.cache = self.cache.stats().as_dict()
        return BatchReport(results=final, summary=summary)

    # ------------------------------------------------------------ drivers

    def _run_serial(self, items, misses):
        """Inline execution — the differential baseline, no pool at all."""
        if self._serial_engarde is None:
            self._serial_engarde = EnGarde(self.policies)
        verdicts: dict[CacheKey, tuple[bytes | None, str | None]] = {}
        for key, indices in misses.items():
            raw = items[indices[0]][1]
            try:
                wire = self._serial_engarde.inspect(
                    raw, benchmark=""
                ).report.serialize()
                verdicts[key] = (wire, None)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                verdicts[key] = (None, f"{type(exc).__name__}: {exc}")
        return verdicts

    def _run_pooled(self, items, misses):
        """Fan unique misses out over the pool; collect with per-binary
        timeout and per-binary exception isolation."""
        futures: dict[CacheKey, Future] = {
            key: self._submit(items[indices[0]][1])
            for key, indices in misses.items()
        }
        verdicts: dict[CacheKey, tuple[bytes | None, str | None]] = {}
        for key, future in futures.items():
            try:
                verdicts[key] = (future.result(timeout=self.timeout), None)
            except FutureTimeoutError:
                future.cancel()
                verdicts[key] = (
                    None, f"inspection exceeded {self.timeout}s timeout",
                )
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                verdicts[key] = (None, f"{type(exc).__name__}: {exc}")
        return verdicts
