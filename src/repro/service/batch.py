"""Batched, parallel front-end over the sequential :class:`EnGarde` core.

The paper inspects one client binary per provisioning run; a provider
inspecting a fleet wants to amortize.  :class:`BatchInspector` keeps the
inspection pipeline untouched and adds the service layer around it:

* fan-out over ``concurrent.futures`` workers — a **process** pool by
  default because disassembly and policy checking are CPU-bound pure
  Python (threads only help in the degenerate all-cache-hit case),
* a content-addressed :class:`InspectionCache` consulted before any work
  is dispatched, plus in-flight deduplication so a batch containing the
  same bytes twice inspects them once,
* per-binary error isolation: a malformed ELF produces a *rejected
  report* (exactly as ``EnGarde.inspect`` does), an unexpected crash or
  timeout produces an *errored item* — neither kills the batch,
* deterministic output: results come back in submission order no matter
  which worker finished first.

On top of that sits the fail-closed resilience layer (all opt-in, all
timed on an injectable clock so tests and the chaos soak are exactly
reproducible):

* **retry with exponential backoff** (``retries`` / ``backoff_base``)
  around each unique inspection,
* a **per-item deadline** (``deadline``) across all of an item's
  attempts — an injected hang burns the budget on the shared clock and
  surfaces as a typed deadline error, never a stuck batch,
* a **quarantine** (``quarantine_threshold``): a binary that keeps
  failing is refused without work until released — and because errors
  are never written to the :class:`InspectionCache`, a later clean retry
  still computes a correct verdict,
* **graceful degradation**: if the process pool dies
  (``BrokenExecutor``), the remaining misses re-run serially in-process
  and the batch still completes,
* a **verdict integrity guard**: worker wire bytes that fail to parse,
  or that do not round-trip byte-identically, become errored items and
  are never cached (the ``service.batch.verdict`` fault hook exercises
  exactly this poisoning attempt).

Workers return ``ComplianceReport.serialize()`` bytes, not rich outcome
objects: the wire form is cheap to pickle and guarantees the batch path
can be compared byte-for-byte against the sequential baseline (the
differential tests do exactly that).

Process mode is **zero-copy by default** (``shared_memory=True``):
binaries are published once into a :class:`~repro.service.shm.SharedArena`
and workers attach memoryviews straight into the ELF reader and the
resumable decoder — only a tiny ticket crosses the pickle boundary per
task.  ``shared_memory=False`` keeps the original pickling submit path
verbatim, frozen as the differential oracle for the zero-copy executor
(see ``benchmarks/bench_slo.py``).

Dispatch granularity is selectable (``scheduler=``): the default
``"per-item"`` submits one future per unique miss — the historical
shape, kept verbatim as the differential oracle — while ``"adaptive"``
routes each miss through :class:`~repro.service.sched.AdaptiveScheduler`:
tiny binaries run inline on the caller thread, small ones pack into
micro-batched executor tasks (one future, a vector of per-binary
tickets and report wires), and huge ones split along their
function-extent table into parallel scans merged to a bit-identical
verdict (:mod:`repro.core.extent`).  Either way every verdict crosses
the same integrity guard, and ``BatchSummary.dispatch`` always carries
the full :data:`~repro.service.sched.ZERO_SCHED` accounting schema.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field, replace

from ..core.engarde import EnGarde
from ..core.extent import inspect_extent_split, scan_extent
from ..core.policy import PolicyRegistry
from ..core.report import ComplianceReport
from ..errors import ArenaError, WorkerCrashError
from ..faults.clock import Clock, SystemClock
from ..faults.hooks import DROP, fault_hook
from . import shm
from .cache import CacheKey, InspectionCache, cache_key
from .sched import SCHEDULERS, ZERO_SCHED, AdaptiveScheduler

__all__ = [
    "BatchInspector", "BatchItemResult", "BatchReport", "BatchSummary",
    "Quarantine", "default_workers",
]

#: ``shared_memory=False`` submissions at or above this size pay two
#: full pickle copies through the pool pipe; the batch warns once and
#: estimates the penalty in ``BatchSummary.dispatch``
PICKLE_WARN_BYTES = 1024 * 1024
#: rough pool-pipe throughput used for that estimate (bytes/second)
_PICKLE_BYTES_PER_SEC = 1e9

MODES = ("process", "thread", "serial")

#: returned by dispatch helpers when a broken pool demands degradation
_DEGRADE = object()


def default_workers() -> int:
    """Pool size when the caller does not pin one.

    Honors the ``REPRO_WORKERS`` environment override (benches and CI
    pin parallelism with it) — validated ``>= 1`` — and otherwise uses
    the machine's CPU count capped at 8.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None and env.strip():
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer >= 1, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return min(os.cpu_count() or 1, 8)


# ----------------------------------------------------------------- workers

_WORKER_ENGARDE: EnGarde | None = None


def _init_worker(policies: PolicyRegistry) -> None:
    """Build one EnGarde per worker process (policies travel once)."""
    global _WORKER_ENGARDE
    _WORKER_ENGARDE = EnGarde(policies)


def _pool_inspect(raw_elf: bytes) -> bytes:
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return _WORKER_ENGARDE.inspect(raw_elf, benchmark="").report.serialize()


def _pool_inspect_shm(ticket: shm.ArenaTicket) -> bytes:
    """Zero-copy worker task: only the tiny ticket crossed the pickle
    boundary.  The memoryview feeds the ELF reader and the decoder
    directly; the verdict returns as the compact frozen report wire."""
    fault_hook("service.batch.worker", error=WorkerCrashError)
    view = shm.attach_view(ticket)
    try:
        return _WORKER_ENGARDE.inspect(view, benchmark="").report.serialize()
    finally:
        view.release()


def _fresh_inspect(policies: PolicyRegistry, raw_elf: bytes) -> bytes:
    """Thread-mode task: a fresh EnGarde per call (CycleMeter phase
    bookkeeping is not shareable across concurrent inspections)."""
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return EnGarde(policies).inspect(raw_elf, benchmark="").report.serialize()


# Micro-batched tasks: one future carries a vector of binaries and
# returns ``(t_begin, t_end, wires)`` — worker-side monotonic stamps so
# the scheduler can split queue wait from work time, and a wire per
# binary where an individual failure becomes an ``("err", text)`` entry
# instead of poisoning its group-mates.  A *whole-group* exception
# (e.g. an injected ``WorkerCrashError``) propagates through the future
# and the parent re-runs the members per-item with full retry
# semantics.


def _inspect_vector(engarde_for, payloads) -> list:
    wires: list = []
    for payload in payloads:
        try:
            wires.append(
                engarde_for().inspect(payload, benchmark="").report.serialize()
            )
        except Exception as exc:  # noqa: BLE001 — per-item isolation
            wires.append(("err", f"{type(exc).__name__}: {exc}"))
    return wires


def _pool_inspect_group_shm(tickets: list) -> tuple:
    t_begin = time.monotonic()
    fault_hook("service.batch.worker", error=WorkerCrashError)
    views = shm.attach_views(tickets)
    try:
        wires = _inspect_vector(lambda: _WORKER_ENGARDE, views)
    finally:
        for view in views:
            view.release()
    return t_begin, time.monotonic(), wires


def _pool_inspect_group(raws: list) -> tuple:
    t_begin = time.monotonic()
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return t_begin, time.monotonic(), _inspect_vector(
        lambda: _WORKER_ENGARDE, raws
    )


def _fresh_inspect_group(policies: PolicyRegistry, raws: list) -> tuple:
    t_begin = time.monotonic()
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return t_begin, time.monotonic(), _inspect_vector(
        lambda: EnGarde(policies), raws
    )


# Extent-scan tasks: one future per extent of a huge binary.  The scan
# is meter-free by construction (repro.core.extent); the parent replays
# the charges during the merge.  Zero-copy path: ONE retained ticket is
# shared by every extent task of the same binary.


def _pool_scan_extent_shm(ticket: shm.ArenaTicket, task: dict):
    fault_hook("service.batch.worker", error=WorkerCrashError)
    view = shm.attach_view(ticket)
    try:
        return scan_extent(view, _WORKER_ENGARDE.policies, task)
    finally:
        view.release()


def _pool_scan_extent(raw_elf: bytes, task: dict):
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return scan_extent(raw_elf, _WORKER_ENGARDE.policies, task)


def _fresh_scan_extent(policies: PolicyRegistry, raw_elf: bytes, task: dict):
    fault_hook("service.batch.worker", error=WorkerCrashError)
    return scan_extent(raw_elf, policies, task)


# -------------------------------------------------------------- quarantine


class Quarantine:
    """Failure ledger: binaries that keep failing get refused, not retried.

    Counts *consecutive* failures per content key; once a key reaches
    *threshold* it is quarantined and subsequent submissions short-circuit
    to an errored result.  A success (after :meth:`release`) resets the
    count — quarantine never contaminates verdicts, it only refuses work.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        self.threshold = threshold
        self._failures: dict[CacheKey, int] = {}
        self._lock = threading.Lock()

    def record_failure(self, key: CacheKey) -> bool:
        """Count one failure; returns True when the key is now quarantined."""
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
        return count >= self.threshold

    def record_success(self, key: CacheKey) -> None:
        self._failures.pop(key, None)

    def is_quarantined(self, key: CacheKey) -> bool:
        return self._failures.get(key, 0) >= self.threshold

    def failures(self, key: CacheKey) -> int:
        return self._failures.get(key, 0)

    def release(self, key: CacheKey) -> None:
        """Forget a key's failures so the next submission runs again."""
        self._failures.pop(key, None)

    def clear(self) -> None:
        self._failures.clear()

    def __len__(self) -> int:
        """Number of currently quarantined keys."""
        return sum(1 for c in self._failures.values() if c >= self.threshold)


# ----------------------------------------------------------------- results


@dataclass(frozen=True)
class BatchItemResult:
    """Verdict (or failure) for one submitted binary."""

    index: int
    label: str
    report: ComplianceReport | None
    error: str | None = None
    #: how the verdict was obtained
    source: str = "inspected"   # inspected | cache | dedup | error | quarantined

    @property
    def accepted(self) -> bool:
        return self.report is not None and self.report.compliant

    @property
    def cache_hit(self) -> bool:
        return self.source == "cache"


#: the stable, always-present shape of ``BatchSummary.resilience`` — a
#: plain batch reports exactly these keys with these idle values
ZERO_RESILIENCE = {
    "retries": 0,
    "retry_attempts": 0,
    "deadline": None,
    "quarantined_items": 0,
    "quarantined_keys": 0,
    "degraded_to_serial": False,
}


@dataclass
class BatchSummary:
    """Throughput and cache accounting for one batch."""

    total: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    inspected: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    mode: str = "process"
    cache: dict = field(default_factory=dict)
    #: retry/quarantine/degradation accounting — ALWAYS present with the
    #: full key set (zeroed when the resilience layer is idle), so the
    #: summary's JSON schema is stable for monitoring consumers
    resilience: dict = field(default_factory=lambda: dict(ZERO_RESILIENCE))
    #: scheduler/dispatch accounting — same always-present contract,
    #: schema pinned by :data:`repro.service.sched.ZERO_SCHED`
    dispatch: dict = field(default_factory=lambda: dict(ZERO_SCHED))

    @property
    def binaries_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        payload = {
            "total": self.total,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "inspected": self.inspected,
            "wall_seconds": round(self.wall_seconds, 4),
            "binaries_per_second": round(self.binaries_per_second, 2),
            "workers": self.workers,
            "mode": self.mode,
            "cache": dict(self.cache),
            "resilience": dict(self.resilience),
            "dispatch": dict(self.dispatch),
        }
        return payload


@dataclass
class BatchReport:
    """Everything one :meth:`BatchInspector.inspect_batch` call produced."""

    results: list[BatchItemResult]
    summary: BatchSummary

    def to_json(self, *, indent: int | None = 2) -> str:
        payload = {
            "summary": self.summary.as_dict(),
            "results": [
                {
                    "index": r.index,
                    "label": r.label,
                    "accepted": r.accepted,
                    "source": r.source,
                    "error": r.error,
                    "report": r.report.serialize().decode() if r.report else None,
                }
                for r in self.results
            ],
        }
        return json.dumps(payload, indent=indent)


# --------------------------------------------------------------- inspector


class BatchInspector:
    """Inspect fleets of binaries in parallel, with verdict memoization.

    Parameters
    ----------
    policies:
        The agreed policy set; folded into every cache key.
    workers:
        Pool size for ``process``/``thread`` modes (default: ``os.cpu_count()``
        capped at 8).
    mode:
        ``"process"`` (default, real parallelism for the CPU-bound
        pipeline), ``"thread"`` (useful when the cache absorbs most
        requests), or ``"serial"`` (no pool — the differential baseline).
    shared_memory:
        In ``process`` mode (default on), publish binaries into a
        :class:`~repro.service.shm.SharedArena` and hand workers
        zero-copy tickets instead of pickling the raw bytes through the
        pool pipe.  ``False`` keeps the original pickling submit path —
        the differential oracle for the zero-copy executor (and the
        safe fallback where ``/dev/shm`` is unavailable).  Ignored in
        ``thread``/``serial`` modes, which never cross a process
        boundary.
    cache:
        An :class:`InspectionCache` to share across inspectors, ``None``
        to create a private one, or ``False`` to disable caching.
    timeout:
        Per-binary seconds to wait for a pooled verdict, measured from
        when the batch starts collecting that binary's result; ``None``
        waits forever.  Ignored in ``serial`` mode.  Pool timeouts are
        final (the worker slot is gone) — they are not retried.
    retries:
        Extra attempts per unique miss after a failed inspection
        (default 0 — identical behaviour to the pre-resilience service).
    backoff_base:
        First retry sleeps ``backoff_base`` seconds on *clock*, doubling
        per subsequent attempt.
    deadline:
        Total per-item seconds across all attempts, measured on *clock*;
        exceeded deadlines surface as typed ``DeadlineExceededError``
        text, and stop further retries.
    quarantine_threshold:
        Consecutive failures before a binary is quarantined; ``None``
        disables the quarantine.
    scheduler:
        ``"per-item"`` (default — one future per unique miss, the
        frozen differential oracle) or ``"adaptive"`` (inline /
        micro-batch / extent-split dispatch per the
        :class:`~repro.service.sched.AdaptiveScheduler` cost model;
        honors the ``REPRO_SCHED_*`` environment knobs).  Ignored in
        ``serial`` mode, which never dispatches.
    clock:
        Time source for backoff/deadline/quarantine decisions — pass a
        :class:`~repro.faults.clock.FakeClock` (shared with the active
        :class:`~repro.faults.plan.FaultPlan`) for deterministic tests.
    """

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        workers: int | None = None,
        mode: str = "process",
        shared_memory: bool = True,
        cache: InspectionCache | None | bool = None,
        cache_capacity: int = 1024,
        timeout: float | None = None,
        retries: int = 0,
        backoff_base: float = 0.05,
        deadline: float | None = None,
        quarantine_threshold: int | None = None,
        clock: Clock | None = None,
        scheduler: str = "per-item",
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        self.policies = policies
        self.mode = mode
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.deadline = deadline
        self.clock = clock or SystemClock()
        self.quarantine = (
            Quarantine(quarantine_threshold)
            if quarantine_threshold is not None
            else None
        )
        if workers is None:
            workers = default_workers()
        self.workers = 1 if mode == "serial" else workers
        self.shared_memory = bool(shared_memory) and mode == "process"
        self.scheduler = scheduler
        #: the cost model is built eagerly so bad REPRO_SCHED_* knobs
        #: fail at construction, mirroring REPRO_WORKERS validation
        self._sched = (
            AdaptiveScheduler(workers=self.workers)
            if scheduler == "adaptive" else None
        )
        #: per-thread EnGarde for the inline lane (daemon handler
        #: threads run inspect_batch concurrently through one inspector)
        self._inline_local = threading.local()
        self._pickle_warned = False
        if cache is False:
            self.cache: InspectionCache | None = None
        elif cache is None or cache is True:
            self.cache = InspectionCache(cache_capacity)
        else:
            self.cache = cache
        self._executor: ProcessPoolExecutor | ThreadPoolExecutor | None = None
        self._serial_engarde: EnGarde | None = None
        self._arena: shm.SharedArena | None = None
        #: tickets whose workers may still be reading (timed-out futures);
        #: released only once the pool has shut down
        self._zombie_tickets: list[shm.ArenaTicket] = []
        #: guards executor/arena lifecycle — inspect_batch may be called
        #: from many daemon threads at once in process mode
        self._lifecycle = threading.RLock()
        #: set when a broken pool forced a fallback to serial execution
        self._degraded = False
        self._retry_attempts = 0
        self._stats_lock = threading.Lock()

    @property
    def degraded(self) -> bool:
        return self._degraded

    # -------------------------------------------------------------- pool

    def _ensure_executor(self):
        with self._lifecycle:
            if self._executor is None:
                if self.mode == "process":
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_init_worker,
                        initargs=(self.policies,),
                    )
                else:
                    self._executor = ThreadPoolExecutor(max_workers=self.workers)
            return self._executor

    def _ensure_arena(self) -> shm.SharedArena:
        with self._lifecycle:
            if self._arena is None or self._arena.closed:
                self._arena = shm.SharedArena()
            return self._arena

    def arena_stats(self) -> dict | None:
        """Lifetime arena counters, or ``None`` before first zero-copy use."""
        with self._lifecycle:
            return self._arena.stats() if self._arena is not None else None

    def _submit(self, raw_elf: bytes) -> Future:
        executor = self._ensure_executor()
        if self.mode == "process":
            return executor.submit(_pool_inspect, raw_elf)
        return executor.submit(_fresh_inspect, self.policies, raw_elf)

    def _teardown_arena(self) -> None:
        """Release straggler tickets and unlink the arena (fail-closed:
        any worker still attached sees tombstoned headers, never reuse)."""
        with self._lifecycle:
            self._zombie_tickets.clear()
            if self._arena is not None:
                self._arena.close()
                self._arena = None

    def close(self) -> None:
        """Shut the pool and the arena down (idempotent; the cache
        survives).  Safe with futures still in flight: the pool drains
        first (``cancel_futures`` drops queued work, running work
        finishes), and only then is the shared memory unlinked — so no
        live worker ever reads a recycled slot."""
        with self._lifecycle:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            self._teardown_arena()

    def __enter__(self) -> "BatchInspector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- batch

    def inspect_batch(self, binaries) -> BatchReport:
        """Inspect ``[(label, raw_elf), ...]`` and return ordered results.

        *binaries* may be any iterable of ``(label, bytes)`` pairs; bare
        ``bytes`` items are accepted and labelled by position.
        """
        t0 = time.perf_counter()
        items: list[tuple[str, bytes]] = []
        for i, entry in enumerate(binaries):
            if isinstance(entry, (bytes, bytearray)):
                items.append((f"binary-{i}", bytes(entry)))
            else:
                label, raw = entry
                # Snapshot mutable buffers once, up front: cache keys,
                # dedup grouping, and shm slot contents must never alias
                # a buffer the caller mutates mid-batch.  (bytes(raw) on
                # an immutable bytes object is a no-copy identity.)
                if isinstance(raw, (bytearray, memoryview)):
                    raw = bytes(raw)
                items.append((str(label), raw))

        summary = BatchSummary(
            total=len(items), workers=self.workers, mode=self.mode
        )
        results: list[BatchItemResult | None] = [None] * len(items)
        quarantined_items = 0

        # Pass 1: answer from the cache; refuse quarantined content; group
        # the rest by content key so duplicate bytes inside one batch are
        # inspected exactly once.
        misses: dict[CacheKey, list[int]] = {}
        keys: list[CacheKey | None] = [None] * len(items)
        for i, (label, raw) in enumerate(items):
            if not isinstance(raw, (bytes, bytearray)):
                results[i] = BatchItemResult(
                    index=i, label=label, report=None, source="error",
                    error=f"expected bytes, got {type(raw).__name__}",
                )
                continue
            key = cache_key(raw, self.policies)
            keys[i] = key
            if self.cache is not None:
                cached = self.cache.get(key, benchmark=label)
                if cached is not None:
                    results[i] = BatchItemResult(
                        index=i, label=label, report=cached, source="cache",
                    )
                    continue
            if self.quarantine is not None and self.quarantine.is_quarantined(key):
                quarantined_items += 1
                results[i] = BatchItemResult(
                    index=i, label=label, report=None, source="quarantined",
                    error=(
                        "QuarantinedError: refused after "
                        f"{self.quarantine.failures(key)} consecutive "
                        "failures (stage=quarantine)"
                    ),
                )
                continue
            misses.setdefault(key, []).append(i)

        # Pass 2: run the unique misses (pooled, adaptive, or inline).
        dispatch = dict(ZERO_SCHED)
        dispatch["scheduler"] = self.scheduler
        if self.mode == "process" and not self.shared_memory:
            # few-huge pickle cliff: every byte crosses the pool pipe
            # twice (submit + fork inheritance is not in play for the
            # payload).  Warn once, and surface the estimated penalty.
            big = sum(
                len(items[idxs[0]][1])
                for idxs in misses.values()
                if len(items[idxs[0]][1]) >= PICKLE_WARN_BYTES
            )
            if big:
                dispatch["pickle_penalty_seconds"] = round(
                    2 * big / _PICKLE_BYTES_PER_SEC, 6
                )
                if not self._pickle_warned:
                    self._pickle_warned = True
                    warnings.warn(
                        f"shared_memory=False with {big} bytes of large "
                        "submissions: each crosses the pool pipe twice "
                        "(estimated penalty "
                        f"{dispatch['pickle_penalty_seconds']}s); enable "
                        "shared_memory for zero-copy dispatch",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        if self.mode == "serial" or self._degraded:
            verdicts = self._run_serial(items, misses)
        elif self.scheduler == "adaptive":
            verdicts = self._run_adaptive(items, misses, dispatch)
        else:
            verdicts = self._run_pooled(items, misses)
            dispatch["futures_submitted"] = len(misses)
        summary.dispatch = dispatch

        # Pass 3: verify verdict integrity, fan verdicts back out to every
        # index that wanted them (in submission order), and memoize —
        # *only* parsed, round-trip-clean verdicts ever reach the cache.
        for key, indices in misses.items():
            wire, error = verdicts[key]
            report = None
            if wire is not None:
                try:
                    wire = fault_hook("service.batch.verdict", wire)
                except Exception as exc:  # noqa: BLE001 — integrity boundary
                    error = (
                        "ServiceError: verdict handling failed "
                        f"(stage=service.batch.verdict): {type(exc).__name__}: {exc}"
                    )
                    wire = None
                if wire is DROP:
                    error = (
                        "ServiceError: [fault:service.batch.verdict:drop] "
                        "verdict lost in the service layer"
                    )
                    wire = None
                else:
                    try:
                        report = ComplianceReport.deserialize(wire)
                    except Exception as exc:  # noqa: BLE001 — integrity boundary
                        error = (
                            "ServiceError: verdict wire corrupted "
                            f"(stage=service.batch.verdict): {type(exc).__name__}: {exc}"
                        )
                    else:
                        if report.serialize() != wire:
                            report = None
                            error = (
                                "ServiceError: verdict failed round-trip "
                                "integrity check (stage=service.batch.verdict)"
                            )
            if self.quarantine is not None:
                if report is None:
                    self.quarantine.record_failure(key)
                else:
                    self.quarantine.record_success(key)
            if report is not None and self.cache is not None:
                self.cache.put(key, report)
            for rank, i in enumerate(indices):
                label = items[i][0]
                if report is None:
                    results[i] = BatchItemResult(
                        index=i, label=label, report=None,
                        source="error", error=error,
                    )
                else:
                    results[i] = BatchItemResult(
                        index=i, label=label,
                        report=replace(report, benchmark=label),
                        source="inspected" if rank == 0 else "dedup",
                    )

        final = [r for r in results if r is not None]
        for r in final:
            if r.error is not None:
                summary.errors += 1
            elif r.accepted:
                summary.accepted += 1
            else:
                summary.rejected += 1
            if r.source == "cache":
                summary.cache_hits += 1
            elif r.source == "dedup":
                summary.deduplicated += 1
            elif r.source == "inspected":
                summary.inspected += 1
        summary.wall_seconds = time.perf_counter() - t0
        if self.cache is not None:
            summary.cache = self.cache.stats().as_dict()
        summary.resilience = self.resilience_stats(
            quarantined_items=quarantined_items
        )
        return BatchReport(results=final, summary=summary)

    def resilience_stats(self, *, quarantined_items: int = 0) -> dict:
        """The retry/quarantine/degradation accounting dict.

        Same key set as :data:`ZERO_RESILIENCE` always — configured-but-
        idle layers report their settings with zeroed activity, so both
        the batch summary and the daemon's METRICS keep a fixed schema.
        """
        return {
            "retries": self.retries,
            "retry_attempts": self._retry_attempts,
            "deadline": self.deadline,
            "quarantined_items": quarantined_items,
            "quarantined_keys": len(self.quarantine) if self.quarantine else 0,
            "degraded_to_serial": self._degraded,
        }

    # ------------------------------------------------------------ drivers

    def _run_serial(self, items, misses):
        """Inline execution — the differential baseline, no pool at all."""
        if self._serial_engarde is None:
            self._serial_engarde = EnGarde(self.policies)
        engarde = self._serial_engarde
        verdicts: dict[CacheKey, tuple[bytes | None, str | None]] = {}
        for key, indices in misses.items():
            raw = items[indices[0]][1]

            def attempt(raw=raw):
                fault_hook("service.batch.worker", error=WorkerCrashError)
                return engarde.inspect(raw, benchmark="").report.serialize()

            verdicts[key] = self._attempt_with_retries(attempt)
        return verdicts

    def _attempt_with_retries(self, attempt):
        """Run one inspection attempt with backoff/deadline bookkeeping."""
        clock = self.clock
        start = clock.time()
        tries = 0
        while True:
            try:
                return (attempt(), None)
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                tries += 1
                error = f"{type(exc).__name__}: {exc}"
                if (
                    self.deadline is not None
                    and clock.time() - start >= self.deadline
                ):
                    return (None, (
                        "DeadlineExceededError: per-item deadline of "
                        f"{self.deadline}s exceeded after {tries} attempt(s); "
                        f"last failure: {error}"
                    ))
                if tries > self.retries:
                    return (None, error)
                with self._stats_lock:
                    self._retry_attempts += 1
                clock.sleep(self.backoff_base * (2 ** (tries - 1)))

    def _run_pooled(self, items, misses):
        """Fan unique misses out over the pool; collect with per-binary
        timeout, retry-with-backoff, and exception isolation.  A broken
        pool (or a refused arena) degrades the remaining misses — and
        all future batches — to serial execution instead of failing the
        batch.

        Zero-copy path (``shared_memory``): each unique miss is
        published into the arena exactly once; retries resubmit the
        same ticket.  A ticket is released as soon as its verdict is
        final — except after a pool *timeout*, where the worker may
        still be reading the slot: those tickets park on the zombie
        list and are only freed once the pool has shut down, so a slot
        is never rewritten under a live reader.
        """
        verdicts: dict[CacheKey, tuple[bytes | None, str | None]] = {}
        pending = dict(misses)
        starts: dict[CacheKey, float] = {}
        tries = {key: 0 for key in misses}
        tickets: dict[CacheKey, shm.ArenaTicket] = {}
        use_shm = self.shared_memory

        def settle(key, *, zombie: bool = False) -> None:
            ticket = tickets.pop(key, None)
            if ticket is None:
                return
            if zombie:
                with self._lifecycle:
                    self._zombie_tickets.append(ticket)
            else:
                arena = self._arena
                if arena is not None:
                    arena.release(ticket)

        def abandon():
            """Fail closed: drop every ticket (in-flight pooled results
            are never consumed past this point) and go serial."""
            for key in list(tickets):
                settle(key, zombie=True)
            remaining = {k: v for k, v in pending.items() if k not in verdicts}
            return self._degrade(items, remaining, verdicts)

        while pending:
            futures: dict[CacheKey, Future] = {}
            for key, indices in pending.items():
                starts.setdefault(key, self.clock.time())
                raw = items[indices[0]][1]
                try:
                    if use_shm:
                        ticket = tickets.get(key)
                        if ticket is None:
                            ticket = self._ensure_arena().publish(raw)
                            tickets[key] = ticket
                        futures[key] = self._ensure_executor().submit(
                            _pool_inspect_shm, ticket
                        )
                    else:
                        futures[key] = self._submit(raw)
                except (BrokenExecutor, ArenaError):
                    return abandon()
            retry_next: dict[CacheKey, list[int]] = {}
            for key, future in futures.items():
                try:
                    verdicts[key] = (future.result(timeout=self.timeout), None)
                    settle(key)
                    continue
                except FutureTimeoutError:
                    future.cancel()
                    # Final: the worker slot is still occupied; retrying
                    # would stack hung work behind a hung worker.  The
                    # hung worker may also still be *reading* the shm
                    # slot — park the ticket until the pool is gone.
                    verdicts[key] = (
                        None, f"inspection exceeded {self.timeout}s timeout",
                    )
                    settle(key, zombie=True)
                    continue
                except BrokenExecutor:
                    return abandon()
                except Exception as exc:  # noqa: BLE001 — isolation boundary
                    error = f"{type(exc).__name__}: {exc}"
                tries[key] += 1
                deadline_hit = (
                    self.deadline is not None
                    and self.clock.time() - starts[key] >= self.deadline
                )
                if deadline_hit:
                    verdicts[key] = (None, (
                        "DeadlineExceededError: per-item deadline of "
                        f"{self.deadline}s exceeded after {tries[key]} "
                        f"attempt(s); last failure: {error}"
                    ))
                    settle(key)
                elif tries[key] > self.retries:
                    verdicts[key] = (None, error)
                    settle(key)
                else:
                    with self._stats_lock:
                        self._retry_attempts += 1
                    retry_next[key] = pending[key]
            if retry_next:
                attempt = min(tries[k] for k in retry_next)
                self.clock.sleep(self.backoff_base * (2 ** (attempt - 1)))
            pending = retry_next
        for key in list(tickets):  # defensive: nothing should remain
            settle(key)
        return verdicts

    # --------------------------------------------------- adaptive dispatch

    def _inline_engarde(self) -> EnGarde:
        """Per-thread engine for the inline lane (CycleMeter phase
        bookkeeping cannot be shared across concurrent inspections)."""
        engarde = getattr(self._inline_local, "engarde", None)
        if engarde is None:
            engarde = EnGarde(self.policies)
            self._inline_local.engarde = engarde
        return engarde

    def _run_adaptive(self, items, misses, dispatch):
        """Route unique misses through the adaptive scheduler's lanes.

        Ordering is chosen for overlap: micro-batch groups are submitted
        first so pool workers chew while the caller thread runs the
        inline lane, then huge binaries extent-split across the same
        pool, and group results are collected last.  Items that error
        *inside* a micro-batch re-run through the frozen per-item path
        with its full retry/deadline semantics, so terminal error text
        is identical between schedulers.  A broken pool degrades exactly
        as the per-item path does: in-flight tickets go to the zombie
        list and every unsettled miss re-runs serially.
        """
        sched = self._sched
        verdicts: dict[CacheKey, tuple[bytes | None, str | None]] = {}
        raw_of = {key: items[indices[0]][1] for key, indices in misses.items()}
        plan = sched.plan([(key, len(raw)) for key, raw in raw_of.items()])
        use_shm = self.shared_memory
        remainder: list[CacheKey] = []

        def degrade_rest(group_state):
            with self._lifecycle:
                for state in group_state:
                    self._zombie_tickets.extend(state["tickets"])
                    state["tickets"] = []
            remaining = {k: v for k, v in misses.items() if k not in verdicts}
            return self._degrade(items, remaining, verdicts)

        # 1. micro-batch groups first: one future per group, per-binary
        #    tickets, a vector of wires back
        group_state: list[dict] = []
        for group in plan.groups:
            raws = [raw_of[k] for k in group]
            tickets: list[shm.ArenaTicket] = []
            try:
                if use_shm:
                    tickets = shm.publish_many(self._ensure_arena(), raws)
                    future = self._ensure_executor().submit(
                        _pool_inspect_group_shm, tickets
                    )
                elif self.mode == "process":
                    future = self._ensure_executor().submit(
                        _pool_inspect_group, raws
                    )
                else:
                    future = self._ensure_executor().submit(
                        _fresh_inspect_group, self.policies, raws
                    )
            except (BrokenExecutor, ArenaError):
                group_state.append(
                    {"keys": group, "future": None, "tickets": tickets}
                )
                return degrade_rest(group_state)
            group_state.append({
                "keys": group, "future": future, "tickets": tickets,
                "bytes": sum(len(r) for r in raws),
                "submitted": time.monotonic(),
            })
        dispatch["futures_submitted"] += len(group_state)

        # 2. inline lane on the caller thread (overlaps with the pool)
        for key in plan.inline:
            raw = raw_of[key]

            def attempt(raw=raw):
                fault_hook("service.batch.worker", error=WorkerCrashError)
                return self._inline_engarde().inspect(
                    raw, benchmark=""
                ).report.serialize()

            t0 = time.monotonic()
            verdicts[key] = self._attempt_with_retries(attempt)
            sched.observe_work(len(raw), time.monotonic() - t0)
            dispatch["inlined"] += 1

        # 3. extent-split lane: huge binaries fan their text section out
        #    across the same pool, one scan future per extent
        for key in plan.split:
            outcome = self._split_one(raw_of[key], dispatch)
            if outcome is _DEGRADE:
                return degrade_rest(group_state)
            verdicts[key] = outcome

        # 4. collect micro-batch groups
        for state in group_state:
            keys, future = state["keys"], state["future"]
            tickets = state["tickets"]
            try:
                t_begin, t_end, wires = future.result(timeout=self.timeout)
            except FutureTimeoutError:
                future.cancel()
                # zombie-ticket handling: the hung worker may still be
                # attached to every slot in this group — park them all
                # until the pool is torn down
                with self._lifecycle:
                    self._zombie_tickets.extend(tickets)
                state["tickets"] = []
                for k in keys:
                    verdicts[k] = (
                        None, f"inspection exceeded {self.timeout}s timeout",
                    )
                continue
            except BrokenExecutor:
                return degrade_rest(group_state)
            except Exception:  # noqa: BLE001 — whole-group crash
                self._release_tickets(tickets)
                state["tickets"] = []
                remainder.extend(keys)
                continue
            received = time.monotonic()
            self._release_tickets(tickets)
            state["tickets"] = []
            if len(wires) != len(keys):  # defensive: torn vector
                remainder.extend(keys)
                continue
            sched.observe_dispatch(
                overhead=(received - state["submitted"]) - (t_end - t_begin),
                queue_wait=t_begin - state["submitted"],
            )
            sched.observe_work(state["bytes"], t_end - t_begin)
            dispatch["micro_batches"] += 1
            for k, wire in zip(keys, wires):
                if isinstance(wire, tuple):  # ("err", text) member
                    remainder.append(k)
                else:
                    verdicts[k] = (wire, None)
                    dispatch["micro_batched"] += 1

        # 5. group members that crashed or erred re-run through the
        #    frozen per-item path (full retry/deadline semantics)
        if remainder:
            rem = {k: misses[k] for k in remainder}
            verdicts.update(self._run_pooled(items, rem))
            dispatch["futures_submitted"] += len(rem)

        snap = sched.snapshot()
        dispatch["queue_wait_seconds"] = round(snap["queue_wait_seconds"], 6)
        dispatch["break_even_seconds"] = round(snap["break_even_seconds"], 6)
        return verdicts

    def _release_tickets(self, tickets) -> None:
        arena = self._arena
        if arena is not None:
            for ticket in tickets:
                arena.release(ticket)

    def _split_one(self, raw, dispatch):
        """Extent-split one huge binary over the pool; fail closed.

        Returns a ``(wire, error)`` verdict or :data:`_DEGRADE`.  The
        zero-copy path publishes **one** ticket shared by every extent
        task.  Any scan failure is final — a typed error, never a
        partial verdict and never a silent serial retry — because the
        remaining scan futures cannot be recalled once dispatched.  The
        ticket joins the zombie list on every non-clean exit, since a
        straggling scan worker may still be attached to the slot.
        """
        engarde = EnGarde(self.policies)
        use_shm = self.shared_memory
        state = {"ticket": None, "zombie": False}

        def run_scans(tasks):
            executor = self._ensure_executor()
            futures = []
            if use_shm:
                ticket = self._ensure_arena().publish(raw)
                state["ticket"] = ticket
                for task in tasks:
                    futures.append(
                        executor.submit(_pool_scan_extent_shm, ticket, task)
                    )
            elif self.mode == "process":
                for task in tasks:
                    futures.append(
                        executor.submit(_pool_scan_extent, raw, task)
                    )
            else:
                for task in tasks:
                    futures.append(
                        executor.submit(
                            _fresh_scan_extent, self.policies, raw, task
                        )
                    )
            dispatch["futures_submitted"] += len(futures)
            scans = []
            try:
                for future in futures:
                    scans.append(future.result(timeout=self.timeout))
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            return scans

        try:
            result = inspect_extent_split(
                engarde, raw, benchmark="", parts=max(2, self.workers),
                run_scans=run_scans,
            )
        except FutureTimeoutError:
            state["zombie"] = True
            return (None, f"inspection exceeded {self.timeout}s timeout")
        except (BrokenExecutor, ArenaError):
            state["zombie"] = True
            return _DEGRADE
        except Exception as exc:  # noqa: BLE001 — fail the verdict closed
            state["zombie"] = True
            return (None, f"{type(exc).__name__}: {exc}")
        finally:
            ticket = state["ticket"]
            if ticket is not None:
                if state["zombie"]:
                    with self._lifecycle:
                        self._zombie_tickets.append(ticket)
                else:
                    self._release_tickets([ticket])
        if result.split:
            dispatch["extent_split"] += 1
            dispatch["extents_scanned"] += result.extents
        else:
            dispatch["split_fallbacks"] += 1
        return (result.outcome.report.serialize(), None)

    def _degrade(self, items, remaining, verdicts):
        """Broken pool: finish the batch serially, stay serial afterwards.

        Fail-closed teardown order: the pool is shut down first (no new
        slot reads can start), then the arena is tombstoned and
        unlinked.  Teardown never rewrites payload bytes, so a worker
        caught mid-read completes with consistent content — and its
        result is discarded anyway, because every remaining miss is
        re-run serially right here."""
        with self._lifecycle:
            self._degraded = True
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            self._teardown_arena()
        verdicts.update(self._run_serial(items, remaining))
        return verdicts
