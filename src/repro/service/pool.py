"""A pool of pre-provisioned EnGarde enclaves for the inspection daemon.

Building an attestable enclave is the expensive part of accepting a
client: ECREATE + measured EADD/EEXTEND of the EnGarde bootstrap, the
client region and heap, EINIT, and an RSA channel keypair.  A long-lived
daemon amortizes all of it by keeping *size* ready-to-attest enclaves
warm; a connection checks one out for its lifetime (the quote must bind
*that* enclave's measurement to *that* connection's channel key) and
returns it at hangup.  An empty pool builds a fresh entry on demand —
counted as a ``miss`` so METRICS shows when the pool is undersized.

All entries live on one simulated :class:`~repro.sgx.SgxMachine`, so a
single quoting enclave (one published device key) covers the whole
daemon — exactly like one physical SGX host.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..core.engarde import EnGarde
from ..core.policy import PolicyRegistry
from ..core.provisioning import ENCLAVE_BASE, _bootstrap_pages
from ..crypto import HmacDrbg
from ..crypto.rsa import RsaPrivateKey, generate_keypair
from ..errors import ServiceError
from ..sgx import HostOS, PAGE_SIZE, QuotingEnclave, SgxMachine, SgxParams
from ..sgx.host import EnclaveRuntime
from ..sgx.isa import Report

__all__ = ["EnclavePool", "PooledEnclave"]


@dataclass
class PooledEnclave:
    """One ready-to-attest enclave plus its channel identity."""

    index: int
    runtime: EnclaveRuntime
    keypair: RsaPrivateKey
    #: EREPORT binding the channel-key fingerprint into the measurement
    report: Report


class EnclavePool:
    """Thread-safe checkout/checkin pool of pre-built enclaves."""

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        size: int = 2,
        rsa_bits: int = 1024,
        heap_pages: int = 128,
        client_pages: int = 256,
        enclave_pages: int = 0x4000,
        concurrency: int = 32,
        params: SgxParams | None = None,
        rng: HmacDrbg | None = None,
        prebuild: bool = True,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.policies = policies
        self.size = size
        self.rsa_bits = rsa_bits
        self.heap_pages = heap_pages
        self.client_pages = client_pages
        self.enclave_pages = enclave_pages
        self.rng = rng or HmacDrbg(b"enclave-pool")
        if params is None:
            # EPC must hold every *concurrently checked-out* enclave, not
            # just the pooled ones: each live connection owns an entry,
            # so size the limit for the daemon's connection ceiling
            # (pages are a limit, not an allocation — big is free).
            per_enclave = client_pages + heap_pages + 16
            params = SgxParams(
                epc_pages=per_enclave * (size + max(concurrency, 2)) + 512,
                heap_initial_pages=heap_pages,
            )
        self.params = params
        self.machine = SgxMachine(self.params)
        self.host = HostOS(self.machine)
        self.quoting_enclave = QuotingEnclave(
            self.machine, self.rng.fork(b"qe")
        )
        self._lock = threading.Lock()
        self._available: deque[PooledEnclave] = deque()
        self._built = 0
        self._checkouts = 0
        self._checkins = 0
        self._misses = 0
        if prebuild:
            self.warm()

    # ------------------------------------------------------------------

    def warm(self) -> None:
        """Build entries until *size* are available (idempotent)."""
        while True:
            with self._lock:
                if len(self._available) >= self.size:
                    return
            entry = self._build()
            with self._lock:
                self._available.append(entry)

    def _build(self) -> PooledEnclave:
        """One ECREATE→EINIT cycle plus channel keygen and EREPORT."""
        with self._lock:
            index = self._built
            self._built += 1
        engarde = EnGarde(self.policies)
        runtime = self.host.build_enclave(
            base=ENCLAVE_BASE,
            size=self.enclave_pages * PAGE_SIZE,
            bootstrap_pages=_bootstrap_pages(engarde),
            heap_pages=self.heap_pages,
            client_pages=self.client_pages,
        )
        self.machine.eenter(runtime.enclave)
        keypair = generate_keypair(
            self.rsa_bits, self.rng.fork(b"pool-%d" % index)
        )
        report = self.machine.ereport(
            runtime.enclave, keypair.public_key.fingerprint()
        )
        return PooledEnclave(
            index=index, runtime=runtime, keypair=keypair, report=report,
        )

    def checkout(self) -> PooledEnclave:
        """Take an enclave for one connection (building on a pool miss)."""
        with self._lock:
            self._checkouts += 1
            if self._available:
                return self._available.popleft()
            self._misses += 1
        return self._build()

    def checkin(self, entry: PooledEnclave) -> None:
        """Return a connection's enclave; surplus entries are torn down.

        The enclave was only ever *attested* — no client content touched
        it — so reuse is safe: every connection still gets a fresh
        session key bound to the entry's attested fingerprint.
        """
        if not isinstance(entry, PooledEnclave):
            raise ServiceError("checkin of a non-pool object")
        with self._lock:
            self._checkins += 1
            if len(self._available) < self.size:
                self._available.append(entry)
                return
        self.machine.eexit(entry.runtime.enclave)
        self.machine.destroy(entry.runtime.enclave)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": self.size,
                "available": len(self._available),
                "built": self._built,
                "checkouts": self._checkouts,
                "checkins": self._checkins,
                "misses": self._misses,
            }
