"""Sharded multi-provider fleet behind one consistent-hash coordinator.

One provider process cannot serve a fleet of tenants; EnGarde's trust
anchor has to scale out without weakening the fail-closed guarantees
the chaos and daemon batteries pin.  This module adds the scale-out
layer:

* :class:`ConsistentHashRing` — a deterministic ring of virtual points
  per shard.  Placement is a pure function of the submission's
  **content digest**, so any coordinator (or any client, offline)
  computes the same owner; removing a shard moves only the keys it
  owned, adding it back restores the original placement exactly,
* :class:`FleetCoordinator` — owns N provider *shards*, each a full
  :class:`~repro.service.daemon.InspectionDaemon` with its own enclave
  pool, :class:`~repro.service.cache.InspectionCache`, and
  :class:`~repro.service.cache.ProvisioningVerdictCache`.  With a
  :class:`~repro.service.store.VerdictStore` attached, every shard's
  caches are tiered over the one shared content-addressed directory —
  a restarted fleet (or a shard inheriting keys after a rebalance) is
  warm from its first request,
* **shard-loss detection and deterministic rebalancing** — a
  submission whose owner shard fails is retried through the
  coordinator: if the shard's daemon is genuinely gone (no longer
  accepting), the shard is marked lost, its ring points are removed,
  and the submission re-routes to the deterministic successor.
  Transient faults (the PR 4 hook vocabulary: socket drops, channel
  bitflips, worker crashes) stay typed errors on a *live* shard — the
  coordinator never invents a verdict and never hangs,
* every delivered verdict is still produced by one warm EnGarde inside
  one shard, so the fleet path stays byte-identical to the serial
  oracle (the differential battery routes the full variant corpus
  through 1- and 4-shard fleets and pins exactly that).

The coordinator speaks to its shards through the real attested client
SDK over the in-process transport — the same HELLO/ATTEST/channel/
SUBMIT path, the same ``net.sock.*`` / ``crypto.channel.*`` /
``service.batch.*`` fault hooks, the same typed-error vocabulary.  No
new hook points.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time

from ..core.policy import PolicyRegistry
from ..core.provisioning import ResilienceConfig
from ..errors import FleetError, ReproError
from ..faults.clock import Clock, SystemClock
from .cache import InspectionCache, ProvisioningVerdictCache
from .client import ClientVerdict, InspectionClient
from .daemon import InspectionDaemon
from .sched import ZERO_SCHED
from .store import (
    ZERO_STORE,
    TieredCache,
    TieredProvisioningVerdictCache,
    VerdictStore,
)

__all__ = ["ConsistentHashRing", "FleetCoordinator", "FleetShard"]

#: virtual points per shard — enough for a few-shard fleet to balance
#: within a small factor while keeping ring edits cheap
DEFAULT_REPLICAS = 64


class ConsistentHashRing:
    """Deterministic consistent hashing of content digests to shard ids.

    Each shard contributes ``replicas`` virtual points, each the first
    8 bytes of ``sha256(b"<shard id>#<replica>")``.  A key's point is
    the first 8 bytes of ``sha256(<content digest>)``; the owner is the
    first shard point at or clockwise after it.  All of it is a pure
    function of the shard ids and the digest — no RNG, no insertion
    order, no wall clock — so placement, loss handling, and recovery
    are exactly reproducible.
    """

    def __init__(self, shard_ids=(), *, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise FleetError("ring replicas must be >= 1")
        self.replicas = replicas
        self._lock = threading.Lock()
        self._ids: set[str] = set()
        #: sorted (point, shard id) pairs — the ring itself
        self._points: list[tuple[int, str]] = []
        for sid in shard_ids:
            self.add(sid)

    @staticmethod
    def _hash(material: bytes) -> int:
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def points_for(self, shard_id: str) -> list[int]:
        """The virtual points *shard_id* contributes (deterministic)."""
        return sorted(
            self._hash(f"{shard_id}#{replica}".encode())
            for replica in range(self.replicas)
        )

    def add(self, shard_id: str) -> None:
        with self._lock:
            if shard_id in self._ids:
                return
            self._ids.add(shard_id)
            for point in self.points_for(shard_id):
                bisect.insort(self._points, (point, shard_id))

    def remove(self, shard_id: str) -> None:
        with self._lock:
            if shard_id not in self._ids:
                return
            self._ids.discard(shard_id)
            self._points = [
                (p, sid) for p, sid in self._points if sid != shard_id
            ]

    def locate(self, content_digest: str) -> str:
        """The owning shard id for a content digest (hex string).

        Raises typed :class:`FleetError` when the ring is empty — an
        unplaceable submission is an error, never a silent drop.
        """
        with self._lock:
            if not self._points:
                raise FleetError(
                    "consistent-hash ring is empty: no live shards remain"
                )
            point = self._hash(content_digest.encode())
            idx = bisect.bisect_right(self._points, (point, "￿"))
            if idx == len(self._points):
                idx = 0  # wrap: clockwise past the top of the ring
            return self._points[idx][1]

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._ids))

    def __contains__(self, shard_id: str) -> bool:
        with self._lock:
            return shard_id in self._ids

    def __len__(self) -> int:
        with self._lock:
            return len(self._ids)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "shards": sorted(self._ids),
                "replicas": self.replicas,
                "points": len(self._points),
            }


class FleetShard:
    """One provider shard: an id, a ring position, and a full daemon."""

    def __init__(self, shard_id: str, index: int, daemon: InspectionDaemon) -> None:
        self.id = shard_id
        self.index = index
        self.daemon = daemon
        self.lost = False
        #: TCP endpoint once :meth:`FleetCoordinator.start_tcp` ran
        self.endpoint: tuple[str, int] | None = None

    def status(self) -> dict:
        doc = self.daemon.status()
        doc["lost"] = self.lost
        return doc


class FleetCoordinator:
    """Consistent-hash front-end over N full provider shards.

    Parameters mirror :class:`InspectionDaemon` where they are passed
    through per shard.  ``store`` may be a :class:`VerdictStore`, a
    directory path (a store is built there), or ``None`` for a purely
    in-memory fleet.

    Thread-safety: :meth:`submit` may be called from any number of
    client threads at once.  Each thread holds its own attested
    :class:`InspectionClient` per shard (the SDK is deliberately not
    thread-safe — one tenant machine per channel), created lazily and
    registered for cleanup at :meth:`stop`.
    """

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        shards: int = 2,
        store: VerdictStore | str | None = None,
        replicas: int = DEFAULT_REPLICAS,
        cache_capacity: int = 4096,
        pool_size: int = 1,
        rsa_bits: int = 768,
        heap_pages: int = 64,
        client_pages: int = 64,
        enclave_pages: int = 0x2000,
        read_timeout: float = 10.0,
        max_connections: int = 64,
        client_timeout: float = 10.0,
        resilience: ResilienceConfig | None = None,
        clock: Clock | None = None,
        inspector_mode: str = "serial",
        workers: int | None = None,
        scheduler: str = "per-item",
    ) -> None:
        if shards < 1:
            raise FleetError(f"fleet needs at least one shard, got {shards}")
        self.policies = policies
        self.clock = clock or SystemClock()
        self.client_timeout = client_timeout
        self.resilience = resilience
        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = VerdictStore(store)
        self.store: VerdictStore | None = store
        self.ring = ConsistentHashRing(replicas=replicas)
        self.shards: dict[str, FleetShard] = {}
        for index in range(shards):
            shard_id = f"shard-{index}"
            if store is not None:
                cache = TieredCache(store, cache_capacity)
                verdict_cache = TieredProvisioningVerdictCache(
                    store, cache_capacity
                )
            else:
                cache = InspectionCache(cache_capacity)
                verdict_cache = ProvisioningVerdictCache(cache_capacity)
            daemon = InspectionDaemon(
                policies,
                cache=cache,
                verdict_cache=verdict_cache,
                pool_size=pool_size,
                rsa_bits=rsa_bits,
                heap_pages=heap_pages,
                client_pages=client_pages,
                enclave_pages=enclave_pages,
                read_timeout=read_timeout,
                max_connections=max_connections,
                inspector_mode=inspector_mode,
                workers=workers,
                scheduler=scheduler,
                shard_id=shard_id,
                shard_index=index,
                fleet_size=shards,
                store=store,
            )
            self.shards[shard_id] = FleetShard(shard_id, index, daemon)
            self.ring.add(shard_id)
        self._local = threading.local()
        self._clients_lock = threading.Lock()
        self._clients: list[InspectionClient] = []
        self._fleet_lock = threading.Lock()
        self._counters = {
            "submissions": 0,
            "reroutes": 0,
            "shards_lost": 0,
            "losses": [],  # shard ids in loss order
        }

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start every shard daemon (idempotent, like the daemons)."""
        for shard in self.shards.values():
            if not shard.lost:
                shard.daemon.start()

    def start_tcp(self, host: str = "127.0.0.1") -> list[tuple[str, str, int]]:
        """Also listen on TCP, one port per shard; returns
        ``[(shard id, host, port), ...]`` for the announce record."""
        endpoints = []
        for sid in sorted(self.shards):
            shard = self.shards[sid]
            bound_host, port = shard.daemon.start_tcp(host, 0)
            shard.endpoint = (bound_host, port)
            endpoints.append((sid, bound_host, port))
        return endpoints

    def stop(self, *, drain: bool = True) -> None:
        """Drain and stop every shard; release per-thread clients."""
        with self._clients_lock:
            clients, self._clients = self._clients, []
        for client in clients:
            try:
                client.close()
            except (ReproError, OSError):  # pragma: no cover - best effort
                pass
        for shard in self.shards.values():
            shard.daemon.stop(drain=drain)
            shard.daemon.inspector.close()

    def __enter__(self) -> "FleetCoordinator":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ placement

    @staticmethod
    def content_digest(raw_elf: bytes) -> str:
        return hashlib.sha256(raw_elf).hexdigest()

    def shard_for(self, raw_elf: bytes) -> str:
        """The owning shard id for this content (deterministic)."""
        return self.ring.locate(self.content_digest(raw_elf))

    # ----------------------------------------------------------- fail-over

    def kill_shard(self, shard_id: str) -> None:
        """Hard-stop one shard's daemon (no drain) — the crash and
        rebalance batteries' trigger.  Detection and ring removal happen
        on the next submission that needs the shard (or explicitly via
        :meth:`detect_losses`)."""
        shard = self._shard(shard_id)
        shard.daemon.stop(drain=False)

    def revive_shard(self, shard_id: str) -> None:
        """Restart a lost shard and return its points to the ring —
        placement for its keys reverts to the original owner, which is
        warm through the shared store."""
        shard = self._shard(shard_id)
        shard.daemon.start()
        with self._fleet_lock:
            shard.lost = False
        self.ring.add(shard_id)

    def detect_losses(self) -> list[str]:
        """Mark every shard whose daemon stopped accepting as lost."""
        lost = []
        for sid in self.ring.ids():
            shard = self.shards[sid]
            if not shard.daemon.accepting:
                self._mark_lost(shard)
                lost.append(sid)
        return lost

    def _shard(self, shard_id: str) -> FleetShard:
        shard = self.shards.get(shard_id)
        if shard is None:
            raise FleetError(f"unknown shard id {shard_id!r}")
        return shard

    def _mark_lost(self, shard: FleetShard) -> None:
        with self._fleet_lock:
            if shard.lost:
                return
            shard.lost = True
            self._counters["shards_lost"] += 1
            self._counters["losses"].append(shard.id)
        self.ring.remove(shard.id)

    # ----------------------------------------------------------- submission

    def _client_for(self, shard: FleetShard) -> InspectionClient:
        """This thread's attested client for *shard* (built lazily)."""
        cache = getattr(self._local, "clients", None)
        if cache is None:
            cache = self._local.clients = {}
        client = cache.get(shard.id)
        if client is None:
            client = InspectionClient(
                self.policies,
                shard.daemon.pool.quoting_enclave.device_public_key,
                shard.daemon.connect_inproc,
                timeout=self.client_timeout,
                resilience=self.resilience,
            )
            cache[shard.id] = client
            with self._clients_lock:
                self._clients.append(client)
        return client

    def submit(self, raw_elf: bytes, label: str = "client") -> ClientVerdict:
        """Route one submission to its owner shard; fail over on loss.

        The returned :class:`ClientVerdict` is exactly what the shard's
        attested channel delivered — a report byte-identical to the
        serial oracle, or a typed fail-closed error.  A dead owner
        (daemon no longer accepting) is marked lost, its ring points
        removed, and the submission re-routes to the deterministic
        successor; a *live* shard's typed error gets exactly one
        same-shard retry over a fresh channel (covering the stale-
        connection window after a revival) and is then returned as-is —
        rerouting cannot make a refused verdict acceptable.
        """
        digest = self.content_digest(raw_elf)
        with self._fleet_lock:
            self._counters["submissions"] += 1
        verdict: ClientVerdict | None = None
        retried: set[str] = set()
        for _ in range(2 * len(self.shards) + 2):
            try:
                sid = self.ring.locate(digest)
            except FleetError as exc:
                return ClientVerdict(
                    label=label, error=f"FleetError: {exc}",
                )
            shard = self.shards[sid]
            verdict = self._client_for(shard).inspect(raw_elf, label)
            if verdict.report is not None:
                return verdict
            if shard.daemon.accepting:
                if sid not in retried:
                    # one same-shard retry: a failed attempt abandons its
                    # channel, so this reconnects fresh — it covers the
                    # stale-connection window after a shard was revived
                    retried.add(sid)
                    continue
                # the shard is alive and a fresh channel still refused:
                # a genuine typed error (fault, quarantine) — fail closed
                return verdict
            self._mark_lost(shard)
            with self._fleet_lock:
                self._counters["reroutes"] += 1
        return verdict if verdict is not None else ClientVerdict(
            label=label, error="FleetError: submission was never attempted",
        )

    # -------------------------------------------------------------- surface

    def live_shards(self) -> tuple[str, ...]:
        return self.ring.ids()

    def status(self) -> dict:
        """Fleet-level health: ring, per-shard STATUS, store, counters."""
        with self._fleet_lock:
            counters = {
                k: (list(v) if isinstance(v, list) else v)
                for k, v in self._counters.items()
            }
        return {
            "fleet_size": len(self.shards),
            "live_shards": list(self.live_shards()),
            "ring": self.ring.as_dict(),
            "counters": counters,
            "shards": {
                sid: shard.status() for sid, shard in sorted(self.shards.items())
            },
            "store": (
                self.store.stats() if self.store is not None
                else dict(ZERO_STORE)
            ),
            "sched": self._sched_totals(),
        }

    def _sched_totals(self) -> dict:
        """Fleet-wide dispatch accounting: per-shard ``sched`` blocks
        summed into one always-present ``ZERO_SCHED``-schema dict (the
        latest break-even estimate wins, matching the daemon rule)."""
        totals = dict(ZERO_SCHED)
        for _, shard in sorted(self.shards.items()):
            block = shard.daemon.sched_info()
            totals["scheduler"] = block["scheduler"]
            for key, value in block.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if key == "break_even_seconds":
                    totals[key] = value
                else:
                    totals[key] = round(totals[key] + value, 6)
        return totals

    def metrics_snapshot(self) -> dict:
        """Per-shard METRICS dumps keyed by shard id, plus fleet status."""
        return {
            "status": self.status(),
            "shards": {
                sid: shard.daemon.metrics_snapshot()
                for sid, shard in sorted(self.shards.items())
            },
        }

    def announce(self) -> dict:
        """The fleet bootstrap record: ring shape plus per-shard
        announces (endpoint, device key, policy digest, geometry)."""
        return {
            "fleet": {
                "size": len(self.shards),
                "replicas": self.ring.replicas,
                "shards": [
                    dict(
                        self.shards[sid].daemon.announce(
                            *(self.shards[sid].endpoint or (None, None))
                        ),
                        shard_id=sid,
                    )
                    for sid in sorted(self.shards)
                ],
            },
        }


# ------------------------------------------------------------------- storms


def run_fleet_storm(
    coordinator: FleetCoordinator,
    corpus,
    *,
    clients: int,
    per_client: int | None = None,
    oracle: dict | None = None,
    max_wall_seconds: float = 300.0,
) -> dict:
    """Drive *clients* concurrent tenants through the coordinator.

    Each client thread submits a rotation slice of *corpus* (all of it
    when ``per_client`` is ``None``) through :meth:`FleetCoordinator.
    submit`.  Returns JSON-ready accounting; when *oracle* maps labels
    to serial report wire bytes, every delivered verdict is checked
    byte-for-byte and divergences are counted (the fleet's differential
    gate).  Shared by ``repro fleet-bench`` and
    ``benchmarks/bench_fleet.py``.
    """
    per_client = len(corpus) if per_client is None else per_client
    results: dict[int, list] = {i: [] for i in range(clients)}
    errors: list[BaseException] = []

    def worker(tid: int) -> None:
        try:
            rotation = corpus[tid % len(corpus):] + corpus[: tid % len(corpus)]
            for label, raw in rotation[:per_client]:
                results[tid].append((label, coordinator.submit(raw, label)))
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"fleet-client-{i}")
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(max_wall_seconds)
    wall = time.perf_counter() - t0
    hung = [t.name for t in threads if t.is_alive()]

    delivered = typed_failures = divergences = 0
    failures: list[tuple[str, str]] = []
    sources: dict[str, int] = {}
    for verdicts in results.values():
        for label, verdict in verdicts:
            sources[verdict.source] = sources.get(verdict.source, 0) + 1
            if verdict.report is not None:
                delivered += 1
                if oracle is not None and verdict.wire != oracle[label]:
                    divergences += 1
                    failures.append((label, "verdict wire diverged"))
            else:
                typed_failures += 1
                failures.append((label, verdict.error or "?"))
    total = sum(len(v) for v in results.values())
    return {
        "clients": clients,
        "per_client": per_client,
        "submissions": total,
        "wall_seconds": round(wall, 4),
        "submissions_per_second": round(total / wall, 2) if wall > 0 else 0.0,
        "delivered": delivered,
        "typed_failures": typed_failures,
        "divergences": divergences,
        "sources": dict(sorted(sources.items())),
        "hung_clients": hung,
        "worker_errors": [f"{type(e).__name__}: {e}" for e in errors],
        "failures": failures[:8],
    }
