"""Adaptive dispatch planning for the batch inspection service.

``BatchInspector`` historically submitted **one executor future per
binary** regardless of size.  That is the right shape only in the
middle of the size spectrum:

* **tiny binaries** pay more for the submit/pickle/wake round-trip than
  for their own inspection — the dispatch overhead dominates;
* **huge binaries** serialize the whole batch behind one worker while
  the other workers idle — the critical path is a single decode+scan.

:class:`AdaptiveScheduler` picks a dispatch plan per submission from a
running size/cost model:

``inline``
    run on the caller thread when the *parallel saving* of dispatching
    (estimated cost × (workers-1)/workers) is below the measured
    dispatch-overhead break-even.  With one worker every miss inlines —
    dispatching can only lose.
``micro-batch``
    pack many small binaries into one executor task targeting
    ``microbatch_bytes`` of payload per task; tickets stay per-binary
    in the :class:`~repro.service.shm.SharedArena` and one task returns
    a vector of frozen report wires.
``extent-split``
    partition one huge binary's text section along its function-extent
    table and decode+scan extents on separate workers
    (:mod:`repro.core.extent`), merging to a bit-identical verdict.

The cost model is deliberately simple and observable: two EMAs (seconds
per payload byte; seconds of per-future overhead) seeded from
environment knobs and updated from every completed future.  All
estimates, decisions, and measurements surface in the always-present
``BatchSummary.dispatch`` block (schema :data:`ZERO_SCHED`), so the
daemon's STATUS/METRICS consumers never need schema probes.

Environment knobs (validated like ``REPRO_WORKERS``):

``REPRO_SCHED_MICROBATCH_BYTES``
    payload target per micro-batch task (default 262144).
``REPRO_SCHED_SPLIT_BYTES``
    text-size threshold above which a binary is considered for
    extent-splitting (default 1048576).
``REPRO_SCHED_BREAKEVEN_US``
    seed estimate of per-future dispatch overhead in microseconds
    before any measurement exists (default 500).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

__all__ = [
    "AdaptiveScheduler",
    "DispatchPlan",
    "ZERO_SCHED",
    "DEFAULT_MICROBATCH_BYTES",
    "DEFAULT_SPLIT_BYTES",
    "DEFAULT_BREAKEVEN_US",
    "SCHEDULERS",
]

SCHEDULERS = ("per-item", "adaptive")

DEFAULT_MICROBATCH_BYTES = 256 * 1024
DEFAULT_SPLIT_BYTES = 1024 * 1024
DEFAULT_BREAKEVEN_US = 500

#: seed for the seconds-per-byte cost EMA before any observation
#: (~2 MB/s of inspection throughput, deliberately conservative so the
#: first decisions lean toward dispatching rather than inlining)
_SEED_COST_PER_BYTE = 5e-7
#: EMA smoothing factor for runtime feedback
_ALPHA = 0.2

#: the always-present ``BatchSummary.dispatch`` schema.  Consumers
#: (daemon STATUS/METRICS, fleet aggregation, benchmarks) rely on every
#: key existing in every summary, zeroed when the scheduler did nothing
#: — the same contract as ``ZERO_RESILIENCE`` / ``ZERO_SHARD``.
ZERO_SCHED = {
    "scheduler": "per-item",
    "futures_submitted": 0,
    "inlined": 0,
    "micro_batched": 0,
    "micro_batches": 0,
    "extent_split": 0,
    "extents_scanned": 0,
    "split_fallbacks": 0,
    "queue_wait_seconds": 0.0,
    "break_even_seconds": 0.0,
    "pickle_penalty_seconds": 0.0,
}


def _env_bytes(name: str, default: int) -> int:
    """Parse a positive integer knob exactly like ``REPRO_WORKERS``."""
    env = os.environ.get(name)
    if env is None or not env.strip():
        return default
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{name} must be a positive integer, got {env!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


@dataclass
class DispatchPlan:
    """One batch's dispatch decision, keyed by cache key."""

    inline: list = field(default_factory=list)
    #: groups of keys; a singleton group is an ordinary per-item future
    groups: list = field(default_factory=list)
    split: list = field(default_factory=list)

    @property
    def futures(self) -> int:
        return len(self.groups)


class AdaptiveScheduler:
    """Per-submission dispatch planner with runtime cost feedback.

    Thread-safe: daemon handler threads share one inspector, so plan
    requests and observations may interleave.
    """

    def __init__(
        self,
        *,
        workers: int,
        microbatch_bytes: int | None = None,
        split_bytes: int | None = None,
        breakeven_us: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.microbatch_bytes = (
            _env_bytes("REPRO_SCHED_MICROBATCH_BYTES", DEFAULT_MICROBATCH_BYTES)
            if microbatch_bytes is None else microbatch_bytes
        )
        self.split_bytes = (
            _env_bytes("REPRO_SCHED_SPLIT_BYTES", DEFAULT_SPLIT_BYTES)
            if split_bytes is None else split_bytes
        )
        seed_us = (
            _env_bytes("REPRO_SCHED_BREAKEVEN_US", DEFAULT_BREAKEVEN_US)
            if breakeven_us is None else breakeven_us
        )
        if self.microbatch_bytes < 1:
            raise ValueError("microbatch_bytes must be >= 1")
        if self.split_bytes < 1:
            raise ValueError("split_bytes must be >= 1")
        if seed_us < 1:
            raise ValueError("breakeven_us must be >= 1")
        self._lock = threading.Lock()
        self._cost_per_byte = _SEED_COST_PER_BYTE
        self._overhead = seed_us * 1e-6
        self._queue_wait_total = 0.0
        self._observations = 0

    # ------------------------------------------------------------ planning

    def estimate_cost(self, nbytes: int) -> float:
        """Estimated inspection seconds for an *nbytes* submission."""
        with self._lock:
            return nbytes * self._cost_per_byte

    @property
    def break_even_seconds(self) -> float:
        """Current estimate of one future's dispatch overhead."""
        with self._lock:
            return self._overhead

    def should_inline(self, nbytes: int) -> bool:
        """True when dispatching *nbytes* cannot pay for its overhead.

        Dispatching wins only when the parallel saving — the work the
        caller thread sheds, ``cost * (workers-1)/workers`` — exceeds
        the per-future overhead.  With one worker the saving is zero
        and every submission inlines.
        """
        with self._lock:
            saving = nbytes * self._cost_per_byte
            saving *= (self.workers - 1) / self.workers
            return saving < self._overhead

    def plan(self, sized: list) -> DispatchPlan:
        """Partition ``[(key, nbytes), ...]`` misses into a dispatch plan.

        Submission order is preserved within each lane so verdict
        fan-out stays deterministic.
        """
        plan = DispatchPlan()
        batchable: list = []
        for key, nbytes in sized:
            if nbytes >= self.split_bytes:
                plan.split.append(key)
            elif self.should_inline(nbytes):
                plan.inline.append(key)
            else:
                batchable.append((key, nbytes))
        group: list = []
        group_bytes = 0
        for key, nbytes in batchable:
            group.append(key)
            group_bytes += nbytes
            if group_bytes >= self.microbatch_bytes:
                plan.groups.append(group)
                group, group_bytes = [], 0
        if group:
            plan.groups.append(group)
        return plan

    # ----------------------------------------------------------- feedback

    def observe_work(self, nbytes: int, seconds: float) -> None:
        """Fold one completed inspection into the cost-per-byte EMA."""
        if nbytes <= 0 or seconds <= 0:
            return
        with self._lock:
            sample = seconds / nbytes
            self._cost_per_byte += _ALPHA * (sample - self._cost_per_byte)
            self._observations += 1

    def observe_dispatch(self, overhead: float, queue_wait: float) -> None:
        """Fold one future's measured round-trip overhead into the EMA."""
        with self._lock:
            if overhead > 0:
                self._overhead += _ALPHA * (overhead - self._overhead)
            if queue_wait > 0:
                self._queue_wait_total += queue_wait
            self._observations += 1

    # ------------------------------------------------------------ exports

    def snapshot(self) -> dict:
        """Model state for the ``dispatch`` accounting block."""
        with self._lock:
            return {
                "break_even_seconds": self._overhead,
                "queue_wait_seconds": self._queue_wait_total,
                "cost_per_byte": self._cost_per_byte,
                "observations": self._observations,
                "microbatch_bytes": self.microbatch_bytes,
                "split_bytes": self.split_bytes,
                "workers": self.workers,
            }
