"""Deterministic corpora of workload variants for stress/differential runs.

The batch-service tests and the throughput benchmark need *fleets*: many
small, distinct binaries spanning every verdict the pipeline can produce
— compliant, policy-rejected, and structurally rejected — plus exact
duplicates to exercise the cache.  Building the paper's seven full
benchmarks fifty times over would dominate test time, so this module
generates small synthetic programs through the real toolchain (every
byte still flows through the compiler, linker, and ELF writer) with
shapes drawn from a seeded HMAC-DRBG.

Everything is deterministic in ``(n, seed, libc version)``, so the
differential oracle can be re-run bit-for-bit.
"""

from __future__ import annotations

from ..crypto import HmacDrbg
from ..toolchain import Compiler, CompilerFlags, build_libc, link
from ..toolchain.ir import DataObject, FunctionSpec, ProgramSpec
from ..toolchain.libc import LibcBuild

__all__ = ["generate_variant_corpus", "VARIANT_KINDS"]

#: the rotation of variant kinds, in corpus order
VARIANT_KINDS = (
    "compliant",        # stack protector + IFCC: passes all three policies
    "plain",            # uninstrumented: fails stack-protection and IFCC
    "compliant",
    "sp-only",          # canaries but no IFCC tables
    "compliant",
    "truncated",        # structurally rejected: ELF cut mid-section
    "compliant",
    "garbage",          # structurally rejected: not an ELF at all
    "duplicate",        # byte-identical re-submission of an earlier variant
)

_IMPORT_POOL = ("memcpy", "memset", "strlen", "printf", "strcmp")


def _variant_spec(index: int, rng: HmacDrbg) -> ProgramSpec:
    """A small program whose shape varies with *index*."""
    n_helpers = 2 + rng.randint(0, 2)
    helpers = []
    for h in range(n_helpers):
        helpers.append(FunctionSpec(
            name=f"v{index}_fn{h}",
            n_blocks=1 + rng.randint(0, 3),
            ops_per_block=(4 + rng.randint(0, 4), 10 + rng.randint(0, 8)),
            frame_slots=2 + rng.randint(0, 4),
            direct_calls=[
                _IMPORT_POOL[rng.randint(0, len(_IMPORT_POOL) - 1)]
                for _ in range(rng.randint(1, 3))
            ],
            indirect_calls=1 if h == 0 and rng.randint(0, 1) else 0,
            address_taken=h == n_helpers - 1,
        ))
    main = FunctionSpec(
        name="main",
        n_blocks=2,
        ops_per_block=(4, 8),
        frame_slots=3,
        direct_calls=[h.name for h in helpers[:2]] + ["memcpy"],
    )
    return ProgramSpec(
        name=f"variant{index}",
        functions=[main, *helpers],
        libc_imports=sorted(set(_IMPORT_POOL)),
        data_objects=[DataObject(
            name=f"v{index}_data",
            size=64 + 8 * rng.randint(0, 8),
            init=rng.generate(32),
        )],
        seed=b"service-corpus",
    )


def _flags_for(kind: str) -> CompilerFlags:
    if kind == "plain":
        return CompilerFlags()
    if kind == "sp-only":
        return CompilerFlags(stack_protector=True, ifcc=False)
    return CompilerFlags(stack_protector=True, ifcc=True)


def generate_variant_corpus(
    n: int = 50,
    *,
    libc: LibcBuild | None = None,
    seed: bytes = b"service-corpus",
) -> list[tuple[str, bytes]]:
    """``n`` labelled ELF blobs cycling through :data:`VARIANT_KINDS`."""
    libc = libc or build_libc()
    rng = HmacDrbg(seed)
    corpus: list[tuple[str, bytes]] = []
    built: list[bytes] = []
    for i in range(n):
        kind = VARIANT_KINDS[i % len(VARIANT_KINDS)]
        label = f"v{i:03d}-{kind}"
        if kind == "garbage":
            corpus.append((label, b"\x7fNOT-AN-ELF" + rng.generate(256)))
            continue
        if kind == "duplicate" and built:
            corpus.append((label, built[rng.randint(0, len(built) - 1)]))
            continue
        spec = _variant_spec(i, rng)
        elf = link(Compiler(_flags_for(kind)).compile(spec), libc).elf
        if kind == "truncated":
            elf = elf[: max(len(elf) // 2, 64)]
        else:
            built.append(elf)
        corpus.append((label, elf))
    return corpus
