"""Attestation-aware SDK for the inspection daemon.

:class:`InspectionClient` wraps the whole tenant-side procedure from
the paper behind one call:

1. connect (any :mod:`repro.net` transport — a factory callable keeps
   the SDK transport-agnostic),
2. ``HELLO`` — verify protocol version and that the daemon serves the
   policy registry *this* client reviewed (digest match),
3. ``ATTEST`` with a fresh challenge — verify the quote against the
   provider's published device key and the **client-computed**
   ``expected_mrenclave`` (mutual trust: the client never takes the
   provider's word for what the enclave contains),
4. secure-channel key exchange, with the server key pinned to the
   fingerprint the verified quote bound into its measurement,
5. encrypted ``SUBMIT`` → authenticated verdict.

Transient failures (disconnects, timeouts, injected faults, channel
MAC errors) are retried with exponential backoff on an injectable
clock, reusing :class:`~repro.core.provisioning.ResilienceConfig`
semantics — and always **fail closed**: an exhausted retry budget
yields a typed error verdict, never a silent accept.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.policy import PolicyRegistry
from ..core.provisioning import ResilienceConfig, expected_mrenclave
from ..core.report import ComplianceReport
from ..crypto import HmacDrbg, RsaPublicKey
from ..crypto.channel import SecureChannel, client_handshake
from ..errors import (
    AttestationError,
    CryptoError,
    NetError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from . import protocol as proto

__all__ = ["InspectionClient", "ClientVerdict", "RemoteError", "device_key_from_announce"]

#: transport/crypto failures worth a reconnect-and-retry
_TRANSIENT = (NetError, CryptoError, ProtocolError, OSError)


class RemoteError(ServiceError):
    """The daemon answered with a typed ``ERROR`` response."""

    def __init__(self, stage: str, error: str) -> None:
        super().__init__(f"[{stage}] {error}")
        self.stage = stage
        self.error = error


def _parse_json(body: bytes, what: str) -> dict:
    """Decode a JSON response body, failing closed with a typed error —
    a corrupted (e.g. bitflipped-in-transit) body must never surface as
    an untyped :class:`UnicodeDecodeError`/:class:`ValueError`."""
    try:
        doc = json.loads(body.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed {what} body: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"malformed {what} body: expected a JSON object")
    return doc


def device_key_from_announce(doc: dict) -> RsaPublicKey:
    """Rebuild the provider's device public key from an announce record
    (the JSON line ``repro serve`` prints; the IAS-registry analogue)."""
    key = doc["device_key"]
    return RsaPublicKey(n=int(key["n"], 16), e=int(key["e"]))


@dataclass
class ClientVerdict:
    """One ``SUBMIT`` outcome — a report, or a typed fail-closed error."""

    label: str
    report: ComplianceReport | None = None
    #: ``BatchItemResult.source`` as reported by the daemon
    source: str = "error"
    #: typed ``ExcName: detail`` text when no report was produced
    error: str | None = None
    attempts: int = 1
    wire: bytes = field(default=b"", repr=False)

    @property
    def accepted(self) -> bool:
        return self.report is not None and self.report.compliant


class InspectionClient:
    """One tenant's handle on a running inspection daemon.

    Not thread-safe: each worker thread should own its own client (and
    therefore its own attested connection), mirroring one tenant
    machine per channel in the paper.
    """

    def __init__(
        self,
        policies: PolicyRegistry,
        device_public_key: RsaPublicKey,
        connect,
        *,
        rng: HmacDrbg | None = None,
        timeout: float = 10.0,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.policies = policies
        self.device_public_key = device_public_key
        self._connect = connect
        self.rng = rng or HmacDrbg(b"inspection-client")
        self.timeout = timeout
        self.resilience = resilience
        self._sock = None
        self._channel: SecureChannel | None = None
        self.server_info: dict | None = None
        self._session = 0

    # ------------------------------------------------------------- session

    @property
    def connected(self) -> bool:
        return self._channel is not None

    def open(self) -> dict:
        """Connect, HELLO, attest, and establish the secure channel.

        Returns the daemon's HELLO info.  Raises typed errors on any
        verification failure — an unattested channel is never kept.
        """
        if self._channel is not None:
            return self.server_info or {}
        self._session += 1
        sock = self._connect()
        try:
            if hasattr(sock, "settimeout"):
                sock.settimeout(self.timeout)
            info = self._roundtrip_plain(sock, proto.T_HELLO, b"",
                                         expect=proto.T_HELLO_OK)
            hello = _parse_json(info, "HELLO_OK")
            self._check_hello(hello)
            quote = self._attest(sock, hello)
            # Channel key pinned to the fingerprint the *verified* quote
            # carries: a MITM key would fail this check.
            channel, _ = client_handshake(
                sock,
                self.rng.fork(b"channel-%d" % self._session),
                expected_fingerprint=quote.report_data[:32],
            )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._channel = channel
        self.server_info = hello
        return hello

    def _check_hello(self, hello: dict) -> None:
        if hello.get("protocol_version") != proto.PROTOCOL_VERSION:
            raise ProtocolError(
                f"daemon speaks protocol {hello.get('protocol_version')}, "
                f"this SDK speaks {proto.PROTOCOL_VERSION}"
            )
        import hashlib

        mine = hashlib.sha256(self.policies.digest_material()).hexdigest()
        if hello.get("policy_digest") != mine:
            raise AttestationError(
                "policy digest mismatch: the daemon serves a different "
                "policy registry than this client reviewed"
            )

    def _attest(self, sock, hello: dict):
        challenge = self.rng.generate(16)
        body = self._roundtrip_plain(sock, proto.T_ATTEST, challenge,
                                     expect=proto.T_ATTEST_OK)
        quote = proto.quote_from_bytes(body)
        try:
            geometry = hello["geometry"]
            expected = expected_mrenclave(
                self.policies,
                heap_pages=geometry["heap_pages"],
                client_pages=geometry["client_pages"],
                enclave_pages=geometry["enclave_pages"],
            )
        except (KeyError, TypeError) as exc:
            raise ProtocolError(
                f"HELLO_OK carries no usable enclave geometry: {exc!r}"
            ) from exc
        from ..sgx.attestation import verify_quote

        verify_quote(
            quote, self.device_public_key,
            expected_mrenclave=expected, challenge=challenge,
        )
        return quote

    def _roundtrip_plain(self, sock, mtype: int, body: bytes, *, expect: int) -> bytes:
        sock.send(proto.encode_message(mtype, body))
        rtype, rbody = proto.decode_message(sock.recv())
        if rtype == proto.T_ERROR:
            raise RemoteError(*proto.decode_error(rbody))
        if rtype != expect:
            raise ProtocolError(
                f"expected {proto.MESSAGE_TYPES[expect]}, daemon sent "
                f"{proto.MESSAGE_TYPES.get(rtype, hex(rtype))}"
            )
        return rbody

    def _roundtrip_secured(self, mtype: int, body: bytes, *, expect: int) -> tuple[int, bytes]:
        assert self._channel is not None
        self._channel.send(proto.encode_message(mtype, body))
        rtype, rbody = proto.decode_message(self._channel.recv())
        if rtype == proto.T_ERROR:
            raise RemoteError(*proto.decode_error(rbody))
        if rtype != expect:
            raise ProtocolError(
                f"expected {proto.MESSAGE_TYPES[expect]}, daemon sent "
                f"{proto.MESSAGE_TYPES.get(rtype, hex(rtype))}"
            )
        return rtype, rbody

    def close(self) -> None:
        """Part cleanly (best-effort BYE) and drop the connection."""
        channel, sock = self._channel, self._sock
        self._channel = None
        self._sock = None
        if channel is not None and sock is not None:
            try:
                channel.send(proto.encode_message(proto.T_BYE))
                proto.decode_message(channel.recv())
            except (ReproError, OSError):
                pass
        if sock is not None:
            sock.close()

    def _abandon(self) -> None:
        """Drop a connection we no longer trust (no BYE)."""
        sock = self._sock
        self._channel = None
        self._sock = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "InspectionClient":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- verbs

    def inspect(self, raw_elf: bytes, label: str = "client") -> ClientVerdict:
        """Submit one binary; retry transient failures; fail closed.

        ``ResilienceConfig`` semantics: up to ``max_retransmits`` extra
        attempts with ``backoff_base * 2**attempt`` sleeps on the
        injectable clock.  A daemon-side typed error (inspection crash,
        quarantine) is returned as a typed error verdict; transport and
        channel-integrity failures trigger a full reconnect (fresh
        attestation) before the retry.
        """
        return self._submit_with_retries(
            label, lambda: self._submit_whole(label, raw_elf)
        )

    def inspect_streamed(
        self, raw_elf: bytes, label: str = "client", *,
        chunk_size: int = 0x40000,
    ) -> ClientVerdict:
        """Submit one binary as a ``SUBMIT_BEGIN``/``SUBMIT_CHUNK`` stream.

        Large content travels as *chunk_size*-byte channel records, each
        acked before the next is sent, instead of one monolithic frame —
        so memory on both sides stays bounded by the chunk size plus one
        reassembly buffer and a mid-transfer fault costs one chunk, not
        the whole upload.  The daemon reassembles, checks the up-front
        sha256 commitment, and runs the *same* inspection path as
        :meth:`inspect`: the verdict bytes are identical, and the
        retry/fail-closed semantics are shared.
        """
        if chunk_size < 1:
            raise ProtocolError(f"chunk_size must be positive, got {chunk_size}")
        return self._submit_with_retries(
            label, lambda: self._submit_streamed(label, raw_elf, chunk_size)
        )

    def _submit_with_retries(self, label: str, submit) -> ClientVerdict:
        budget = (
            self.resilience.max_retransmits + 1 if self.resilience else 1
        )
        last_error = "ServiceError: no attempt was made"
        for attempt in range(budget):
            if attempt:
                assert self.resilience is not None
                self.resilience.clock.sleep(
                    self.resilience.backoff_base * (2 ** (attempt - 1))
                )
            try:
                self.open()
                source, wire = submit()
                report = ComplianceReport.deserialize(wire)
                return ClientVerdict(
                    label=label, report=report, source=source,
                    attempts=attempt + 1, wire=wire,
                )
            except RemoteError as exc:
                # The channel survived (the error itself was authenticated);
                # the *request* failed server-side.  Retry in place.
                last_error = exc.error
            except AttestationError as exc:
                # Fail closed immediately: retrying cannot make an
                # untrustworthy enclave trustworthy.
                self._abandon()
                return ClientVerdict(
                    label=label, error=f"AttestationError: {exc}",
                    attempts=attempt + 1,
                )
            except _TRANSIENT as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                self._abandon()
        return ClientVerdict(label=label, error=last_error, attempts=budget)

    def _submit_whole(self, label: str, raw_elf: bytes) -> tuple[str, bytes]:
        _, body = self._roundtrip_secured(
            proto.T_SUBMIT, proto.encode_submit(label, raw_elf),
            expect=proto.T_VERDICT,
        )
        return proto.decode_verdict(body)

    def _submit_streamed(
        self, label: str, raw_elf: bytes, chunk_size: int
    ) -> tuple[str, bytes]:
        import hashlib

        chunks = [
            raw_elf[off:off + chunk_size]
            for off in range(0, len(raw_elf), chunk_size)
        ] or [b""]
        digest = hashlib.sha256(raw_elf).digest()
        _, ack = self._roundtrip_secured(
            proto.T_SUBMIT_BEGIN,
            proto.encode_submit_begin(label, len(raw_elf), len(chunks), digest),
            expect=proto.T_SUBMIT_OK,
        )
        proto.decode_chunk_ack(ack)
        sent = 0
        for chunk in chunks[:-1]:
            sent += len(chunk)
            _, ack = self._roundtrip_secured(
                proto.T_SUBMIT_CHUNK, chunk, expect=proto.T_CHUNK_OK,
            )
            held = proto.decode_chunk_ack(ack)
            if held != sent:
                raise ProtocolError(
                    f"chunk ack mismatch: sent {sent} content bytes, "
                    f"daemon holds {held}"
                )
        _, body = self._roundtrip_secured(
            proto.T_SUBMIT_CHUNK, chunks[-1], expect=proto.T_VERDICT,
        )
        return proto.decode_verdict(body)

    def status(self) -> dict:
        """``STATUS`` probe (over the channel when open, plaintext else)."""
        return self._probe(proto.T_STATUS, proto.T_STATUS_OK)

    def metrics(self) -> dict:
        """``METRICS`` probe — the daemon's full observability dump."""
        return self._probe(proto.T_METRICS, proto.T_METRICS_OK)

    def _probe(self, mtype: int, expect: int) -> dict:
        what = proto.MESSAGE_TYPES[expect]
        if self._channel is not None:
            _, body = self._roundtrip_secured(mtype, b"", expect=expect)
            return _parse_json(body, what)
        sock = self._connect()
        try:
            if hasattr(sock, "settimeout"):
                sock.settimeout(self.timeout)
            body = self._roundtrip_plain(sock, mtype, b"", expect=expect)
            try:
                sock.send(proto.encode_message(proto.T_BYE))
                proto.decode_message(sock.recv())
            except (ReproError, OSError):
                pass
            return _parse_json(body, what)
        finally:
            sock.close()
