"""Provider-side inspection service: batching, parallelism, memoization.

The paper's pipeline inspects one binary per provisioning run.  This
package is the scaling layer a cloud provider actually deploys: a
content-addressed verdict cache (:mod:`repro.service.cache`), a parallel
batch front-end with per-binary error isolation
(:mod:`repro.service.batch`), and deterministic variant corpora for
stress and differential testing (:mod:`repro.service.corpus`).

The service never touches the pipeline itself — every verdict is still
produced by :class:`repro.core.EnGarde`, and the differential tests hold
the batch path byte-identical to the sequential baseline.

The batch front-end is also where the fail-closed resilience layer
lives: retry-with-backoff, per-item deadlines, a :class:`Quarantine`
for repeat offenders, and pool-to-serial degradation (see
``docs/RESILIENCE.md``).

On top of all of it sits the long-lived serving layer (see
``docs/DAEMON.md``): :class:`InspectionDaemon` keeps the whole stack
warm behind a framed, versioned socket protocol with per-connection
attestation, and :class:`InspectionClient` is the tenant SDK that
verifies the daemon before trusting a single verdict.
"""

from .batch import (
    BatchInspector,
    BatchItemResult,
    BatchReport,
    BatchSummary,
    Quarantine,
    default_workers,
)
from .cache import (
    CacheStats,
    InspectionCache,
    ProvisioningVerdictCache,
    cache_key,
)
from .client import (
    ClientVerdict,
    InspectionClient,
    RemoteError,
    device_key_from_announce,
)
from .corpus import VARIANT_KINDS, generate_variant_corpus
from .daemon import ZERO_SHARD, InspectionDaemon
from .fleet import ConsistentHashRing, FleetCoordinator, run_fleet_storm
from .metrics import DaemonMetrics, LatencyHistogram
from .pool import EnclavePool, PooledEnclave
from .sched import SCHEDULERS, ZERO_SCHED, AdaptiveScheduler, DispatchPlan
from .shm import ArenaTicket, SharedArena
from .store import (
    ZERO_STORE,
    TieredCache,
    TieredProvisioningVerdictCache,
    VerdictStore,
)

__all__ = [
    "BatchInspector", "BatchItemResult", "BatchReport", "BatchSummary",
    "Quarantine", "default_workers",
    "SharedArena", "ArenaTicket",
    "InspectionCache", "ProvisioningVerdictCache", "CacheStats", "cache_key",
    "generate_variant_corpus", "VARIANT_KINDS",
    "InspectionDaemon", "InspectionClient", "ClientVerdict", "RemoteError",
    "device_key_from_announce", "ZERO_SHARD",
    "EnclavePool", "PooledEnclave", "DaemonMetrics", "LatencyHistogram",
    "VerdictStore", "TieredCache", "TieredProvisioningVerdictCache",
    "ZERO_STORE",
    "FleetCoordinator", "ConsistentHashRing", "run_fleet_storm",
    "AdaptiveScheduler", "DispatchPlan", "SCHEDULERS", "ZERO_SCHED",
]
