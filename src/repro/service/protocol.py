"""Wire protocol of the long-lived inspection daemon.

One daemon *message* travels inside one framed socket message (the
4-byte length prefix added by :mod:`repro.net`), and carries its own
header so the daemon can reject malformed, truncated, or wrong-version
traffic with a typed error instead of misparsing it:

.. code-block:: text

    offset  size  field
    0       2     magic      b"EG"
    2       1     version    PROTOCOL_VERSION (1)
    3       1     type       verb / response code (below)
    4       4     body_len   big-endian; must equal len(body)
    8       n     body       verb-specific payload

The double length (socket frame + ``body_len``) is deliberate: a frame
that was truncated or grown in transit — by a fault injection or a
buggy proxy — fails the cross-check even when the outer framing still
parses, which is exactly what the protocol fuzz tests drive.

Conversation order (the daemon enforces this state machine and rejects
out-of-order verbs, in the spirit of Guardian's entry/exit orderliness
checking):

1. plaintext phase — ``HELLO``, ``STATUS``, ``METRICS``, ``BYE`` in any
   order, then at most one ``ATTEST``;
2. after ``ATTEST_OK`` the server immediately sends its channel public
   key (the raw handshake frame of :class:`repro.crypto.channel`), the
   client answers with the key-wrap frame, and the connection switches
   to *secured* mode;
3. secured phase — every subsequent socket message is a secure-channel
   record whose plaintext is again a protocol message: ``SUBMIT`` →
   ``VERDICT`` (or ``ERROR``), ``STATUS``/``METRICS`` probes, and
   ``BYE`` to part cleanly.  Large content may instead be streamed:
   ``SUBMIT_BEGIN`` (label, total size, chunk count, sha256 commitment)
   → ``SUBMIT_OK``, then one ``SUBMIT_CHUNK`` per piece — each
   non-final chunk is acked with ``CHUNK_OK`` carrying the byte count
   the daemon holds, and the final chunk is answered with the same
   ``VERDICT``/``ERROR`` a whole-body ``SUBMIT`` would produce.  The
   daemon hashes incrementally as chunks land and fails closed on any
   size or digest mismatch before inspection runs.

``ERROR`` bodies are JSON ``{"stage": ..., "error": ...}`` where
``error`` is the typed ``ExcName: detail`` text the rest of the code
base uses — the chaos oracle's typed-error regex matches it unchanged.
"""

from __future__ import annotations

import json
import struct

from ..errors import ProtocolError
from ..sgx.attestation import Quote
from .batch import BatchItemResult

__all__ = [
    "PROTOCOL_VERSION", "MAGIC", "MAX_BODY",
    "T_HELLO", "T_ATTEST", "T_SUBMIT", "T_STATUS", "T_METRICS", "T_BYE",
    "T_SUBMIT_BEGIN", "T_SUBMIT_CHUNK",
    "T_HELLO_OK", "T_ATTEST_OK", "T_VERDICT", "T_STATUS_OK", "T_METRICS_OK",
    "T_BYE_OK", "T_SUBMIT_OK", "T_CHUNK_OK", "T_ERROR",
    "MESSAGE_TYPES", "REQUEST_TYPES", "RESPONSE_TYPES",
    "encode_message", "decode_message",
    "encode_error", "decode_error",
    "encode_submit", "decode_submit",
    "encode_submit_begin", "decode_submit_begin",
    "encode_chunk_ack", "decode_chunk_ack",
    "encode_verdict", "decode_verdict",
    "quote_to_bytes", "quote_from_bytes",
]

PROTOCOL_VERSION = 1
MAGIC = b"EG"
_HEADER = struct.Struct(">2sBBI")  # magic, version, type, body length
#: a daemon message must also fit in one socket frame
MAX_BODY = 48 * 1024 * 1024

# Requests.
T_HELLO = 0x01
T_ATTEST = 0x02
T_SUBMIT = 0x03
T_STATUS = 0x04
T_METRICS = 0x05
T_BYE = 0x06
T_SUBMIT_BEGIN = 0x07
T_SUBMIT_CHUNK = 0x08
# Responses (request | 0x80).
T_HELLO_OK = 0x81
T_ATTEST_OK = 0x82
T_VERDICT = 0x83
T_STATUS_OK = 0x84
T_METRICS_OK = 0x85
T_BYE_OK = 0x86
T_SUBMIT_OK = 0x87
T_CHUNK_OK = 0x88
T_ERROR = 0xFF

REQUEST_TYPES = {
    T_HELLO: "HELLO", T_ATTEST: "ATTEST", T_SUBMIT: "SUBMIT",
    T_STATUS: "STATUS", T_METRICS: "METRICS", T_BYE: "BYE",
    T_SUBMIT_BEGIN: "SUBMIT_BEGIN", T_SUBMIT_CHUNK: "SUBMIT_CHUNK",
}
RESPONSE_TYPES = {
    T_HELLO_OK: "HELLO_OK", T_ATTEST_OK: "ATTEST_OK", T_VERDICT: "VERDICT",
    T_STATUS_OK: "STATUS_OK", T_METRICS_OK: "METRICS_OK", T_BYE_OK: "BYE_OK",
    T_SUBMIT_OK: "SUBMIT_OK", T_CHUNK_OK: "CHUNK_OK",
    T_ERROR: "ERROR",
}
MESSAGE_TYPES = {**REQUEST_TYPES, **RESPONSE_TYPES}


def encode_message(mtype: int, body: bytes = b"") -> bytes:
    """One protocol message, ready for ``sock.send`` or ``channel.send``."""
    if mtype not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {mtype:#04x}")
    if len(body) > MAX_BODY:
        raise ProtocolError(
            f"message body of {len(body)} bytes exceeds protocol limit"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, mtype, len(body)) + body


def decode_message(frame: bytes) -> tuple[int, bytes]:
    """Parse and validate one message; raises typed :class:`ProtocolError`.

    Every check mirrors one fuzz case: short header, bad magic, version
    skew, oversized declared length, and header/body length mismatch
    (both truncation and trailing garbage).
    """
    if len(frame) < _HEADER.size:
        raise ProtocolError(
            f"truncated message: {len(frame)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, version, mtype, body_len = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this daemon speaks {PROTOCOL_VERSION})"
        )
    if mtype not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {mtype:#04x}")
    if body_len > MAX_BODY:
        raise ProtocolError(
            f"declared body of {body_len} bytes exceeds protocol limit"
        )
    body = frame[_HEADER.size:]
    if len(body) != body_len:
        raise ProtocolError(
            f"message length mismatch: header declares {body_len} body "
            f"bytes, frame carries {len(body)}"
        )
    return mtype, bytes(body)


# ------------------------------------------------------------------ errors


def encode_error(stage: str, error: str) -> bytes:
    return encode_message(
        T_ERROR, json.dumps({"stage": stage, "error": error}).encode()
    )


def decode_error(body: bytes) -> tuple[str, str]:
    """(stage, typed error text) from an ``ERROR`` body."""
    try:
        doc = json.loads(body.decode())
        return str(doc["stage"]), str(doc["error"])
    except Exception:  # noqa: BLE001 — a broken error body is itself an error
        return "protocol", f"ProtocolError: unparseable error body {body[:64]!r}"


# ------------------------------------------------------------------ submit

_SUBMIT_HDR = struct.Struct(">H")  # label length

#: ``BatchItemResult.source`` values a verdict can carry on the wire
_SOURCES = ("inspected", "cache", "dedup", "error", "quarantined")


def encode_submit(label: str, raw_elf: bytes) -> bytes:
    encoded = label.encode()
    if len(encoded) > 0xFFFF:
        raise ProtocolError("submit label exceeds 65535 bytes")
    return _SUBMIT_HDR.pack(len(encoded)) + encoded + raw_elf


def decode_submit(body: bytes) -> tuple[str, bytes]:
    if len(body) < _SUBMIT_HDR.size:
        raise ProtocolError("submit body shorter than its label header")
    (label_len,) = _SUBMIT_HDR.unpack_from(body)
    if len(body) < _SUBMIT_HDR.size + label_len:
        raise ProtocolError("submit label truncated")
    label = body[_SUBMIT_HDR.size:_SUBMIT_HDR.size + label_len].decode(
        errors="replace"
    )
    return label, bytes(body[_SUBMIT_HDR.size + label_len:])


# ------------------------------------------------------- streamed submit

#: label length, chunk count, total content size
_SUBMIT_BEGIN_HDR = struct.Struct(">HIQ")
#: ``CHUNK_OK``/``SUBMIT_OK`` ack: content bytes the daemon holds so far
_CHUNK_ACK = struct.Struct(">Q")
#: sha256 commitment length carried by ``SUBMIT_BEGIN``
_DIGEST_LEN = 32


def encode_submit_begin(
    label: str, total_size: int, chunk_count: int, digest: bytes
) -> bytes:
    """``SUBMIT_BEGIN`` body: announce a chunked submission.

    *digest* is the sha256 of the full content, committed up front so
    the daemon can fail closed on any reassembly or in-transit
    corruption before a single policy module runs.
    """
    encoded = label.encode()
    if len(encoded) > 0xFFFF:
        raise ProtocolError("submit label exceeds 65535 bytes")
    if chunk_count < 1:
        raise ProtocolError("streamed submit must announce at least one chunk")
    if total_size > MAX_BODY:
        raise ProtocolError(
            f"streamed submit of {total_size} bytes exceeds protocol limit"
        )
    if len(digest) != _DIGEST_LEN:
        raise ProtocolError(
            f"submit digest must be {_DIGEST_LEN} bytes, got {len(digest)}"
        )
    return (
        _SUBMIT_BEGIN_HDR.pack(len(encoded), chunk_count, total_size)
        + digest + encoded
    )


def decode_submit_begin(body: bytes) -> tuple[str, int, int, bytes]:
    """(label, total_size, chunk_count, digest) from ``SUBMIT_BEGIN``."""
    if len(body) < _SUBMIT_BEGIN_HDR.size + _DIGEST_LEN:
        raise ProtocolError("submit-begin body shorter than its header")
    label_len, chunk_count, total_size = _SUBMIT_BEGIN_HDR.unpack_from(body)
    if chunk_count < 1:
        raise ProtocolError("streamed submit must announce at least one chunk")
    if total_size > MAX_BODY:
        raise ProtocolError(
            f"streamed submit of {total_size} bytes exceeds protocol limit"
        )
    off = _SUBMIT_BEGIN_HDR.size
    digest = bytes(body[off:off + _DIGEST_LEN])
    off += _DIGEST_LEN
    if len(body) != off + label_len:
        raise ProtocolError("submit-begin label truncated")
    label = body[off:off + label_len].decode(errors="replace")
    return label, total_size, chunk_count, digest


def encode_chunk_ack(received: int) -> bytes:
    return _CHUNK_ACK.pack(received)


def decode_chunk_ack(body: bytes) -> int:
    if len(body) != _CHUNK_ACK.size:
        raise ProtocolError(
            f"chunk ack must be {_CHUNK_ACK.size} bytes, got {len(body)}"
        )
    return _CHUNK_ACK.unpack(body)[0]


def encode_verdict(item: BatchItemResult) -> bytes:
    """``VERDICT`` body: source tag + the exact report wire bytes."""
    assert item.report is not None
    source = item.source if item.source in _SOURCES else "inspected"
    return bytes([_SOURCES.index(source)]) + item.report.serialize()


def decode_verdict(body: bytes) -> tuple[str, bytes]:
    """(source, report wire bytes) from a ``VERDICT`` body."""
    if not body:
        raise ProtocolError("empty verdict body")
    tag = body[0]
    if tag >= len(_SOURCES):
        raise ProtocolError(f"unknown verdict source tag {tag}")
    return _SOURCES[tag], bytes(body[1:])


# ------------------------------------------------------------------- quote

_QUOTE_HDR = struct.Struct(">QHHHH")  # attributes + four section lengths


def quote_to_bytes(quote: Quote) -> bytes:
    """Serialize an attestation quote for the ``ATTEST_OK`` body."""
    parts = (quote.mrenclave, quote.report_data, quote.challenge,
             quote.signature)
    return _QUOTE_HDR.pack(
        quote.attributes, *(len(p) for p in parts)
    ) + b"".join(parts)


def quote_from_bytes(body: bytes) -> Quote:
    if len(body) < _QUOTE_HDR.size:
        raise ProtocolError("attestation quote truncated (short header)")
    attributes, n_mr, n_rd, n_ch, n_sig = _QUOTE_HDR.unpack_from(body)
    expected = _QUOTE_HDR.size + n_mr + n_rd + n_ch + n_sig
    if len(body) != expected:
        raise ProtocolError(
            f"attestation quote length mismatch: header implies {expected} "
            f"bytes, body carries {len(body)}"
        )
    off = _QUOTE_HDR.size
    mrenclave = bytes(body[off:off + n_mr]); off += n_mr
    report_data = bytes(body[off:off + n_rd]); off += n_rd
    challenge = bytes(body[off:off + n_ch]); off += n_ch
    signature = bytes(body[off:off + n_sig])
    return Quote(
        mrenclave=mrenclave, attributes=attributes, report_data=report_data,
        challenge=challenge, signature=signature,
    )
