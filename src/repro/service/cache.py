"""Content-addressed verdict cache for the inspection service.

A cloud provider re-inspects the *same bytes* constantly: tenants redeploy
unchanged binaries, fleets share images, and every image links the same
musl functions.  Since EnGarde's verdict is a pure function of
``(binary bytes, agreed policy set)``, the service memoizes
:class:`~repro.core.report.ComplianceReport` objects under the key

    (sha256(raw_elf), sha256(policy_registry.digest_material()))

The second component matters: the *same* binary under a *different*
policy agreement (different hash database, different exemption list,
different module set) is a different inspection, and the property tests
assert a cache hit can never leak a verdict across policy digests.

The client-chosen job label (``ComplianceReport.benchmark``) is *not*
part of the verdict — two clients submitting identical bytes under
different labels share one entry; reports are stored label-stripped and
re-labelled on the way out.

Keys use :mod:`hashlib` rather than ``repro.crypto.sha256``: the cache is
provider-side service infrastructure, outside the enclave's from-scratch
TCB, and sits on the hot path.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from ..core.policy import PolicyRegistry
from ..core.report import ComplianceReport

__all__ = [
    "CacheStats", "InspectionCache", "ProvisioningVerdictCache", "cache_key",
]

#: (content digest, policy-set digest) — both hex strings
CacheKey = tuple[str, str]


def cache_key(raw_elf: bytes, policies: PolicyRegistry) -> CacheKey:
    """The content-addressed identity of one inspection request."""
    return (
        hashlib.sha256(raw_elf).hexdigest(),
        hashlib.sha256(policies.digest_material()).hexdigest(),
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (monotonic over the cache's lifetime)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class InspectionCache:
    """Thread-safe LRU cache of compliance reports.

    *capacity* bounds the number of distinct ``(content, policy-set)``
    entries; the least-recently-*used* entry is evicted first (both
    :meth:`get` hits and :meth:`put` refresh recency).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, ComplianceReport] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    # ------------------------------------------------------------------

    def key_for(self, raw_elf: bytes, policies: PolicyRegistry) -> CacheKey:
        return cache_key(raw_elf, policies)

    def get(self, key: CacheKey, *, benchmark: str = "") -> ComplianceReport | None:
        """The cached report re-labelled for this request, or ``None``."""
        with self._lock:
            report = self._entries.get(key)
            if report is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
        if report.benchmark != benchmark:
            report = replace(report, benchmark=benchmark)
        return report

    def put(self, key: CacheKey, report: ComplianceReport) -> None:
        """Memoize *report* (label-stripped) under *key*, evicting LRU."""
        if report.benchmark:
            report = replace(report, benchmark="")
        with self._lock:
            self._entries[key] = report
            self._entries.move_to_end(key)
            self._stats.puts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """A snapshot of the counters."""
        with self._lock:
            return replace(self._stats)

    def keys(self) -> list[CacheKey]:
        """Current keys, LRU first (for tests and introspection)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries


class ProvisioningVerdictCache(InspectionCache):
    """Verdict cache for the full provisioning path.

    Same storage and label-stripping semantics as
    :class:`InspectionCache`, but the key additionally binds the *client
    region geometry*: a verdict produced for one ``(base, pages)`` region
    must not be served for another — the loader's capacity check can flip
    the verdict for the same bytes under a smaller region.  Pass an
    instance as ``CloudProvider(verdict_cache=...)``; the provider treats
    it duck-typed, so the core package never imports the service layer.
    """

    def key_for(  # type: ignore[override]
        self,
        raw_elf: bytes,
        policies: PolicyRegistry,
        region_base: int,
        region_pages: int,
    ) -> tuple[str, ...]:
        return cache_key(raw_elf, policies) + (
            f"{region_base:#x}", str(region_pages),
        )
