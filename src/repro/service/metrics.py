"""Daemon observability: counters and per-stage latency histograms.

Everything here is provider-side service infrastructure (outside the
enclave TCB) and must be safe to update from many handler threads at
once: one lock per object, O(1) per observation, and ``snapshot()``
returns plain JSON-ready dicts so the ``METRICS`` verb is a straight
``json.dumps``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["LatencyHistogram", "DaemonMetrics"]

#: log-spaced bucket upper bounds in seconds (plus a +Inf overflow bucket)
_DEFAULT_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with summary statistics.

    Buckets are cumulative-style on export (`"le"` upper bounds, like a
    Prometheus histogram) so dashboards can derive quantiles;
    :meth:`quantile` gives a bucket-resolution estimate directly.
    """

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        idx = bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if self._min is None or seconds < self._min:
                self._min = seconds
            if self._max is None or seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = max(1, round(q * total))
            running = 0
            for idx, n in enumerate(self._counts):
                running += n
                if running >= rank:
                    if idx < len(self.bounds):
                        return self.bounds[idx]
                    return self._max or self.bounds[-1]
        return self._max or 0.0  # pragma: no cover - loop always returns

    def summary(self) -> dict:
        """Bucket-resolution p50/p95/p99 plus count/mean — the compact
        form the SLO bench and dashboards want per stage."""
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "mean_seconds": round(total / count, 6) if count else 0.0,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }

    def reset(self) -> None:
        """Zero every bucket and statistic (load-step boundaries in the
        SLO bench; production daemons never reset)."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def as_dict(self) -> dict:
        with self._lock:
            buckets = {}
            cumulative = 0
            for bound, n in zip(self.bounds, self._counts):
                cumulative += n
                buckets[f"{bound:g}"] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            return {
                "count": self._count,
                "sum_seconds": round(self._sum, 6),
                "min_seconds": round(self._min, 6) if self._min is not None else None,
                "max_seconds": round(self._max, 6) if self._max is not None else None,
                "buckets_le": buckets,
            }


class DaemonMetrics:
    """All the counters one daemon exports, plus its stage histograms.

    Counter names are free-form dotted strings (``requests.SUBMIT``,
    ``errors.protocol``...); histograms are created on first use per
    stage name.  A counter that never fired still shows up as 0 once
    :meth:`touch` declared it, so the METRICS schema is stable.
    """

    STAGES = ("attest", "handshake", "inspect", "request")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.histograms: dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in self.STAGES
        }

    def touch(self, *names: str) -> None:
        """Declare counters so they export as 0 before first increment."""
        with self._lock:
            for name in names:
                self._counters.setdefault(name, 0)

    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, stage: str, seconds: float) -> None:
        hist = self.histograms.get(stage)
        if hist is None:
            with self._lock:
                hist = self.histograms.setdefault(stage, LatencyHistogram())
        hist.observe(seconds)

    def latency_summary(self) -> dict:
        """Per-stage p50/p95/p99 summaries (see
        :meth:`LatencyHistogram.summary`)."""
        return {
            stage: hist.summary()
            for stage, hist in sorted(self.histograms.items())
        }

    def reset(self) -> None:
        """Zero all counters (keeping declared names) and histograms."""
        with self._lock:
            for name in self._counters:
                self._counters[name] = 0
        for hist in self.histograms.values():
            hist.reset()

    def snapshot(self) -> dict:
        with self._lock:
            counters = dict(sorted(self._counters.items()))
        return {
            "counters": counters,
            "latency": {
                stage: hist.as_dict()
                for stage, hist in sorted(self.histograms.items())
            },
        }
