"""Zero-copy shared-memory arena for the multicore batch executor.

``BatchInspector(mode="process")`` historically pickled every raw ELF
into ``executor.submit(...)`` — two full copies through a pipe the pool
management thread owns, per binary, per attempt.  For data-heavy
binaries the pipe transfer costs more than the inspection itself, and
every byte funnels through one file descriptor no matter how many
workers exist.  This module removes that boundary:

* the parent writes each binary **once** into a
  :class:`multiprocessing.shared_memory.SharedMemory` slab,
* workers attach a :class:`memoryview` directly into the slab and feed
  it straight to the resumable decoder and the ELF reader (both accept
  ``memoryview`` without copying),
* only a tiny :class:`ArenaTicket` (segment name, offset, length,
  generation) crosses the pickle boundary per task, and verdicts come
  back as the compact frozen report wire they always were.

Integrity is fail-closed, mirroring the rest of the service layer:

* every slot carries a 32-byte header (magic, generation, length,
  payload sha256-prefix is deliberately *not* included — content
  addressing already happens in :mod:`repro.service.cache`); a worker
  attaching with a stale or mismatched ticket gets a typed
  :class:`~repro.errors.ArenaError`, never silently-wrong bytes,
* slots are **refcounted** and reused; every reuse bumps the slot
  generation and tombstones the old header, so a ticket that outlives
  its slot can never read another binary's content,
* teardown (:meth:`SharedArena.close`) tombstones every live header
  before unlinking, so a straggling worker attached mid-teardown fails
  closed too.

The arena is provider-side service infrastructure (outside the enclave
TCB).  It never interprets the binaries it carries.
"""

from __future__ import annotations

import multiprocessing
import struct
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

from ..errors import ArenaError

__all__ = [
    "ArenaTicket",
    "SharedArena",
    "attach_view",
    "attach_views",
    "detach_all",
    "publish_many",
]

#: slot header: magic(4) pad(4) generation(8) length(8) reserved(8)
_HEADER = struct.Struct("<4s4xQQ8x")
HEADER_SIZE = _HEADER.size          # 32 bytes
_MAGIC = b"EGAR"
_TOMBSTONE = b"DEAD"
#: slot payloads start on a cache-line boundary
_ALIGN = 64
#: default size of the first segment; later segments grow to fit demand
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024


def _round_up(n: int, align: int = _ALIGN) -> int:
    return (n + align - 1) // align * align


@dataclass(frozen=True)
class ArenaTicket:
    """A picklable claim on one published payload (what workers receive)."""

    segment: str
    offset: int
    length: int
    generation: int


class _Segment:
    """One shared-memory slab plus its free list (parent-side only)."""

    def __init__(self, size: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        self.size = self.shm.size
        #: sorted, coalesced list of (offset, size) holes
        self.free: list[tuple[int, int]] = [(0, self.size)]

    def allocate(self, need: int) -> int | None:
        """First-fit: returns an offset or None when nothing fits."""
        for i, (off, size) in enumerate(self.free):
            if size >= need:
                if size == need:
                    del self.free[i]
                else:
                    self.free[i] = (off + need, size - need)
                return off
        return None

    def release(self, offset: int, size: int) -> None:
        """Return a block and coalesce with its neighbours."""
        self.free.append((offset, size))
        self.free.sort()
        merged: list[tuple[int, int]] = []
        for off, sz in self.free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self.free = merged


@dataclass
class _Slot:
    segment: str
    offset: int
    alloc_size: int
    generation: int
    refs: int


class SharedArena:
    """Slab allocator over shared-memory segments, with slot generations.

    Thread-safe: the daemon submits concurrent batches through one
    inspector, so :meth:`publish`/:meth:`release` may race.  All
    bookkeeping lives parent-side; the shared segments carry only slot
    headers and payload bytes.
    """

    def __init__(self, *, segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        if segment_bytes < HEADER_SIZE + _ALIGN:
            raise ValueError("segment_bytes too small for a single slot")
        self.segment_bytes = segment_bytes
        self._segments: dict[str, _Segment] = {}
        self._slots: dict[tuple[str, int], _Slot] = {}
        self._generation = 0
        self._closed = False
        self._lock = threading.Lock()
        # lifetime stats (exported by BatchSummary / METRICS consumers)
        self.publishes = 0
        self.released = 0
        self.bytes_published = 0
        self.peak_bytes_in_use = 0
        self._bytes_in_use = 0

    # ------------------------------------------------------------ publish

    def publish(self, data) -> ArenaTicket:
        """Write *data* into a slot and return the ticket for workers.

        The returned ticket holds one reference; :meth:`release` it when
        the last consumer is done.  Raises :class:`ArenaError` once the
        arena is closed or if the OS refuses more shared memory.
        """
        payload = memoryview(data)
        length = payload.nbytes
        need = _round_up(HEADER_SIZE + length)
        with self._lock:
            if self._closed:
                raise ArenaError("arena is closed")
            segment, offset = self._allocate(need)
            self._generation += 1
            gen = self._generation
            slot = _Slot(
                segment=segment, offset=offset, alloc_size=need,
                generation=gen, refs=1,
            )
            self._slots[(segment, offset)] = slot
            buf = self._segments[segment].shm.buf
            _HEADER.pack_into(buf, offset, _MAGIC, gen, length)
            buf[offset + HEADER_SIZE:offset + HEADER_SIZE + length] = payload
            self.publishes += 1
            self.bytes_published += length
            self._bytes_in_use += need
            self.peak_bytes_in_use = max(self.peak_bytes_in_use, self._bytes_in_use)
            return ArenaTicket(
                segment=segment, offset=offset, length=length, generation=gen,
            )

    def _allocate(self, need: int) -> tuple[str, int]:
        for name, seg in self._segments.items():
            offset = seg.allocate(need)
            if offset is not None:
                return name, offset
        size = max(self.segment_bytes, _round_up(need))
        try:
            seg = _Segment(size)
        except OSError as exc:
            raise ArenaError(
                f"cannot grow arena by {size} bytes: {exc}"
            ) from exc
        self._segments[seg.shm.name] = seg
        offset = seg.allocate(need)
        assert offset is not None
        return seg.shm.name, offset

    # ---------------------------------------------------------- refcounts

    def retain(self, ticket: ArenaTicket) -> None:
        """Add a reference so another consumer may outlive the first."""
        with self._lock:
            slot = self._live_slot(ticket)
            slot.refs += 1

    def release(self, ticket: ArenaTicket) -> None:
        """Drop one reference; the last drop tombstones and frees the slot."""
        with self._lock:
            if self._closed:
                return
            slot = self._slots.get((ticket.segment, ticket.offset))
            if slot is None or slot.generation != ticket.generation:
                return  # already freed (idempotent, like close())
            slot.refs -= 1
            if slot.refs > 0:
                return
            seg = self._segments[slot.segment]
            _HEADER.pack_into(seg.shm.buf, slot.offset, _TOMBSTONE, 0, 0)
            seg.release(slot.offset, slot.alloc_size)
            del self._slots[(slot.segment, slot.offset)]
            self.released += 1
            self._bytes_in_use -= slot.alloc_size

    def _live_slot(self, ticket: ArenaTicket) -> _Slot:
        if self._closed:
            raise ArenaError("arena is closed")
        slot = self._slots.get((ticket.segment, ticket.offset))
        if slot is None or slot.generation != ticket.generation:
            raise ArenaError(
                f"stale ticket (segment={ticket.segment} offset={ticket.offset} "
                f"generation={ticket.generation})"
            )
        return slot

    # ----------------------------------------------------------- teardown

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def bytes_in_use(self) -> int:
        with self._lock:
            return self._bytes_in_use

    @property
    def segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def stats(self) -> dict:
        with self._lock:
            return {
                "segments": len(self._segments),
                "segment_bytes": self.segment_bytes,
                "publishes": self.publishes,
                "released": self.released,
                "bytes_published": self.bytes_published,
                "bytes_in_use": self._bytes_in_use,
                "peak_bytes_in_use": self.peak_bytes_in_use,
            }

    def close(self) -> None:
        """Tombstone every live slot, then close and unlink all segments.

        Idempotent.  Safe to call while workers may still hold stale
        tickets: their next :func:`attach_view` fails closed with a
        typed :class:`ArenaError` (tombstoned header or vanished
        segment), which the batch layer converts into an errored item —
        never a wrong verdict.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for slot in self._slots.values():
                seg = self._segments[slot.segment]
                _HEADER.pack_into(seg.shm.buf, slot.offset, _TOMBSTONE, 0, 0)
            self._slots.clear()
            for seg in self._segments.values():
                seg.shm.close()
                try:
                    seg.shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._segments.clear()
            self._bytes_in_use = 0

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: never leak /dev/shm segments
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


def publish_many(arena: SharedArena, payloads) -> list[ArenaTicket]:
    """Publish a micro-batch of payloads, rolling back on failure.

    Tickets stay **per-binary** — the micro-batched executor task
    receives a vector of ordinary tickets, so timeout/zombie handling
    and refcounting work per binary exactly as for per-item dispatch.
    If any publish fails (arena closed, OS refuses memory) the tickets
    already published are released before the error propagates.
    """
    tickets: list[ArenaTicket] = []
    try:
        for payload in payloads:
            tickets.append(arena.publish(payload))
    except Exception:
        for ticket in tickets:
            arena.release(ticket)
        raise
    return tickets


# ------------------------------------------------------------- worker side

#: segments this process has attached, by name — workers are long-lived,
#: so one attach per segment amortizes over every task it carries
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    with _ATTACH_LOCK:
        shm = _ATTACHED.get(name)
        if shm is None:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except (FileNotFoundError, OSError) as exc:
                raise ArenaError(f"arena segment {name} is gone: {exc}") from exc
            if multiprocessing.get_start_method(allow_none=True) not in (
                None, "fork",
            ):  # pragma: no cover - non-fork platforms
                # Under spawn, each child runs its own resource tracker,
                # which would unlink the parent's live segment when the
                # child exits.  Under fork the tracker is shared and its
                # registry set dedupes, so the parent's unlink stays the
                # single cleanup point.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            _ATTACHED[name] = shm
        return shm


def attach_view(ticket: ArenaTicket) -> memoryview:
    """Map *ticket* to a zero-copy view of its payload, fail-closed.

    Validates the slot header (magic, generation, length) against the
    ticket before exposing any payload byte; a freed, reused, or
    torn-down slot raises :class:`ArenaError`.  Call ``.release()`` on
    the returned view when done — the segment itself stays mapped for
    the life of the worker.
    """
    shm = _attach_segment(ticket.segment)
    if ticket.offset < 0 or ticket.offset + HEADER_SIZE + ticket.length > shm.size:
        raise ArenaError("ticket extends past its arena segment")
    magic, gen, length = _HEADER.unpack_from(shm.buf, ticket.offset)
    if magic != _MAGIC or gen != ticket.generation or length != ticket.length:
        raise ArenaError(
            "slot integrity check failed "
            f"(magic={magic!r} generation={gen} length={length}; "
            f"expected generation={ticket.generation} length={ticket.length})"
        )
    start = ticket.offset + HEADER_SIZE
    return memoryview(shm.buf)[start:start + ticket.length]


def attach_views(tickets) -> list[memoryview]:
    """Map a micro-batch of tickets to payload views, all-or-nothing.

    Either every ticket validates and every view is returned, or the
    views attached so far are released and the offending ticket's
    :class:`ArenaError` propagates — a partially-attached micro-batch
    can never produce a partially-inspected verdict vector.
    """
    views: list[memoryview] = []
    try:
        for ticket in tickets:
            views.append(attach_view(ticket))
    except Exception:
        for view in views:
            view.release()
        raise
    return views


def detach_all() -> None:
    """Close every segment this process attached (tests / worker exit)."""
    with _ATTACH_LOCK:
        for shm in _ATTACHED.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - already closed
                pass
        _ATTACHED.clear()
