"""The long-lived inspection daemon: EnGarde as a serving front-end.

The paper frames EnGarde as a service the cloud provider runs
continuously for tenants; until now the repo only had one-shot CLI
batch.  :class:`InspectionDaemon` is the persistent front-end:

* it owns a **warm** :class:`~repro.service.batch.BatchInspector` (one
  long-lived EnGarde with its prescan/policy caches), a shared
  :class:`~repro.service.cache.InspectionCache`, a
  :class:`~repro.service.cache.ProvisioningVerdictCache`, and an
  :class:`~repro.service.pool.EnclavePool` of pre-built, attestable
  enclaves,
* it serves the framed, versioned protocol of
  :mod:`repro.service.protocol` over any :mod:`repro.net` backend — the
  thread-safe in-memory :class:`~repro.net.QueueSocket` for hermetic
  tests (:meth:`connect_inproc`) and real TCP for ``repro serve``
  (:meth:`start_tcp`),
* every connection runs the paper's client protocol: attestation
  (quote binds the pooled enclave's measurement to the connection's
  channel key) → secure-channel setup → encrypted ``SUBMIT`` →
  authenticated verdict,
* it validates request/response **orderliness** per connection (a
  ``SUBMIT`` before the attested channel, a second ``ATTEST``, or an
  unknown verb is a typed protocol error, never undefined behaviour),
* ``STATUS`` and ``METRICS`` verbs expose health and a full JSON
  metrics dump (cache hit ratios, per-stage latency histograms,
  quarantine/backlog state, uptime, request counters),
* :meth:`stop` drains: in-flight inspections finish and answer, new
  connections are refused, and the warm state (caches, quarantine,
  pool) survives for the next :meth:`start`.

Fault coverage: the daemon adds **no new hook points** — its read and
write paths run through the same ``net.sock.send`` / ``net.sock.recv``
hooks as the provisioning wire, the attested channel runs through
``crypto.channel.send`` / ``crypto.channel.recv``, and every inspection
runs through ``service.batch.worker`` / ``service.batch.verdict`` — so
a seeded :class:`~repro.faults.plan.FaultPlan` soaks the daemon with
the existing 12-hook vocabulary.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field

from ..core.policy import PolicyRegistry
from ..core.provisioning import expected_mrenclave
from ..crypto import HmacDrbg
from ..crypto.channel import SecureChannel, ServerHandshake
from ..errors import (
    CryptoError,
    NetError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from ..faults.clock import Clock, SystemClock
from ..net import QueueSocket, TcpListener, queue_pair
from . import protocol as proto
from .batch import BatchInspector, BatchItemResult
from .cache import InspectionCache, ProvisioningVerdictCache
from .metrics import DaemonMetrics
from .pool import EnclavePool, PooledEnclave
from .sched import ZERO_SCHED
from .store import ZERO_STORE

__all__ = ["InspectionDaemon", "ZERO_SHARD"]

#: Always-present shard-identity schema for STATUS/METRICS, mirroring
#: the ``ZERO_RESILIENCE`` pattern: a fleetless daemon reports exactly
#: these zeroed fields, a fleet shard reports the same keys filled in —
#: dashboards never branch on key presence.
ZERO_SHARD = {
    "fleeted": False,
    "shard_id": "",
    "shard_index": 0,
    "fleet_size": 0,
}

#: counters pre-declared so the METRICS schema is stable from request one
_COUNTERS = tuple(
    f"requests.{name}" for name in proto.REQUEST_TYPES.values()
) + (
    "responses.sent", "errors.protocol", "errors.transport",
    "errors.inspection", "connections.opened", "connections.closed",
    "connections.refused", "submits.accepted", "submits.rejected",
    "submits.errors", "submits.cache_hits",
)


@dataclass
class _PendingSubmit:
    """One in-flight streamed submission (``SUBMIT_BEGIN`` .. last chunk).

    Content accumulates into a preallocated buffer and is hashed
    incrementally as chunks land, so the commitment check after the
    final chunk costs nothing extra and any corruption fails closed
    before inspection runs.
    """

    label: str
    total: int
    chunks: int
    digest: bytes
    buf: bytearray = field(default_factory=bytearray, repr=False)
    hasher: object = field(default_factory=hashlib.sha256, repr=False)
    received: int = 0
    seen: int = 0


@dataclass
class _Connection:
    """Daemon-side bookkeeping for one live client connection."""

    cid: int
    sock: object
    thread: threading.Thread | None = None
    #: set while a request is being processed (drained before shutdown)
    busy: bool = False
    state: str = "plain"  # plain -> secured -> closed
    entry: PooledEnclave | None = None
    channel: SecureChannel | None = field(default=None, repr=False)
    #: streamed submission being reassembled, if any
    pending: _PendingSubmit | None = field(default=None, repr=False)


class InspectionDaemon:
    """Thread-pooled socket server around a warm inspection stack."""

    def __init__(
        self,
        policies: PolicyRegistry,
        *,
        inspector: BatchInspector | None = None,
        inspector_mode: str = "serial",
        workers: int | None = None,
        shared_memory: bool = True,
        cache: InspectionCache | None = None,
        verdict_cache: ProvisioningVerdictCache | None = None,
        pool: EnclavePool | None = None,
        pool_size: int = 2,
        rsa_bits: int = 1024,
        heap_pages: int = 128,
        client_pages: int = 256,
        enclave_pages: int = 0x4000,
        read_timeout: float = 10.0,
        max_connections: int = 64,
        retries: int = 0,
        deadline: float | None = None,
        quarantine_threshold: int | None = None,
        scheduler: str = "per-item",
        clock: Clock | None = None,
        rng: HmacDrbg | None = None,
        metrics: DaemonMetrics | None = None,
        shard_id: str = "",
        shard_index: int = 0,
        fleet_size: int = 0,
        store=None,
    ) -> None:
        self.policies = policies
        #: fleet identity (zeroed when fleetless — see ``ZERO_SHARD``)
        self.shard_id = shard_id
        self.shard_index = shard_index
        self.fleet_size = fleet_size
        #: shared on-disk VerdictStore, if this daemon is store-backed
        self.store = store
        self.clock = clock or SystemClock()
        self.rng = rng or HmacDrbg(b"inspection-daemon")
        self.read_timeout = read_timeout
        self.max_connections = max_connections
        self.cache = cache if cache is not None else InspectionCache(4096)
        self.verdict_cache = (
            verdict_cache if verdict_cache is not None
            else ProvisioningVerdictCache(1024)
        )
        # ``serial`` (default): one warm EnGarde, daemon threads funnel
        # through ``_inspect_lock``.  ``process``: the zero-copy
        # shared-memory executor — handler threads submit concurrently
        # and misses fan out across cores (see docs/PERFORMANCE.md,
        # "Zero-copy executor").
        self.inspector = inspector or BatchInspector(
            policies,
            mode=inspector_mode,
            workers=workers,
            shared_memory=shared_memory,
            cache=self.cache,
            retries=retries,
            deadline=deadline,
            quarantine_threshold=quarantine_threshold,
            clock=self.clock,
            scheduler=scheduler,
        )
        if inspector is not None and inspector.cache is not None:
            self.cache = inspector.cache
        self.pool = pool or EnclavePool(
            policies,
            size=pool_size,
            rsa_bits=rsa_bits,
            heap_pages=heap_pages,
            client_pages=client_pages,
            enclave_pages=enclave_pages,
            concurrency=max_connections,
            rng=self.rng.fork(b"pool"),
        )
        self.metrics = metrics or DaemonMetrics()
        self.metrics.touch(*_COUNTERS)
        self.policy_digest = hashlib.sha256(
            policies.digest_material()
        ).hexdigest()

        self._accepting = False
        self._stopping = threading.Event()
        self._listener: TcpListener | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_lock = threading.Lock()
        self._connections: dict[int, _Connection] = {}
        self._conn_seq = 0
        self._inspect_lock = threading.Lock()
        #: cumulative dispatch accounting merged from every batch this
        #: daemon ran — always the full ``ZERO_SCHED`` key set
        self._dispatch_totals = dict(ZERO_SCHED)
        self._dispatch_totals["scheduler"] = self.inspector.scheduler
        self._dispatch_lock = threading.Lock()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------ lifecycle

    @property
    def accepting(self) -> bool:
        return self._accepting and not self._stopping.is_set()

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_at

    def start(self) -> None:
        """Begin accepting in-process connections (idempotent; re-armable
        after :meth:`stop`)."""
        if self._accepting:
            return
        self._stopping.clear()
        self._started_at = time.monotonic()
        self._accepting = True

    def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Also listen on real TCP; returns the bound (host, port)."""
        self.start()
        if self._listener is not None:
            raise ServiceError("daemon is already listening on TCP")
        self._listener = TcpListener(host, port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="daemon-accept", daemon=True
        )
        self._accept_thread.start()
        return self._listener.host, self._listener.port

    def connect_inproc(self, *, timeout: float | None = None) -> QueueSocket:
        """Open one hermetic in-memory connection; returns the client side."""
        if not self.accepting:
            raise NetError(
                "daemon is not accepting connections"
                + (" (stopping)" if self._stopping.is_set() else "")
            )
        client_side, server_side = queue_pair(
            "sdk", "daemon", timeout=timeout
        )
        server_side.settimeout(self.read_timeout)
        self._spawn(server_side)
        return client_side

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._stopping.is_set():
            try:
                sock = listener.accept(timeout=0.2)
            except NetError:
                if listener.closed:
                    return
                continue
            if not self.accepting:
                sock.close()
                continue
            sock.settimeout(self.read_timeout)
            self._spawn(sock)

    def _spawn(self, sock) -> None:
        with self._conn_lock:
            if len(self._connections) >= self.max_connections:
                refused = True
            else:
                refused = False
                self._conn_seq += 1
                conn = _Connection(cid=self._conn_seq, sock=sock)
                self._connections[conn.cid] = conn
        if refused:
            self.metrics.inc("connections.refused")
            try:
                sock.send(proto.encode_error(
                    "accept",
                    "ServiceError: connection refused — daemon is at "
                    f"its {self.max_connections}-connection limit",
                ))
            except ReproError:
                pass
            sock.close()
            return
        thread = threading.Thread(
            target=self._serve_connection, args=(conn,),
            name=f"daemon-conn-{conn.cid}", daemon=True,
        )
        conn.thread = thread
        self.metrics.inc("connections.opened")
        thread.start()

    def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight requests, refuse new work.

        With ``drain=True`` every request already being processed is
        answered before its connection closes; idle connections are
        closed immediately.  ``drain=False`` closes everything at once.
        The warm state — caches, quarantine, enclave pool, metrics —
        survives, and :meth:`start` re-arms the same daemon.
        """
        self._stopping.set()
        self._accepting = False
        if self._listener is not None:
            self._listener.close()
        with self._conn_lock:
            conns = list(self._connections.values())
        for conn in conns:
            if not drain or not conn.busy:
                conn.sock.close()
        deadline = time.monotonic() + timeout
        for conn in conns:
            if conn.thread is None:
                continue
            remaining = max(deadline - time.monotonic(), 0.05)
            conn.thread.join(remaining)
            if conn.thread.is_alive():
                conn.sock.close()
                conn.thread.join(1.0)
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)
            self._accept_thread = None
        self._listener = None
        with self._conn_lock:
            self._connections.clear()

    def __enter__(self) -> "InspectionDaemon":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ----------------------------------------------------------- connection

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            self._handle_plain(conn)
        except (NetError, OSError) as exc:
            # Timeout, disconnect, or shutdown wake-up: nothing to answer.
            self.metrics.inc("errors.transport")
            self._note_error(conn, "transport", exc, reply=False)
        except (ProtocolError, CryptoError) as exc:
            self.metrics.inc("errors.protocol")
            self._note_error(conn, "protocol", exc, reply=True)
        except ReproError as exc:
            self.metrics.inc("errors.protocol")
            self._note_error(conn, "machinery", exc, reply=True)
        finally:
            conn.state = "closed"
            if conn.entry is not None:
                self.pool.checkin(conn.entry)
                conn.entry = None
            conn.sock.close()
            with self._conn_lock:
                self._connections.pop(conn.cid, None)
            self.metrics.inc("connections.closed")

    def _note_error(self, conn, stage: str, exc: BaseException, *, reply: bool) -> None:
        if reply:
            try:
                conn.sock.send(proto.encode_error(
                    stage, f"{type(exc).__name__}: {exc}"
                ))
            except (ReproError, OSError):
                pass

    def _handle_plain(self, conn: _Connection) -> None:
        """The plaintext phase of one connection's state machine."""
        sock = conn.sock
        while not self._stopping.is_set():
            t0 = time.perf_counter()
            frame = sock.recv()
            mtype, body = proto.decode_message(frame)
            verb = proto.MESSAGE_TYPES[mtype]
            self.metrics.inc(f"requests.{verb}")
            if mtype == proto.T_HELLO:
                self._reply(sock, proto.T_HELLO_OK, json.dumps(
                    self.hello_info()
                ).encode())
            elif mtype == proto.T_STATUS:
                self._reply(sock, proto.T_STATUS_OK,
                            json.dumps(self.status()).encode())
            elif mtype == proto.T_METRICS:
                self._reply(sock, proto.T_METRICS_OK,
                            json.dumps(self.metrics_snapshot()).encode())
            elif mtype == proto.T_BYE:
                self._reply(sock, proto.T_BYE_OK, b"")
                return
            elif mtype == proto.T_ATTEST:
                self._attest_and_secure(conn, body, t0)
                return
            elif mtype in (proto.T_SUBMIT, proto.T_SUBMIT_BEGIN,
                           proto.T_SUBMIT_CHUNK):
                raise ProtocolError(
                    f"out-of-order {verb}: the attested secure channel must "
                    "be established first (ATTEST, then key exchange)"
                )
            else:
                raise ProtocolError(
                    f"client sent response verb {verb} — protocol "
                    "violation (requests only)"
                )
            self.metrics.observe("request", time.perf_counter() - t0)

    def _attest_and_secure(self, conn: _Connection, challenge: bytes, t0: float) -> None:
        """ATTEST: quote a pooled enclave, run the key exchange, then serve
        the secured phase until BYE/disconnect."""
        if not 8 <= len(challenge) <= 64:
            raise ProtocolError(
                f"attestation challenge must be 8..64 bytes, got {len(challenge)}"
            )
        conn.entry = self.pool.checkout()
        quote = self.pool.quoting_enclave.quote(conn.entry.report, challenge)
        self._reply(conn.sock, proto.T_ATTEST_OK, proto.quote_to_bytes(quote))
        self.metrics.observe("attest", time.perf_counter() - t0)

        t1 = time.perf_counter()
        handshake = ServerHandshake(
            conn.sock, self.rng.fork(b"conn-%d" % conn.cid),
            keypair=conn.entry.keypair,
        )
        handshake.send_public_key()
        conn.channel = handshake.complete()
        conn.state = "secured"
        self.metrics.observe("handshake", time.perf_counter() - t1)
        self.metrics.observe("request", time.perf_counter() - t0)
        self._handle_secured(conn)

    def _handle_secured(self, conn: _Connection) -> None:
        """The secured phase: every frame is an authenticated channel
        record whose plaintext is a protocol message."""
        channel = conn.channel
        assert channel is not None
        while not self._stopping.is_set():
            t0 = time.perf_counter()
            record = channel.recv()
            try:
                self._dispatch_secured(conn, channel, record, t0)
            except ProtocolError as exc:
                # The channel itself is intact — answer the violation
                # through it (authenticated), then hang up.
                self.metrics.inc("errors.protocol")
                channel.send(proto.encode_error(
                    "protocol", f"{type(exc).__name__}: {exc}"
                ))
                return
            if conn.state == "closed":
                return

    def _dispatch_secured(self, conn: _Connection, channel: SecureChannel,
                          record: bytes, t0: float) -> None:
        mtype, body = proto.decode_message(record)
        verb = proto.MESSAGE_TYPES[mtype]
        self.metrics.inc(f"requests.{verb}")
        if mtype == proto.T_SUBMIT:
            if conn.pending is not None:
                raise ProtocolError(
                    "whole-body SUBMIT inside a streamed submission — "
                    "finish or abandon the SUBMIT_BEGIN stream first"
                )
            label, raw = proto.decode_submit(body)
            self._answer_submit(conn, channel, label, raw)
        elif mtype == proto.T_SUBMIT_BEGIN:
            if conn.pending is not None:
                raise ProtocolError(
                    "out-of-order SUBMIT_BEGIN: a streamed submission is "
                    "already in flight on this connection"
                )
            label, total, chunks, digest = proto.decode_submit_begin(body)
            conn.pending = _PendingSubmit(
                label=label, total=total, chunks=chunks, digest=digest,
                buf=bytearray(),
            )
            channel.send(proto.encode_message(
                proto.T_SUBMIT_OK, proto.encode_chunk_ack(0)
            ))
            self.metrics.inc("responses.sent")
        elif mtype == proto.T_SUBMIT_CHUNK:
            pending = conn.pending
            if pending is None:
                raise ProtocolError(
                    "out-of-order SUBMIT_CHUNK: no SUBMIT_BEGIN announced "
                    "a streamed submission on this connection"
                )
            pending.seen += 1
            pending.received += len(body)
            if pending.received > pending.total:
                conn.pending = None
                raise ProtocolError(
                    f"streamed submit overrun: announced {pending.total} "
                    f"bytes, received {pending.received}"
                )
            pending.buf += body
            pending.hasher.update(body)
            if pending.seen < pending.chunks:
                channel.send(proto.encode_message(
                    proto.T_CHUNK_OK, proto.encode_chunk_ack(pending.received)
                ))
                self.metrics.inc("responses.sent")
            else:
                conn.pending = None
                if pending.received != pending.total:
                    raise ProtocolError(
                        f"streamed submit truncated: announced "
                        f"{pending.total} bytes, received {pending.received}"
                    )
                if pending.hasher.digest() != pending.digest:
                    raise ProtocolError(
                        "streamed submit digest mismatch: reassembled "
                        "content does not match the SUBMIT_BEGIN commitment"
                    )
                self._answer_submit(
                    conn, channel, pending.label, bytes(pending.buf)
                )
        elif mtype == proto.T_STATUS:
            channel.send(proto.encode_message(
                proto.T_STATUS_OK, json.dumps(self.status()).encode()
            ))
            self.metrics.inc("responses.sent")
        elif mtype == proto.T_METRICS:
            channel.send(proto.encode_message(
                proto.T_METRICS_OK,
                json.dumps(self.metrics_snapshot()).encode(),
            ))
            self.metrics.inc("responses.sent")
        elif mtype == proto.T_BYE:
            channel.send(proto.encode_message(proto.T_BYE_OK))
            self.metrics.inc("responses.sent")
            conn.state = "closed"
            return
        elif mtype == proto.T_ATTEST:
            raise ProtocolError(
                "out-of-order ATTEST: this connection already holds an "
                "attested channel"
            )
        else:
            raise ProtocolError(
                f"unexpected {verb} inside the secured phase"
            )
        self.metrics.observe("request", time.perf_counter() - t0)

    def _reply(self, sock, mtype: int, body: bytes = b"") -> None:
        sock.send(proto.encode_message(mtype, body))
        self.metrics.inc("responses.sent")

    def _answer_submit(self, conn: _Connection, channel: SecureChannel,
                       label: str, raw: bytes) -> None:
        """Run one inspection and answer VERDICT/ERROR over *channel* —
        shared by whole-body SUBMIT and the final streamed chunk, so the
        verdict bytes are identical either way."""
        conn.busy = True
        try:
            item = self._inspect(label, raw)
            if item.report is None:
                self.metrics.inc("errors.inspection")
                channel.send(proto.encode_error(
                    "inspection", item.error or
                    "ServiceError: inspection produced no verdict",
                ))
            else:
                channel.send(proto.encode_message(
                    proto.T_VERDICT, proto.encode_verdict(item)
                ))
            self.metrics.inc("responses.sent")
        finally:
            conn.busy = False

    # ----------------------------------------------------------- inspection

    def _inspect(self, label: str, raw: bytes) -> BatchItemResult:
        """One verdict through the warm inspector (still byte-identical to
        the serial EnGarde oracle — the batch differential tests pin it)."""
        t0 = time.perf_counter()
        if self.inspector.mode == "serial":
            # one warm EnGarde: its CycleMeter phase bookkeeping cannot
            # run two inspections at once
            with self._inspect_lock:
                report = self.inspector.inspect_batch([(label, raw)])
        else:
            # pooled inspector: inspect_batch is thread-safe, so handler
            # threads fan submissions across the worker pool concurrently
            report = self.inspector.inspect_batch([(label, raw)])
        self.metrics.observe("inspect", time.perf_counter() - t0)
        self._merge_dispatch(report.summary.dispatch)
        item = report.results[0]
        if item.error is not None:
            self.metrics.inc("submits.errors")
        elif item.accepted:
            self.metrics.inc("submits.accepted")
        else:
            self.metrics.inc("submits.rejected")
        if item.cache_hit:
            self.metrics.inc("submits.cache_hits")
        return item

    # -------------------------------------------------------------- surface

    def hello_info(self) -> dict:
        """The ``HELLO_OK`` body: what a client needs before attesting."""
        return {
            "server": "repro-inspection-daemon",
            "protocol_version": proto.PROTOCOL_VERSION,
            "policy_digest": self.policy_digest,
            "policies": self.policies.names(),
            "geometry": {
                "heap_pages": self.pool.heap_pages,
                "client_pages": self.pool.client_pages,
                "enclave_pages": self.pool.enclave_pages,
            },
            "uptime_seconds": round(self.uptime_seconds, 3),
        }

    def announce(self, host: str | None = None, port: int | None = None) -> dict:
        """Out-of-band bootstrap record (the IAS-published analogue):
        endpoint, device public key, policy digest, geometry."""
        key = self.pool.quoting_enclave.device_public_key
        doc = {
            "host": host, "port": port,
            "protocol_version": proto.PROTOCOL_VERSION,
            "policy_digest": self.policy_digest,
            "device_key": {"n": f"{key.n:x}", "e": key.e},
            "geometry": self.hello_info()["geometry"],
        }
        if self._listener is not None:
            doc["host"] = host or self._listener.host
            doc["port"] = port or self._listener.port
        return doc

    def expected_mrenclave(self) -> bytes:
        """What every pooled enclave must measure to (for tests)."""
        return expected_mrenclave(
            self.policies,
            heap_pages=self.pool.heap_pages,
            client_pages=self.pool.client_pages,
            enclave_pages=self.pool.enclave_pages,
        )

    def _merge_dispatch(self, dispatch: dict) -> None:
        """Fold one batch's dispatch block into the cumulative totals."""
        with self._dispatch_lock:
            totals = self._dispatch_totals
            for key, value in dispatch.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if key == "break_even_seconds":
                    totals[key] = value  # latest model estimate, not a sum
                else:
                    totals[key] = round(totals[key] + value, 6)

    def sched_info(self) -> dict:
        """Always-present dispatch accounting (``ZERO_SCHED`` schema)."""
        with self._dispatch_lock:
            return dict(self._dispatch_totals)

    def shard_info(self) -> dict:
        """Always-present shard identity (``ZERO_SHARD`` when fleetless)."""
        if not self.shard_id and self.fleet_size == 0:
            return dict(ZERO_SHARD)
        return {
            "fleeted": True,
            "shard_id": self.shard_id,
            "shard_index": self.shard_index,
            "fleet_size": self.fleet_size,
        }

    def store_info(self) -> dict:
        """Always-present store stats (``ZERO_STORE`` when storeless)."""
        if self.store is None:
            return dict(ZERO_STORE)
        return self.store.stats()

    def status(self) -> dict:
        """The ``/healthz``-style summary served by ``STATUS``."""
        quarantine = self.inspector.quarantine
        with self._conn_lock:
            active = len(self._connections)
            inflight = sum(1 for c in self._connections.values() if c.busy)
        return {
            "status": "stopping" if self._stopping.is_set() else "ok",
            "protocol_version": proto.PROTOCOL_VERSION,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "accepting": self.accepting,
            "connections_active": active,
            "inflight_requests": inflight,
            "backlog": inflight,
            "quarantined_keys": len(quarantine) if quarantine else 0,
            "cache_entries": len(self.cache) if self.cache is not None else 0,
            "shard": self.shard_info(),
            "store": self.store_info(),
            "sched": self.sched_info(),
        }

    def metrics_snapshot(self) -> dict:
        """The full ``METRICS`` dump (see docs/DAEMON.md for the schema)."""
        quarantine = self.inspector.quarantine
        snap = {
            "daemon": {
                "protocol_version": proto.PROTOCOL_VERSION,
                "uptime_seconds": round(self.uptime_seconds, 3),
                "accepting": self.accepting,
                "policy_digest": self.policy_digest,
            },
            "pool": self.pool.stats(),
            "cache": (
                self.cache.stats().as_dict() if self.cache is not None else None
            ),
            "verdict_cache": self.verdict_cache.stats().as_dict(),
            "quarantine": {
                "keys": len(quarantine) if quarantine else 0,
                "threshold": quarantine.threshold if quarantine else None,
            },
            # The stable (always-present, zeroed when idle) resilience
            # schema BatchSummary shares; see docs/RESILIENCE.md.
            "resilience": self.inspector.resilience_stats(),
            # Same pattern for fleet identity, the on-disk verdict
            # store, and scheduler dispatch accounting; see
            # docs/FLEET.md and docs/PERFORMANCE.md.
            "shard": self.shard_info(),
            "store": self.store_info(),
            "sched": self.sched_info(),
        }
        snap.update(self.metrics.snapshot())
        snap["status"] = self.status()
        return snap
