"""The chaos soak: randomized fault plans vs. the fail-closed contract.

One soak run takes a corpus of binaries whose *clean* verdicts are known,
then re-inspects the whole corpus once per seed under a randomized
:class:`~repro.faults.plan.FaultPlan` and checks the only three properties
that matter:

1. **No false accepts** — a faulted run may accept a binary only if the
   un-faulted inspection of the same bytes accepts it.  Every other
   outcome of a fault must be a REJECT or a typed error.
2. **No hangs** — injected hangs/delays burn a shared
   :class:`~repro.faults.clock.FakeClock`, so a correct service finishes
   in bounded *real* time; a seed exceeding ``max_wall_seconds`` of wall
   clock is reported as a hang.
3. **No untyped failures** — every errored item must carry the typed
   ``ExcName: detail`` text the service layer produces (and the batch
   report must still serialize to valid JSON).

Everything is derived from the seed: print it, and
``repro chaos --seeds <seed>`` replays the identical run (see
``docs/RESILIENCE.md``).  Both the ``repro chaos`` CLI subcommand and
``benchmarks/bench_chaos_soak.py`` are thin wrappers over
:func:`run_soak`; the CI chaos job calls the CLI with a hard timeout.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field

from ..core.policy import PolicyRegistry
from ..service.batch import BatchInspector, BatchReport
from .clock import FakeClock
from .hooks import injected
from .plan import FaultPlan

__all__ = [
    "PIPELINE_HOOKS", "ChaosViolation", "SeedOutcome", "SoakResult",
    "run_soak",
]

#: hook points a serial batch inspection actually flows through
PIPELINE_HOOKS = (
    "elf.reader",
    "x86.decoder",
    "sgx.epc.alloc",
    "service.batch.worker",
    "service.batch.verdict",
)

#: errored items must carry typed ``ExcName: detail`` text
_TYPED_ERROR = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(Error|Exception|Fault)\b"
    r"|^inspection exceeded "  # the pool-timeout text is typed by construction
)


@dataclass(frozen=True)
class ChaosViolation:
    """One broken fail-closed property (the soak's unit of failure)."""

    seed: int
    kind: str          # false-accept | hang | untyped-error | uncaught | report-corrupt
    label: str         # corpus item label, or "<batch>" for whole-run failures
    detail: str


@dataclass
class SeedOutcome:
    """Accounting for one corpus pass under one randomized plan."""

    seed: int
    faults_fired: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    violations: list[ChaosViolation] = field(default_factory=list)


@dataclass
class SoakResult:
    """Everything :func:`run_soak` measured, across all seeds."""

    items: int
    outcomes: list[SeedOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def violations(self) -> list[ChaosViolation]:
        return [v for o in self.outcomes for v in o.violations]

    @property
    def faults_fired(self) -> int:
        return sum(o.faults_fired for o in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary_lines(self) -> list[str]:
        lines = [
            f"chaos soak: {len(self.outcomes)} seed(s) x {self.items} "
            f"binaries, {self.faults_fired} faults fired, "
            f"{self.wall_seconds:.2f}s wall",
        ]
        for o in self.outcomes:
            lines.append(
                f"  seed {o.seed}: {o.faults_fired} faults, "
                f"{o.accepted} accepted / {o.rejected} rejected / "
                f"{o.errors} errors, {o.wall_seconds:.2f}s"
                + (f", {len(o.violations)} VIOLATION(S)" if o.violations else "")
            )
        for v in self.violations:
            lines.append(
                f"  VIOLATION[{v.kind}] seed={v.seed} item={v.label}: {v.detail}"
            )
        if not self.ok:
            seeds = sorted({v.seed for v in self.violations})
            lines.append(
                "  reproduce with: repro chaos --seeds "
                + ",".join(str(s) for s in seeds)
            )
        return lines


def run_soak(
    policies: PolicyRegistry,
    corpus: list[tuple[str, bytes]],
    *,
    seeds=(0, 1, 2, 3, 4),
    n_specs: int = 8,
    probability: float = 0.35,
    retries: int = 1,
    deadline: float = 5.0,
    quarantine_threshold: int | None = None,
    max_wall_seconds: float = 60.0,
    hooks=PIPELINE_HOOKS,
) -> SoakResult:
    """Soak *corpus* under one randomized fault plan per seed.

    The clean baseline (no plan installed) is computed first with the
    same serial inspector configuration; each seeded pass then compares
    its verdicts against it.  All timing — backoff, deadlines, injected
    hangs — runs on a :class:`FakeClock` shared between plan and
    inspector, so a hang fault consumes fake seconds and trips the
    per-item deadline instead of stalling the soak.
    """
    t0 = time.perf_counter()

    baseline = BatchInspector(policies, mode="serial", cache=False)
    clean = {}
    for r in baseline.inspect_batch(corpus).results:
        clean[r.label] = r.accepted

    result = SoakResult(items=len(corpus))
    for seed in seeds:
        clock = FakeClock()
        plan = FaultPlan.randomized(
            seed,
            hooks=hooks,
            n_specs=n_specs,
            probability=probability,
            clock=clock,
            hang_seconds=max(deadline * 4, 1.0),
        )
        inspector = BatchInspector(
            policies,
            mode="serial",
            retries=retries,
            backoff_base=0.05,
            deadline=deadline,
            quarantine_threshold=quarantine_threshold,
            clock=clock,
        )
        outcome = SeedOutcome(seed=seed)
        result.outcomes.append(outcome)
        seed_t0 = time.perf_counter()
        try:
            with injected(plan):
                report = inspector.inspect_batch(corpus)
        except Exception as exc:  # noqa: BLE001 — this is the property under test
            outcome.wall_seconds = time.perf_counter() - seed_t0
            outcome.faults_fired = len(plan.events)
            outcome.violations.append(ChaosViolation(
                seed=seed, kind="uncaught", label="<batch>",
                detail=f"{type(exc).__name__}: {exc}",
            ))
            continue
        outcome.wall_seconds = time.perf_counter() - seed_t0
        outcome.faults_fired = len(plan.events)
        _check_seed(outcome, report, clean, seed, max_wall_seconds)
    result.wall_seconds = time.perf_counter() - t0
    return result


def _check_seed(
    outcome: SeedOutcome,
    report: BatchReport,
    clean: dict[str, bool],
    seed: int,
    max_wall_seconds: float,
) -> None:
    if outcome.wall_seconds > max_wall_seconds:
        outcome.violations.append(ChaosViolation(
            seed=seed, kind="hang", label="<batch>",
            detail=(
                f"seed pass took {outcome.wall_seconds:.1f}s wall "
                f"(bound {max_wall_seconds}s) — an injected hang leaked "
                "onto the real clock"
            ),
        ))
    for r in report.results:
        if r.error is not None:
            outcome.errors += 1
            if not _TYPED_ERROR.match(r.error):
                outcome.violations.append(ChaosViolation(
                    seed=seed, kind="untyped-error", label=r.label,
                    detail=f"error text is not typed: {r.error!r}",
                ))
        elif r.accepted:
            outcome.accepted += 1
            if not clean.get(r.label, False):
                outcome.violations.append(ChaosViolation(
                    seed=seed, kind="false-accept", label=r.label,
                    detail=(
                        "faulted inspection ACCEPTED a binary the clean "
                        "inspection rejects"
                    ),
                ))
        else:
            outcome.rejected += 1
    try:
        json.loads(report.to_json())
    except Exception as exc:  # noqa: BLE001 — schema validity is the property
        outcome.violations.append(ChaosViolation(
            seed=seed, kind="report-corrupt", label="<batch>",
            detail=f"BatchReport.to_json() is not valid JSON: {exc}",
        ))
