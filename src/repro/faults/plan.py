"""Seeded, deterministic fault plans.

A :class:`FaultPlan` maps named hook points (see
:data:`repro.faults.hooks.HOOK_POINTS`) to :class:`FaultSpec` entries.
Each spec describes *one* way a layer can misbehave:

========== =============================================================
kind       effect at the hook point
========== =============================================================
raise      raise the call site's typed error immediately
truncate   cut the payload short (malformed frame / half-written file)
bitflip    flip PRNG-chosen bits in the payload (memory/wire corruption)
delay      sleep ``delay_seconds`` on the plan's clock, then proceed
drop       make the payload vanish (lost frame / swallowed message)
hang       sleep ``hang_seconds`` — simulating a stuck stage — then fail
========== =============================================================

Whether a spec fires on a given call is decided by a per-spec PRNG seeded
from ``(plan seed, spec index, hook, kind)``: two runs of the same plan
over the same call sequence inject byte-identical faults, no matter what
other specs exist.  ``after`` skips the first N eligible calls (so a
fault can hit *mid-stream*), ``probability`` thins firing, and
``max_triggers`` bounds how often a spec fires.

Plans serialize to JSON (:meth:`FaultPlan.to_json`) so a failing chaos
run can print everything needed to replay it.
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import asdict, dataclass, field

from .clock import Clock, SystemClock

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultSpec"]

FAULT_KINDS = ("raise", "truncate", "bitflip", "delay", "drop", "hang")


@dataclass(frozen=True)
class FaultSpec:
    """One way one hook point misbehaves."""

    hook: str
    kind: str
    #: chance the spec fires on each eligible call
    probability: float = 1.0
    #: skip the first ``after`` eligible calls (fire mid-stream)
    after: int = 0
    #: how many times the spec may fire in total (None = unlimited)
    max_triggers: int | None = 1
    #: sleep for ``delay`` faults, on the plan's clock
    delay_seconds: float = 0.01
    #: bits flipped per ``bitflip`` fault
    flip_bits: int = 1
    #: ``truncate`` keeps ``len(data) // truncate_divisor`` bytes
    truncate_divisor: int = 2
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError("max_triggers must be >= 1 or None")
        if self.flip_bits < 1 or self.truncate_divisor < 2:
            raise ValueError("flip_bits must be >= 1 and truncate_divisor >= 2")


@dataclass(frozen=True)
class FaultEvent:
    """One injection that actually happened (for logs and replay checks)."""

    hook: str
    kind: str
    #: 1-based index of the eligible call at this hook that fired
    call: int
    spec_index: int


@dataclass
class _SpecState:
    calls: int = 0
    triggers: int = 0


class FaultPlan:
    """A deterministic schedule of faults across named hook points.

    The plan carries its own :class:`~repro.faults.clock.Clock`; ``delay``
    and ``hang`` faults sleep on it, and the service's retry/deadline
    logic is expected to share it so injected hangs and measured
    deadlines observe the same timeline.
    """

    def __init__(
        self,
        specs: list[FaultSpec] | tuple[FaultSpec, ...] = (),
        *,
        seed: int = 0,
        clock: Clock | None = None,
        hang_seconds: float = 30.0,
    ) -> None:
        self.specs = list(specs)
        self.seed = seed
        self.clock = clock or SystemClock()
        self.hang_seconds = hang_seconds
        #: every fault that fired, in firing order
        self.events: list[FaultEvent] = []
        self._lock = threading.Lock()
        self._states = [_SpecState() for _ in self.specs]
        self._rngs = [
            random.Random(f"{seed}:{i}:{s.hook}:{s.kind}")
            for i, s in enumerate(self.specs)
        ]
        self._hooked = frozenset(s.hook for s in self.specs)

    # ------------------------------------------------------------------

    def hooks_used(self) -> frozenset[str]:
        return self._hooked

    def decide(self, hook: str) -> tuple[FaultSpec, random.Random] | None:
        """Should a fault fire for this call at *hook*?

        Every spec matching *hook* counts the call; the first spec whose
        trigger conditions are met fires (and is recorded).  Returns the
        firing spec plus its PRNG (for payload mutations), or ``None``.
        """
        if hook not in self._hooked:
            return None
        with self._lock:
            fired: tuple[FaultSpec, random.Random] | None = None
            for i, spec in enumerate(self.specs):
                if spec.hook != hook:
                    continue
                state = self._states[i]
                state.calls += 1
                if fired is not None:
                    continue
                if state.calls <= spec.after:
                    continue
                if spec.max_triggers is not None and state.triggers >= spec.max_triggers:
                    continue
                rng = self._rngs[i]
                if spec.probability < 1.0 and rng.random() >= spec.probability:
                    continue
                state.triggers += 1
                self.events.append(
                    FaultEvent(hook=hook, kind=spec.kind, call=state.calls, spec_index=i)
                )
                fired = (spec, rng)
            return fired

    def reset(self) -> None:
        """Forget call/trigger counts and the event log (PRNGs re-seed)."""
        with self._lock:
            self.events.clear()
            self._states = [_SpecState() for _ in self.specs]
            self._rngs = [
                random.Random(f"{self.seed}:{i}:{s.hook}:{s.kind}")
                for i, s in enumerate(self.specs)
            ]

    # ------------------------------------------------------ payload ops

    @staticmethod
    def truncate(data: bytes, spec: FaultSpec) -> bytes:
        return data[: len(data) // spec.truncate_divisor]

    @staticmethod
    def bitflip(data: bytes, spec: FaultSpec, rng: random.Random) -> bytes:
        if not data:
            return data
        out = bytearray(data)
        for _ in range(spec.flip_bits):
            pos = rng.randrange(len(out))
            out[pos] ^= 1 << rng.randrange(8)
        return bytes(out)

    # ------------------------------------------------------------- JSON

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "hang_seconds": self.hang_seconds,
                "specs": [asdict(s) for s in self.specs],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, payload: str, *, clock: Clock | None = None) -> "FaultPlan":
        doc = json.loads(payload)
        return cls(
            [FaultSpec(**s) for s in doc.get("specs", [])],
            seed=doc.get("seed", 0),
            clock=clock,
            hang_seconds=doc.get("hang_seconds", 30.0),
        )

    # ------------------------------------------------------- generators

    @classmethod
    def randomized(
        cls,
        seed: int,
        *,
        hooks: tuple[str, ...],
        kinds: tuple[str, ...] = FAULT_KINDS,
        n_specs: int = 6,
        probability: float = 0.25,
        clock: Clock | None = None,
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """A chaos-soak plan: ``n_specs`` specs drawn uniformly by *seed*."""
        rng = random.Random(f"fault-plan:{seed}")
        specs = [
            FaultSpec(
                hook=rng.choice(hooks),
                kind=rng.choice(kinds),
                probability=probability,
                after=rng.randrange(4),
                max_triggers=rng.randrange(1, 4),
                flip_bits=rng.randrange(1, 4),
            )
            for _ in range(n_specs)
        ]
        return cls(specs, seed=seed, clock=clock, hang_seconds=hang_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
            f"fired={len(self.events)}>"
        )
