"""The global fault-injection registry and the ``fault_hook`` call sites use.

Production layers call :func:`fault_hook` at the points where hostile
inputs or broken machinery could bite.  With no plan installed the hook
is a single ``None`` check returning its payload untouched — verdicts
and wire bytes are exactly the uninjected ones (the differential tests
pin this).  With a plan installed (:func:`install` /
:func:`injected`), the plan decides deterministically whether this call
misbehaves.

Contract at every call site::

    data = fault_hook("layer.point", data, error=TypedError)
    if data is DROP:
        ...  # the payload vanished; fail closed locally

* ``raise`` and ``hang`` raise *error* (the site's own typed exception,
  so the layers above convert the failure exactly as they convert real
  ones); ``hang`` sleeps ``plan.hang_seconds`` on the plan's clock
  first, so a shared fake clock sees the stall.
* ``truncate`` / ``bitflip`` return a mutated copy of the payload; on a
  payload-less hook (``data is None``) they degrade to ``raise``.
* ``drop`` returns the :data:`DROP` sentinel (or degrades to ``raise``
  when the payload is ``None``).
* ``delay`` sleeps and returns the payload untouched.

Every raised exception's message carries ``[fault:<hook>:<kind>]`` so a
failure can always be traced to its originating stage.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import InjectedFault
from .plan import FaultPlan, FaultSpec

__all__ = [
    "DROP", "HOOK_POINTS", "active_plan", "fault_hook", "injected",
    "install", "uninstall", "wants",
]

#: every hook point threaded through the layers (see docs/RESILIENCE.md)
HOOK_POINTS = (
    "elf.reader",                 # raw image entering ELF validation
    "x86.decoder",                # per-instruction, inside the decode loop
    "crypto.channel.send",        # assembled record leaving the channel
    "crypto.channel.recv",        # record arriving before MAC verification
    "net.sock.send",              # framed message entering the wire
    "net.sock.recv",              # framed message leaving the wire
    "core.provisioning.handshake",  # RSA key exchange, both phases
    "core.provisioning.record",   # provider-side content record receive
    "sgx.epc.alloc",              # EPC page allocation (eviction pressure)
    "sgx.paging.unseal",          # ELDU unseal of an evicted page
    "service.batch.worker",       # one worker attempt on one binary
    "service.batch.verdict",      # verdict wire bytes before caching
)

#: sentinel returned when a ``drop`` fault swallows the payload
DROP = object()

_PLAN: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Make *plan* the process-wide active plan (replacing any other)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    return _PLAN


@contextmanager
def injected(plan: FaultPlan):
    """``with injected(plan): ...`` — install for the block, then restore."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def wants(point: str) -> bool:
    """Cheap pre-check for hot loops: does any active spec watch *point*?"""
    plan = _PLAN
    return plan is not None and point in plan.hooks_used()


def fault_hook(point: str, data: bytes | None = None, *, error=None):
    """Possibly inject a fault at *point*; see the module docstring."""
    plan = _PLAN
    if plan is None:
        return data
    decision = plan.decide(point)
    if decision is None:
        return data
    spec, rng = decision
    kind = spec.kind
    if kind == "delay":
        plan.clock.sleep(spec.delay_seconds)
        return data
    if kind == "truncate" and data is not None:
        return FaultPlan.truncate(data, spec)
    if kind == "bitflip" and data is not None:
        return FaultPlan.bitflip(data, spec, rng)
    if kind == "drop" and data is not None:
        return DROP
    if kind == "hang":
        plan.clock.sleep(plan.hang_seconds)
    _raise(point, spec, error)
    return data  # pragma: no cover - _raise always raises


def _raise(point: str, spec: FaultSpec, error) -> None:
    detail = spec.message or "injected fault"
    message = f"[fault:{point}:{spec.kind}] {detail}"
    if error is None:
        raise InjectedFault(message, hook=point, kind=spec.kind)
    raise error(message)
