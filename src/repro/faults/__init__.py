"""Deterministic fault injection for resilience testing.

The paper's trust argument only holds if inspection *fails closed*: no
malformed input, dropped frame, crashed worker, or hung stage may ever
surface as a spurious ACCEPT.  This package provides the machinery to
provoke exactly those failures on demand and deterministically:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  seeded per-spec PRNGs, JSON round-trip;
* :mod:`repro.faults.hooks` — the process-global registry and the
  ``fault_hook`` call sites threaded through the layers;
* :mod:`repro.faults.clock` — injectable real/fake clocks shared by
  fault delays and the service's retry/deadline logic;
* :mod:`repro.faults.chaos` — the randomized chaos-soak runner behind
  ``python -m repro chaos`` (imported lazily; it depends on the service
  layer, which itself uses this package).

See ``docs/RESILIENCE.md`` for the hook-point catalogue and replay
instructions.
"""

from .clock import Clock, FakeClock, SystemClock
from .hooks import (
    DROP,
    HOOK_POINTS,
    active_plan,
    fault_hook,
    injected,
    install,
    uninstall,
    wants,
)
from .plan import FAULT_KINDS, FaultEvent, FaultPlan, FaultSpec

__all__ = [
    "Clock", "FakeClock", "SystemClock",
    "DROP", "HOOK_POINTS", "active_plan", "fault_hook", "injected",
    "install", "uninstall", "wants",
    "FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultSpec",
]
