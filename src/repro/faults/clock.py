"""Injectable clocks: real time for production, fake time for determinism.

Every time-dependent decision in the resilience layer — backoff sleeps,
per-item deadlines, simulated hangs — goes through a :class:`Clock` so
tests and the chaos soak can drive it with :class:`FakeClock` and get
bit-reproducible schedules.  :class:`SystemClock` is the production
default and simply delegates to :mod:`time`.
"""

from __future__ import annotations

import time as _time

__all__ = ["Clock", "SystemClock", "FakeClock"]


class Clock:
    """Minimal clock interface: monotonic ``time()`` plus ``sleep()``."""

    def time(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock."""

    def time(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class FakeClock(Clock):
    """A deterministic clock: ``sleep`` advances time instantly.

    Records every sleep so tests can assert exact backoff schedules.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: every ``sleep`` duration, in call order
        self.sleeps: list[float] = []

    def time(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(seconds)
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        self._now += seconds
