"""Figure 5: EnGarde checking the indirect function-call (IFCC) policy.

Workloads are compiled with the IFCC pass (jump tables + masked indirect
calls); the policy verifies every indirect call site and the table
format.  Headline shape: this check is a single linear pass — roughly two
orders of magnitude cheaper than the other two policies.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_cell
from repro.harness.tables import PAPER_DATA, render_comparison, render_figure
from repro.toolchain.workloads import PAPER_BENCHMARKS

from conftest import SCALE, record_table

POLICY = "indirect-function-call"
_results = []


@pytest.mark.parametrize("bench", PAPER_BENCHMARKS)
def test_fig5_cell(benchmark, bench):
    cell = benchmark.pedantic(
        run_cell, args=(bench, POLICY), kwargs={"scale": SCALE},
        rounds=1, iterations=1,
    )
    assert cell.accepted, f"{bench} (IFCC-instrumented) must pass"
    paper = PAPER_DATA[5][bench]
    benchmark.extra_info.update({
        "insns": cell.insn_count,
        "disassembly_cycles": cell.disassembly_cycles,
        "policy_cycles": cell.policy_cycles,
        "loading_cycles": cell.loading_cycles,
        "paper_insns": paper[0],
        "ratio_policy": round(cell.policy_cycles / paper[2], 3),
    })
    _results.append(cell)

    # IFCC checking is far cheaper than disassembly on every benchmark —
    # the paper's two-orders-of-magnitude gap.
    assert cell.policy_cycles * 5 < cell.disassembly_cycles

    if len(_results) == len(PAPER_BENCHMARKS):
        record_table(render_figure(_results, "Figure 5: IFCC policy"))
        if SCALE >= 0.99:
            record_table(render_comparison(_results, figure=5))
