"""Fleet throughput: cold vs warm-restart at 100+ simulated clients.

The sharded :class:`~repro.service.FleetCoordinator` exists so the
"judge the binary once, reuse the attested verdict" economy survives
provider churn.  This bench measures exactly that claim, one artifact
(``BENCH_fleet.json``):

* **cold leg** — an N-shard fleet over a *fresh*
  :class:`~repro.service.VerdictStore` directory is stormed by 100+
  concurrent tenant threads (each its own attested
  :class:`~repro.service.InspectionClient` per shard it touches); every
  unique binary pays full inspection on the shard that owns its content
  digest,
* **warm-restart leg** — the whole fleet is torn down and rebuilt over
  the *same* store directory (store recovery re-validates every blob at
  startup), then the identical storm runs again; verdicts are served
  from the content-addressed store, so the only remaining costs are the
  attested handshakes and the encrypted wire,
* **differential oracle** — every delivered verdict in both legs is
  compared byte-for-byte against a serial single-:class:`~repro.core.
  EnGarde` oracle (the single-daemon path's own oracle); any divergence
  fails the bench regardless of scale.

The storm corpus mixes the deterministic variant rotation (compliant /
policy-rejected / structurally-rejected / duplicate — the fleet's
adversarial steady state) with scaled paper workloads as the *heavy
tenants* whose inspection cost the store actually amortises.

Bars (full scale only for the throughput bar; the differential and
hang/error bars always apply):

* warm-restart throughput >= 2.0x the same run's cold throughput,
* 0 verdict-wire divergences vs the serial oracle,
* 0 hung client threads, 0 untyped worker errors.

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_fleet.py``) and as a script (``python benchmarks/bench_fleet.py
[--quick] [--output PATH]``).  Quick mode (CI): ``--quick`` or
``REPRO_BENCH_QUICK=1`` shrinks the fleet and the storm; the throughput
bar is waived, the differential never is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.service import (
    FleetCoordinator,
    VerdictStore,
    generate_variant_corpus,
    run_fleet_storm,
)
from repro.toolchain import build_libc
from repro.toolchain.workloads import PAPER_BENCHMARKS, build_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DEFAULT_OUTPUT = "BENCH_fleet.json"

#: the PR's acceptance bar: warm-restart vs cold fleet throughput
WARM_BAR = 2.0


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def build_fleet_corpus(libc, *, quick: bool) -> list[tuple[str, bytes]]:
    """Variant rotation + heavy paper-workload tenants, interleaved.

    Interleaving matters: each storm client submits a contiguous
    rotation slice, so mixing keeps every slice a blend of cheap
    adversarial variants and expensive compliant tenants instead of
    segregating the load by client index.
    """
    variants = generate_variant_corpus(12 if quick else 52, libc=libc)
    n_heavy = 2 if quick else 21
    scales = (0.02,) if quick else (0.08, 0.1, 0.12)
    heavies = []
    for i in range(n_heavy):
        name = PAPER_BENCHMARKS[i % len(PAPER_BENCHMARKS)]
        scale = scales[i % len(scales)]
        binary = build_workload(
            name, stack_protector=True, ifcc=True, libc=libc, scale=scale,
        )
        heavies.append((f"tenant-{name}-{scale}", binary.elf))
    # round-robin interleave, heavies spread evenly through the rotation
    corpus: list[tuple[str, bytes]] = []
    stride = max(len(variants) // max(len(heavies), 1), 1)
    hv = iter(heavies)
    for i, item in enumerate(variants):
        corpus.append(item)
        if i % stride == stride - 1:
            nxt = next(hv, None)
            if nxt is not None:
                corpus.append(nxt)
    corpus.extend(hv)
    return corpus


def build_oracle(policies: PolicyRegistry, corpus) -> tuple[dict, float]:
    """Serial single-EnGarde verdict wires per label (the differential
    oracle) plus the serial wall time for context."""
    oracle: dict[str, bytes] = {}
    engarde = EnGarde(policies)
    t0 = time.perf_counter()
    for label, raw in corpus:
        oracle[label] = engarde.inspect(
            raw, benchmark=label
        ).report.serialize()
    return oracle, time.perf_counter() - t0


def storm_leg(
    policies: PolicyRegistry,
    corpus,
    oracle: dict,
    store_dir: str,
    *,
    shards: int,
    clients: int,
    per_client: int,
) -> dict:
    """Build a fleet over *store_dir*, storm it, tear it all down.

    Each call constructs a completely fresh coordinator (new daemons,
    new enclave pools, empty in-memory caches) — the only state carried
    between legs is the store directory itself, which is exactly the
    restart the bench measures.
    """
    fleet = FleetCoordinator(
        policies,
        shards=shards,
        store=VerdictStore(store_dir),
        rsa_bits=768,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
        max_connections=clients + 4,
        # every attested connection holds a pooled enclave for its
        # lifetime, so the pool is provisioned for the expected
        # per-shard connection concurrency up front — enclave builds
        # belong to fleet bring-up, not to the storm being measured
        pool_size=clients // shards + 12,
        # at 100+ concurrent tenants a shard's queue can hold seconds of
        # inspection work; generous timeouts keep queueing delay out of
        # the failure column (hangs are still bounded by the storm wall)
        read_timeout=120.0,
        client_timeout=120.0,
    )
    fleet.start()
    try:
        result = run_fleet_storm(
            fleet, corpus,
            clients=clients, per_client=per_client, oracle=oracle,
        )
        status = fleet.status()
        result["store"] = status["store"]
        result["live_shards"] = status["live_shards"]
        return result
    finally:
        fleet.stop()


def run_benchmark(*, quick: bool, store_dir: str | None = None) -> dict:
    shards = 2 if quick else 4
    clients = 12 if quick else 100
    # one submission per tenant at full scale: the storm measures the
    # fleet's cost to serve a *new* tenant (handshake + verdict), and
    # 100 clients over 73 corpus items still cover every unique binary
    per_client = 2 if quick else 1

    libc = build_libc()
    policies = _build_policies(libc)
    corpus = build_fleet_corpus(libc, quick=quick)
    oracle, serial_seconds = build_oracle(policies, corpus)

    store_dir = store_dir or tempfile.mkdtemp(prefix="bench-fleet-")
    cold = storm_leg(
        policies, corpus, oracle, store_dir,
        shards=shards, clients=clients, per_client=per_client,
    )
    warm = storm_leg(
        policies, corpus, oracle, store_dir,
        shards=shards, clients=clients, per_client=per_client,
    )
    ratio = (
        warm["submissions_per_second"] / cold["submissions_per_second"]
        if cold["submissions_per_second"] else 0.0
    )

    result: dict = {
        "schema": "bench_fleet/1",
        "quick": quick,
        "shards": shards,
        "clients": clients,
        "per_client": per_client,
        "corpus_items": len(corpus),
        "corpus_bytes": sum(len(raw) for _, raw in corpus),
        "serial_oracle_seconds": round(serial_seconds, 4),
        "cold": cold,
        "warm_restart": warm,
        "warm_over_cold": round(ratio, 2),
    }
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def _check_bars(result: dict) -> list[str]:
    """Differential/hang bars always; the throughput bar at full scale."""
    problems = []
    for leg in ("cold", "warm_restart"):
        res = result[leg]
        if res["divergences"]:
            problems.append(
                f"{leg}: {res['divergences']} verdict-wire divergence(s) "
                f"vs the serial oracle: {res['failures'][:3]}"
            )
        if res["hung_clients"]:
            problems.append(f"{leg}: hung client threads {res['hung_clients']}")
        if res["worker_errors"]:
            problems.append(f"{leg}: worker errors {res['worker_errors'][:3]}")
        if res["typed_failures"]:
            problems.append(
                f"{leg}: {res['typed_failures']} submission(s) failed "
                f"with no shard loss in play: {res['failures'][:3]}"
            )
    if result["warm_restart"]["store"]["recovery_discarded"]:
        problems.append(
            "warm restart discarded "
            f"{result['warm_restart']['store']['recovery_discarded']} "
            "blob(s) that the cold leg should have published cleanly"
        )
    if not result["quick"] and result["warm_over_cold"] < WARM_BAR:
        problems.append(
            f"warm-restart throughput {result['warm_over_cold']}x of cold "
            f"is below the {WARM_BAR}x bar"
        )
    return problems


def render_table(result: dict) -> str:
    rows = [
        f"fleet: {result['shards']} shard(s), {result['clients']} clients "
        f"x {result['per_client']} submission(s), "
        f"{result['corpus_items']} corpus items "
        f"({result['corpus_bytes'] / 1e6:.1f} MB), serial oracle "
        f"{result['serial_oracle_seconds']}s",
        f"{'leg':<14} {'subs':>5} {'subs/s':>8} {'inspected':>9} "
        f"{'cache':>6} {'diverge':>7} {'store hits':>10}",
    ]
    for leg in ("cold", "warm_restart"):
        res = result[leg]
        sources = res["sources"]
        rows.append(
            f"{leg:<14} {res['submissions']:>5} "
            f"{res['submissions_per_second']:>8} "
            f"{sources.get('inspected', 0):>9} {sources.get('cache', 0):>6} "
            f"{res['divergences']:>7} {res['store']['hits']:>10}"
        )
    rows.append(
        f"warm-over-cold: {result['warm_over_cold']}x "
        f"(bar {WARM_BAR}x at full scale; quick={result['quick']})"
    )
    return "\n".join(rows)


# ------------------------------------------------------------------ pytest

def test_fleet_throughput():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Fleet cold vs warm-restart storm (serial oracle differential):\n"
        + render_table(result)
    )
    problems = _check_bars(result)
    assert not problems, problems


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small fleet + short storm (CI fleet-smoke mode; the "
        "throughput bar is waived, the differential is not)",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="store directory to reuse (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(quick=args.quick, store_dir=args.store)
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    problems = _check_bars(result)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
