"""Ablation: EPC size — why the paper modified OpenSGX.

"OpenSGX restricts the number of EPC pages to 2000.  We modified OpenSGX
to increase the default number of EPC pages to 32000 which translates to
128 MB" (section 4).  EnGarde's instruction buffer holds one record per
client instruction, so a large binary exhausts the stock EPC before
disassembly completes.  This ablation provisions the largest workload
under both configurations: the stock EPC must fail, the enlarged one must
succeed — and a size sweep finds the feasibility threshold.
"""

from __future__ import annotations

import pytest

from repro.errors import EpcExhaustedError, SgxError
from repro.harness.runner import run_cell

from conftest import SCALE, record_table

BENCH = "nginx"
_rows = {}


def _attempt(epc_pages: int):
    from repro.sgx import SgxParams

    heap = max(epc_pages - 1200, 64)
    try:
        cell = run_cell(
            BENCH, "indirect-function-call", scale=SCALE,
            provider_options={
                "params": SgxParams(epc_pages=epc_pages,
                                    heap_initial_pages=heap),
            },
        )
        return ("ok", cell)
    except (EpcExhaustedError, SgxError) as exc:
        return ("exhausted", exc)


@pytest.mark.parametrize(
    "config,epc_pages",
    [("opensgx-stock", 2_000), ("engarde-modified", 32_000)],
)
def test_epc_size(benchmark, config, epc_pages):
    status, result = benchmark.pedantic(
        _attempt, args=(epc_pages,), rounds=1, iterations=1
    )
    _rows[config] = (epc_pages, status)
    benchmark.extra_info.update({"epc_pages": epc_pages, "status": status})

    if SCALE >= 0.99:
        if config == "opensgx-stock":
            assert status == "exhausted", (
                "stock OpenSGX's 2000-page EPC cannot hold nginx's "
                "instruction buffer — the paper's motivation for the change"
            )
        else:
            assert status == "ok"

    if len(_rows) == 2:
        lines = [
            f"Ablation: EPC size ({BENCH}, scale={SCALE})",
            f"{'configuration':<18} {'EPC pages':>10} {'outcome':>12}",
            "-" * 44,
        ]
        for name, (pages, outcome) in _rows.items():
            lines.append(f"{name:<18} {pages:>10,} {outcome:>12}")
        lines.append("-> EnGarde needs the enlarged EPC to hold the "
                     "instruction buffer of large clients")
        record_table("\n".join(lines))
