"""Hot-path benchmark: dispatch-table decoder + optimized pipeline vs
the frozen pre-optimization reference.

Not a paper figure — this measures the PR-3 single-binary hot path:

* decode throughput (insns/sec) of the table-driven decoder vs the
  frozen ``repro.x86.refdecode`` oracle,
* end-to-end ``EnGarde.inspect`` throughput (inspections/sec) of the
  optimized pipeline (``optimized=True``) vs the reference pipeline
  (``optimized=False``: per-instruction decode + charges, uncached
  policy context, per-call-site hashing) on the paper workloads,
* a wall-clock per-stage split (disassembly vs policy) of the optimized
  path on the largest workload.

Every workload and every corpus variant is also run through the
**differential check**: the optimized pipeline must produce byte-identical
``ComplianceReport`` wire text, identical ``PolicyResult.stats``, and
tick-identical ``CycleMeter`` totals (overall and per phase, including
per-event counts) to the reference.  Any divergence fails the benchmark —
the meter is the paper's figure source, so optimizations may only change
wall-clock.

Results land in ``BENCH_pipeline.json`` (uploaded as a CI artifact).

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_pipeline_hotpath.py``) and as a script (``python benchmarks/
bench_pipeline_hotpath.py [--quick] [--scale S] [--output PATH]``).
Quick mode (CI): ``--quick`` or ``REPRO_BENCH_QUICK=1`` shrinks the
workloads and the corpus.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.elf import read_elf
from repro.sgx.cpu import CycleMeter
from repro.service import generate_variant_corpus
from repro.toolchain import build_libc
from repro.toolchain.workloads import build_workload
from repro.x86.decoder import decode_all
from repro.x86.refdecode import ref_decode_all

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

GOLDEN = _ROOT / "tests" / "fixtures" / "golden"
GOLDEN_BINARIES = ("instrumented", "plain", "truncated", "garbage")
POLICY_NAMES = ("library-linking", "stack-protection", "indirect-function-call")
DEFAULT_OUTPUT = "BENCH_pipeline.json"

#: (workload, scale-multiplier) — ordered smallest to largest; the last
#: entry is "the largest workload" the acceptance bar applies to.
WORKLOADS_FULL = (("bzip2", 0.5), ("nginx", 1.0))
WORKLOADS_QUICK = (("nginx", 0.05),)
CORPUS_SIZE_FULL = 52
CORPUS_SIZE_QUICK = 13


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def _frozen_policy(name: str, config: dict):
    """Rebuild a golden-corpus policy from its frozen configuration."""
    if name == "library-linking":
        return LibraryLinkingPolicy({
            fn: bytes.fromhex(digest)
            for fn, digest in config["reference_hashes"].items()
        })
    if name == "stack-protection":
        return StackProtectionPolicy(
            exempt_functions=set(config["exempt_functions"])
        )
    return IfccPolicy()


# ------------------------------------------------------------ differential

def compare_pipelines(blob: bytes, label: str, make_registry) -> list[str]:
    """Run both pipelines over *blob*; return the list of divergences."""
    meter_opt, meter_ref = CycleMeter(), CycleMeter()
    opt = EnGarde(make_registry(), meter_opt, optimized=True).inspect(
        blob, benchmark=label
    )
    ref = EnGarde(make_registry(), meter_ref, optimized=False).inspect(
        blob, benchmark=label
    )
    problems = []
    if opt.report.serialize() != ref.report.serialize():
        problems.append("report wire text differs")
    if ([r.stats for r in opt.policy_results]
            != [r.stats for r in ref.policy_results]):
        problems.append("policy stats differ")
    if meter_opt.phases != meter_ref.phases:
        problems.append("meter phase breakdowns differ")
    if meter_opt.total != meter_ref.total:
        problems.append("meter totals differ")
    return problems


def run_differential(libc, corpus_size: int) -> dict:
    """Golden fixtures + service variant corpus through both pipelines."""
    cases = 0
    failures: list[str] = []

    config = json.loads((GOLDEN / "policy_config.json").read_text())
    for name in GOLDEN_BINARIES:
        blob = (GOLDEN / f"{name}.bin").read_bytes()
        for policy_name in POLICY_NAMES:
            cases += 1
            problems = compare_pipelines(
                blob, name,
                lambda pn=policy_name: PolicyRegistry(
                    [_frozen_policy(pn, config)]
                ),
            )
            failures += [f"golden/{name}/{policy_name}: {p}" for p in problems]

    for label, blob in generate_variant_corpus(corpus_size, libc=libc):
        cases += 1
        problems = compare_pipelines(
            blob, label, lambda: _build_policies(libc)
        )
        failures += [f"corpus/{label}: {p}" for p in problems]

    return {"cases": cases, "divergences": len(failures), "failures": failures}


# ------------------------------------------------------------- throughput

def _best_rate(fn, units: int, *, repeats: int) -> float:
    """Best-of-N units/sec for one call of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return units / best


def bench_decode(binary, *, repeats: int) -> dict:
    code = bytes(read_elf(binary.elf).text_sections[0].data)
    insns = len(decode_all(code))
    optimized = _best_rate(lambda: decode_all(code), insns, repeats=repeats)
    reference = _best_rate(lambda: ref_decode_all(code), insns, repeats=repeats)
    return {
        "insns": insns,
        "optimized_insns_per_sec": round(optimized),
        "reference_insns_per_sec": round(reference),
        "speedup": round(optimized / reference, 2),
    }


def bench_inspect(libc, binary, label: str, *, repeats: int) -> dict:
    blob = binary.elf

    def one_pass(optimized: bool) -> None:
        engarde = EnGarde(_build_policies(libc), optimized=optimized)
        outcome = engarde.inspect(blob, benchmark=label)
        assert outcome.report is not None

    optimized = _best_rate(lambda: one_pass(True), 1, repeats=repeats)
    reference = _best_rate(lambda: one_pass(False), 1, repeats=repeats)

    # Wall-clock stage split of one optimized pass (disassembly vs policy).
    engarde = EnGarde(_build_policies(libc))
    t0 = time.perf_counter()
    with engarde.meter.phase("disassembly"):
        disasm = engarde.disassembler.run(blob)
    t1 = time.perf_counter()
    ctx = disasm.policy_context(engarde.meter)
    with engarde.meter.phase("policy"):
        for module in engarde.policies:
            module.check(ctx)
    t2 = time.perf_counter()

    return {
        "workload": label,
        "insns": binary.insn_count,
        "optimized_inspections_per_sec": round(optimized, 3),
        "reference_inspections_per_sec": round(reference, 3),
        "speedup": round(optimized / reference, 2),
        "stage_split_seconds": {
            "disassembly": round(t1 - t0, 4),
            "policy": round(t2 - t1, 4),
        },
    }


# ------------------------------------------------------------------ driver

def run_benchmark(*, quick: bool, scale: float) -> dict:
    workloads = WORKLOADS_QUICK if quick else WORKLOADS_FULL
    corpus_size = CORPUS_SIZE_QUICK if quick else CORPUS_SIZE_FULL
    repeats = 1 if quick else 3

    libc = build_libc()
    result: dict = {
        "schema": "bench_pipeline/1",
        "quick": quick,
        "scale": scale,
        "inspect": [],
    }

    binaries = []
    for name, mult in workloads:
        binaries.append((name, build_workload(
            name, stack_protector=True, ifcc=True,
            libc=libc, scale=scale * mult,
        )))

    # Decode throughput on the largest workload's text section.
    result["decode"] = {
        "workload": binaries[-1][0],
        **bench_decode(binaries[-1][1], repeats=repeats),
    }

    for name, binary in binaries:
        result["inspect"].append(
            bench_inspect(libc, binary, name, repeats=repeats)
        )

    result["differential"] = run_differential(libc, corpus_size)
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def render_table(result: dict) -> str:
    rows = [
        f"{'stage / workload':<26} {'optimized':>14} {'reference':>14} "
        f"{'speedup':>8}",
    ]
    d = result["decode"]
    rows.append(
        f"{'decode (' + d['workload'] + ', insns/s)':<26} "
        f"{d['optimized_insns_per_sec']:>14,} "
        f"{d['reference_insns_per_sec']:>14,} {d['speedup']:>7.2f}x"
    )
    for cell in result["inspect"]:
        rows.append(
            f"{'inspect (' + cell['workload'] + ', insp/s)':<26} "
            f"{cell['optimized_inspections_per_sec']:>14,.2f} "
            f"{cell['reference_inspections_per_sec']:>14,.2f} "
            f"{cell['speedup']:>7.2f}x"
        )
    split = result["inspect"][-1]["stage_split_seconds"]
    rows.append(
        f"largest-workload stage split: disassembly {split['disassembly']}s, "
        f"policy {split['policy']}s"
    )
    diff = result["differential"]
    rows.append(
        f"differential check: {diff['cases']} cases, "
        f"{diff['divergences']} divergence(s)"
    )
    return "\n".join(rows)


# ------------------------------------------------------------------ pytest

def test_pipeline_hotpath():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK, scale=SCALE if not QUICK else 1.0)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Static-inspection hot path (optimized vs frozen reference):\n"
        + render_table(result)
    )
    assert result["differential"]["divergences"] == 0, (
        result["differential"]["failures"]
    )
    # The PR's acceptance bar: >=2x end-to-end inspect throughput on the
    # largest workload, with the differential check green.
    assert result["inspect"][-1]["speedup"] >= 2.0, result["inspect"][-1]


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small workloads + corpus (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--scale", type=float, default=SCALE,
        help="workload scale factor (ignored in --quick mode)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON trajectory (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(
        quick=args.quick, scale=args.scale if not args.quick else 1.0
    )
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    diff = result["differential"]
    if diff["divergences"]:
        for failure in diff["failures"]:
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
