"""Latency-SLO soak: the zero-copy executor and daemon under offered load.

Two instruments, one artifact (``BENCH_slo.json``):

* **executor cross-mode bench** — every executor mode (``serial``,
  ``thread``, ``process`` with the frozen pickling path, ``process``
  with the shared-memory arena) inspects the same profile corpora.
  The differential check pins the verdict wire byte-identical across
  all four modes; the throughput bar requires the zero-copy executor
  to beat the pickling executor by >=1.5x on the ``few-huge`` profile,
  where the pickle/pipe tax dominates (multi-MB data-heavy binaries
  whose inspection is cheap but whose round-trip through the executor
  pipe is not),
* **daemon soak** — a warm :class:`~repro.service.InspectionDaemon`
  (process-mode, shared-memory inspector) driven by persistent attested
  :class:`~repro.service.InspectionClient` sessions at an increasing
  open-loop offered rate.  Arrivals are *scheduled*: latency is
  ``finish - scheduled_arrival``, so queueing delay at saturation is
  measured, not hidden.  Per-stage p50/p95/p99 come from
  :meth:`~repro.service.DaemonMetrics.latency_summary` (reset at every
  load-step boundary); the **saturation knee** is the first offered
  rate whose achieved throughput falls below 85% of offered.  The top
  profile is then re-run with a seeded
  :class:`~repro.faults.FaultPlan` active and resilient clients, and
  p99 is reported with and without the plan — faults may cost retries
  and latency, never a corrupt verdict.

Arrival profiles over the deterministic variant corpus:

``compliant-heavy``   mostly policy-compliant small binaries (steady
                      state of a well-behaved tenant fleet),
``adversarial-mix``   the full variant rotation — compliant, policy-
                      rejected, truncated, garbage, duplicates,
``many-tiny``         a large fleet of small binaries (per-item
                      overhead dominates),
``few-huge``          a handful of multi-MB data-heavy binaries
                      (per-byte transport dominates).

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_slo.py``) and as a script (``python benchmarks/bench_slo.py
[--quick] [--profile NAME] [--output PATH]``).  Quick mode (CI):
``--quick`` or ``REPRO_BENCH_QUICK=1`` shrinks corpora and the load
ladder; the wall-clock bars are only enforced at full scale, the
cross-mode differential always.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.core.provisioning import ResilienceConfig
from repro.crypto import HmacDrbg
from repro.errors import ReproError
from repro.faults import FaultPlan, injected
from repro.service import (
    BatchInspector,
    ClientVerdict,
    InspectionClient,
    InspectionDaemon,
    generate_variant_corpus,
)
from repro.toolchain import Compiler, CompilerFlags, build_libc, link
from repro.toolchain.ir import DataObject, FunctionSpec, ProgramSpec

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DEFAULT_OUTPUT = "BENCH_slo.json"

#: the PR's acceptance bar: zero-copy vs pickling executor on few-huge
THROUGHPUT_BAR = 1.5
#: achieved/offered ratio below which a load step counts as saturated
KNEE_RATIO = 0.85

PROFILE_NAMES = (
    "compliant-heavy", "adversarial-mix", "many-tiny", "few-huge",
)

#: executor modes, in differential-oracle order (serial is the oracle)
EXECUTOR_MODES = (
    ("serial", dict(mode="serial")),
    ("thread", dict(mode="thread")),
    ("process-pickle", dict(mode="process", shared_memory=False)),
    ("process-shm", dict(mode="process", shared_memory=True)),
)


# ------------------------------------------------------------------ corpora


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def build_huge_binary(libc, index: int, data_bytes: int) -> bytes:
    """A data-heavy binary: tiny text, multi-MB initialised ``.data``.

    Inspection cost is driven by instruction count, so these are cheap
    to verify — but every byte still crosses the executor boundary,
    which is exactly the regime where the pickle/pipe tax shows.
    """
    rng = HmacDrbg(b"slo-huge-%d" % index)
    spec = ProgramSpec(
        name=f"huge{index}",
        functions=[
            FunctionSpec(
                name="main", n_blocks=2, ops_per_block=(4, 8),
                frame_slots=3, direct_calls=["memcpy", "helper"],
            ),
            FunctionSpec(
                name="helper", n_blocks=1, ops_per_block=(4, 8),
                frame_slots=2, direct_calls=["memset"],
                address_taken=True,
            ),
        ],
        libc_imports=["memcpy", "memset"],
        data_objects=[DataObject(
            name=f"huge{index}_data", size=data_bytes,
            init=rng.generate(256),
        )],
        seed=b"slo-huge",
    )
    flags = CompilerFlags(stack_protector=True, ifcc=True)
    return link(Compiler(flags).compile(spec), libc).elf


def build_profiles(libc, *, quick: bool) -> dict[str, list[tuple[str, bytes]]]:
    """One labelled corpus per arrival profile (deterministic)."""
    n_variants = 18 if quick else 45
    n_tiny = 18 if quick else 72
    n_huge = 3 if quick else 4
    huge_bytes = (1 if quick else 16) * 1024 * 1024

    variants = generate_variant_corpus(n_variants, libc=libc)
    compliant = [
        (label, raw) for label, raw in variants if label.endswith("-compliant")
    ]
    others = [
        (label, raw) for label, raw in variants
        if not label.endswith("-compliant")
    ]
    return {
        # mostly-accepting steady state: every compliant variant plus a
        # thin sliver of rejects so the reject path stays warm
        "compliant-heavy": compliant + others[:: max(len(others) // 2, 1)],
        "adversarial-mix": variants,
        "many-tiny": generate_variant_corpus(
            n_tiny, libc=libc, seed=b"slo-tiny"
        ),
        "few-huge": [
            (f"huge{i:02d}", build_huge_binary(libc, i, huge_bytes))
            for i in range(n_huge)
        ],
    }


# ------------------------------------------------- executor cross-mode bench


def _item_fingerprint(item) -> tuple:
    """The comparable identity of one verdict: wire bytes or typed error."""
    if item.report is not None:
        return ("report", hashlib.sha256(item.report.serialize()).hexdigest())
    return ("error", item.error or "")


def bench_executor_modes(
    policies: PolicyRegistry,
    profiles: dict[str, list[tuple[str, bytes]]],
    *,
    repeats: int,
) -> dict:
    """Throughput + cross-mode differential over every profile corpus.

    The cache is disabled so every pass pays full inspection cost and
    the mode comparison measures the executor, not memoization.  Items
    are submitted one ``inspect_batch([(label, raw)])`` at a time —
    the daemon's serving regime, where each request's payload crosses
    the executor boundary on the critical path.  (Whole-batch
    submission overlaps the pipe copy with the next item's cache-key
    hash and hides exactly the tax this bench exists to measure.)
    """
    out: dict = {"modes": [m for m, _ in EXECUTOR_MODES], "profiles": {}}
    divergences: list[str] = []
    for profile, corpus in profiles.items():
        per_mode: dict[str, dict] = {}
        oracle: dict[str, tuple] | None = None
        for mode_name, kwargs in EXECUTOR_MODES:
            with BatchInspector(policies, cache=False, **kwargs) as insp:
                # absorb pool spin-up outside the clock: one task per
                # worker, so no fork/init cost lands in the timed region
                insp.inspect_batch([
                    (f"warm{i}", corpus[0][1]) for i in range(insp.workers)
                ])
                t0 = time.perf_counter()
                for _ in range(repeats):
                    results = [
                        insp.inspect_batch([item]).results[0]
                        for item in corpus
                    ]
                elapsed = time.perf_counter() - t0
                arena = insp.arena_stats()
            prints = {
                item.label: _item_fingerprint(item) for item in results
            }
            if oracle is None:
                oracle = prints
            else:
                for label, fp in prints.items():
                    if oracle.get(label) != fp:
                        divergences.append(
                            f"{profile}/{label}: {mode_name} produced {fp}, "
                            f"serial produced {oracle.get(label)}"
                        )
            total_items = len(corpus) * repeats
            per_mode[mode_name] = {
                "seconds": round(elapsed, 4),
                "items": total_items,
                "items_per_second": round(total_items / elapsed, 2),
                "megabytes": round(
                    sum(len(raw) for _, raw in corpus) * repeats / 1e6, 2
                ),
                "arena": arena,
            }
        speedup = (
            per_mode["process-shm"]["items_per_second"]
            / per_mode["process-pickle"]["items_per_second"]
        )
        out["profiles"][profile] = {
            "corpus_items": len(corpus),
            "corpus_bytes": sum(len(raw) for _, raw in corpus),
            "by_mode": per_mode,
            "shm_vs_pickle_speedup": round(speedup, 2),
        }
    out["divergences"] = len(divergences)
    out["failures"] = divergences[:20]
    return out


# ----------------------------------------------------------- daemon soak


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"count": 0, "p50_seconds": 0.0, "p95_seconds": 0.0,
                "p99_seconds": 0.0, "max_seconds": 0.0}
    ordered = sorted(samples)

    def q(p: float) -> float:
        idx = min(len(ordered) - 1, max(0, round(p * len(ordered)) - 1))
        return round(ordered[idx], 6)

    return {
        "count": len(ordered),
        "mean_seconds": round(statistics.fmean(ordered), 6),
        "p50_seconds": q(0.50),
        "p95_seconds": q(0.95),
        "p99_seconds": q(0.99),
        "max_seconds": round(ordered[-1], 6),
    }


def _make_daemon(policies: PolicyRegistry, *, clients: int) -> InspectionDaemon:
    # Cache disabled on the inspector: every submission pays full
    # inspection cost, so the ladder measures the executor, not the
    # memoizer (profiles contain deliberate duplicates).
    inspector = BatchInspector(
        policies, mode="process", shared_memory=True, cache=False,
    )
    daemon = InspectionDaemon(
        policies,
        inspector=inspector,
        pool_size=2,
        rsa_bits=768,
        heap_pages=64,
        client_pages=64,
        enclave_pages=0x2000,
        max_connections=clients + 4,
    )
    daemon.start()
    return daemon


def _run_load_step(
    daemon: InspectionDaemon,
    policies: PolicyRegistry,
    corpus: list[tuple[str, bytes]],
    *,
    offered_rate: float,
    n_items: int,
    clients: int,
    resilience: ResilienceConfig | None = None,
) -> dict:
    """One open-loop step: *n_items* arrivals at *offered_rate*/s total.

    Work is sharded round-robin over *clients* persistent attested
    sessions; each worker sleeps until an item's scheduled arrival, so
    when the daemon saturates, lateness accumulates into the measured
    latency instead of silently stretching the arrival process.
    """
    daemon.metrics.reset()
    items = [corpus[i % len(corpus)] for i in range(n_items)]
    shards: list[list[tuple[int, str, bytes]]] = [[] for _ in range(clients)]
    for i, (label, raw) in enumerate(items):
        shards[i % clients].append((i, label, raw))

    latencies: list[float] = []
    outcomes = {"accepted": 0, "rejected": 0, "errors": 0}
    finished: list[float] = []
    lock = threading.Lock()
    start = time.perf_counter() + 0.05  # let every worker reach its loop

    def worker(shard: list[tuple[int, str, bytes]]) -> None:
        client = InspectionClient(
            policies,
            daemon.pool.quoting_enclave.device_public_key,
            daemon.connect_inproc,
            timeout=30.0,
            resilience=resilience,
        )
        try:
            for i, label, raw in shard:
                scheduled = start + i / offered_rate
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                # Fail closed per item: a fault that kills the session
                # (e.g. mid-attest) costs this item, not the shard —
                # the next item reconnects through open()'s no-op-when-
                # connected fast path.
                try:
                    client.open()
                    verdict = client.inspect(raw, label=label)
                except ReproError as exc:
                    client.close()
                    verdict = ClientVerdict(
                        label=label,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                done = time.perf_counter()
                with lock:
                    latencies.append(done - scheduled)
                    finished.append(done)
                    if verdict.error is not None:
                        outcomes["errors"] += 1
                    elif verdict.accepted:
                        outcomes["accepted"] += 1
                    else:
                        outcomes["rejected"] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(shard,), daemon=True)
        for shard in shards if shard
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    wall = (max(finished) - start) if finished else 0.0
    achieved = len(finished) / wall if wall > 0 else 0.0
    return {
        "offered_per_second": round(offered_rate, 2),
        "items": n_items,
        "clients": len(threads),
        "achieved_per_second": round(achieved, 2),
        "saturated": achieved < KNEE_RATIO * offered_rate,
        "outcomes": outcomes,
        "latency": _percentiles(latencies),
        "stages": daemon.metrics.latency_summary(),
    }


def bench_daemon_soak(
    policies: PolicyRegistry,
    profiles: dict[str, list[tuple[str, bytes]]],
    *,
    quick: bool,
    only_profile: str | None = None,
) -> dict:
    clients = 4 if quick else 8
    ladder = (1.0, 4.0) if quick else (0.5, 1.0, 2.0, 4.0, 8.0)
    out: dict = {"clients": clients, "profiles": {}}

    for profile, corpus in profiles.items():
        if only_profile is not None and profile != only_profile:
            continue
        daemon = _make_daemon(policies, clients=clients)
        try:
            # calibrate: one warm client, closed loop, a handful of items
            probe = InspectionClient(
                policies,
                daemon.pool.quoting_enclave.device_public_key,
                daemon.connect_inproc,
                timeout=30.0,
            )
            probe.open()
            sample = corpus[: min(len(corpus), 4 if quick else 8)]
            t0 = time.perf_counter()
            for label, raw in sample:
                probe.inspect(raw, label=f"calibrate/{label}")
            base_rate = len(sample) / (time.perf_counter() - t0)
            probe.close()

            steps = []
            knee = None
            for mult in ladder:
                rate = max(base_rate * mult, 0.5)
                n_items = int(min(
                    max(rate * (2.0 if quick else 5.0), 8),
                    24 if quick else 160,
                ))
                step = _run_load_step(
                    daemon, policies, corpus,
                    offered_rate=rate, n_items=n_items, clients=clients,
                )
                step["ladder_multiplier"] = mult
                steps.append(step)
                if knee is None and step["saturated"]:
                    knee = step["offered_per_second"]
            out["profiles"][profile] = {
                "base_rate_per_second": round(base_rate, 2),
                "steps": steps,
                "knee_offered_per_second": knee,
            }
        finally:
            daemon.stop()
            daemon.inspector.close()
    return out


def bench_fault_rerun(
    policies: PolicyRegistry,
    profiles: dict[str, list[tuple[str, bytes]]],
    soak: dict,
    *,
    quick: bool,
) -> dict:
    """Re-run the busiest pre-knee step of the top profile with a seeded
    fault plan active and resilient clients: p99 with faults vs without.

    Hooks are the parent-side ones a daemon actually exercises — socket,
    secure channel, and the verdict boundary (plans installed here do
    not reach pre-forked pool workers, so ``service.batch.worker`` would
    be a no-op by design).
    """
    # the top profile = highest clean achieved throughput
    candidates = {
        name: max(
            (s["achieved_per_second"] for s in prof["steps"]), default=0.0
        )
        for name, prof in soak["profiles"].items()
    }
    if not candidates:
        return {"skipped": "no soak profiles ran"}
    top = max(candidates, key=candidates.get)
    prof = soak["profiles"][top]
    clean_steps = [s for s in prof["steps"] if not s["saturated"]]
    baseline = (clean_steps or prof["steps"])[-1]

    clients = soak["clients"]
    daemon = _make_daemon(policies, clients=clients)
    plan = FaultPlan.randomized(
        20260808,
        hooks=(
            "net.sock.send", "net.sock.recv",
            "crypto.channel.send", "crypto.channel.recv",
            "service.batch.verdict",
        ),
        kinds=("raise", "truncate", "bitflip", "delay", "drop"),
        n_specs=3 if quick else 6,
        probability=0.05,
        hang_seconds=1.0,
    )
    resilience = ResilienceConfig(max_retransmits=3, backoff_base=0.0)
    try:
        with injected(plan):
            faulted = _run_load_step(
                daemon, policies, profiles[top],
                offered_rate=baseline["offered_per_second"],
                n_items=baseline["items"],
                clients=clients,
                resilience=resilience,
            )
    finally:
        daemon.stop()
        daemon.inspector.close()
    return {
        "profile": top,
        "plan": {
            "seed": plan.seed,
            "specs": len(plan.specs),
            "events_fired": len(plan.events),
            "hooks": sorted(plan.hooks_used()),
        },
        "clean": {
            "offered_per_second": baseline["offered_per_second"],
            "p99_seconds": baseline["latency"]["p99_seconds"],
            "outcomes": baseline["outcomes"],
        },
        "faulted": {
            "offered_per_second": faulted["offered_per_second"],
            "p99_seconds": faulted["latency"]["p99_seconds"],
            "outcomes": faulted["outcomes"],
            "latency": faulted["latency"],
            "stages": faulted["stages"],
        },
    }


# ------------------------------------------------------------------ driver


def run_benchmark(*, quick: bool, only_profile: str | None = None) -> dict:
    libc = build_libc()
    policies = _build_policies(libc)
    profiles = build_profiles(libc, quick=quick)
    if only_profile is not None and only_profile not in profiles:
        raise SystemExit(
            f"unknown profile {only_profile!r}; choose from {PROFILE_NAMES}"
        )

    executor = bench_executor_modes(
        policies,
        profiles if only_profile is None
        else {only_profile: profiles[only_profile]},
        repeats=1 if quick else 3,
    )
    soak = bench_daemon_soak(
        policies, profiles, quick=quick, only_profile=only_profile,
    )
    faults = bench_fault_rerun(policies, profiles, soak, quick=quick)

    result: dict = {
        "schema": "bench_slo/1",
        "quick": quick,
        "profile_filter": only_profile,
        "executor": executor,
        "soak": soak,
        "fault_rerun": faults,
    }
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def _check_bars(result: dict) -> list[str]:
    """Differential always; wall-clock bars only at full scale."""
    problems = []
    executor = result["executor"]
    if executor["divergences"]:
        problems.append(
            f"cross-mode differential: {executor['divergences']} "
            f"divergence(s): {executor['failures'][:3]}"
        )
    fault = result["fault_rerun"]
    if "skipped" not in fault:
        for leg in ("clean", "faulted"):
            if fault[leg]["p99_seconds"] <= 0:
                problems.append(f"fault rerun: no {leg} p99 was measured")
    if not result["quick"]:
        few_huge = executor["profiles"].get("few-huge")
        if few_huge and few_huge["shm_vs_pickle_speedup"] < THROUGHPUT_BAR:
            problems.append(
                f"few-huge shm-vs-pickle speedup "
                f"{few_huge['shm_vs_pickle_speedup']}x below the "
                f"{THROUGHPUT_BAR}x bar"
            )
    return problems


def render_table(result: dict) -> str:
    rows = [
        f"{'profile':<18} {'items':>6} {'MB':>7} {'pickle/s':>9} "
        f"{'shm/s':>9} {'speedup':>8}"
    ]
    for name, prof in result["executor"]["profiles"].items():
        pickle = prof["by_mode"]["process-pickle"]
        shm = prof["by_mode"]["process-shm"]
        rows.append(
            f"{name:<18} {prof['corpus_items']:>6} "
            f"{prof['corpus_bytes'] / 1e6:>7.1f} "
            f"{pickle['items_per_second']:>9} {shm['items_per_second']:>9} "
            f"{prof['shm_vs_pickle_speedup']:>7}x"
        )
    rows.append(
        f"cross-mode differential: {result['executor']['divergences']} "
        "divergence(s)"
    )
    for name, prof in result["soak"]["profiles"].items():
        knee = prof["knee_offered_per_second"]
        last = prof["steps"][-1]
        rows.append(
            f"soak {name}: base {prof['base_rate_per_second']}/s, "
            f"knee {'none' if knee is None else f'{knee}/s offered'}, "
            f"top step p50/p95/p99 = "
            f"{last['latency']['p50_seconds']}/"
            f"{last['latency']['p95_seconds']}/"
            f"{last['latency']['p99_seconds']}s"
        )
    fault = result["fault_rerun"]
    if "skipped" not in fault:
        rows.append(
            f"fault rerun ({fault['profile']}, "
            f"{fault['plan']['events_fired']} fault(s) fired): "
            f"p99 {fault['clean']['p99_seconds']}s clean vs "
            f"{fault['faulted']['p99_seconds']}s faulted; outcomes "
            f"{fault['faulted']['outcomes']}"
        )
    return "\n".join(rows)


# ------------------------------------------------------------------ pytest

def test_latency_slo():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Latency SLO soak (zero-copy executor vs pickling oracle):\n"
        + render_table(result)
    )
    problems = _check_bars(result)
    assert not problems, problems


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small corpora + short ladder (CI perf-smoke mode; "
        "wall-clock bars waived)",
    )
    parser.add_argument(
        "--profile", choices=PROFILE_NAMES, default=None,
        help="run a single arrival profile instead of all four",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON trajectory (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(quick=args.quick, only_profile=args.profile)
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    problems = _check_bars(result)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
