"""Ablation: the instruction-buffer malloc strategy (paper section 4).

"Since dynamic memory allocation involves exiting the enclave mode and
invoking a trampoline, we reduce the involved overhead by restricting the
calls to malloc by allocating a memory page at a time instead of just a
memory region for an instruction."

This ablation measures disassembly with the paper's page-at-a-time buffer
vs the naive per-instruction allocation it replaced.  Each trampoline is
an enclave exit + re-entry (2 SGX instructions = 20K cycles), so the
naive strategy pays ~20K extra cycles per instruction disassembled.
"""

from __future__ import annotations

import pytest

from repro.core import Disassembler
from repro.sgx import CycleMeter
from repro.toolchain import build_libc
from repro.toolchain.workloads import build_workload

from conftest import SCALE, record_table

BENCH = "otp-gen"
_rows = {}


def _disassemble(binary, per_insn_malloc: bool) -> CycleMeter:
    meter = CycleMeter()
    trampolines = [0]

    def alloc(n):
        trampolines[0] += 1
        meter.charge_sgx(2)  # EEXIT + EENTER around the host malloc

    Disassembler(meter, alloc_pages=alloc, per_insn_malloc=per_insn_malloc).run(
        binary.elf
    )
    meter.trampolines = trampolines[0]  # type: ignore[attr-defined]
    return meter


@pytest.mark.parametrize("strategy", ["page-at-a-time", "per-instruction"])
def test_malloc_strategy(benchmark, strategy):
    binary = build_workload(BENCH, libc=build_libc(), scale=SCALE)
    per_insn = strategy == "per-instruction"
    meter = benchmark.pedantic(
        _disassemble, args=(binary, per_insn), rounds=1, iterations=1
    )
    _rows[strategy] = (binary.insn_count, meter.trampolines, meter.total_cycles)
    benchmark.extra_info.update({
        "insns": binary.insn_count,
        "trampolines": meter.trampolines,
        "cycles": meter.total_cycles,
    })

    if len(_rows) == 2:
        naive = _rows["per-instruction"]
        paged = _rows["page-at-a-time"]
        # one trampoline per instruction vs one per 64 instructions
        assert naive[1] == naive[0]
        assert paged[1] == (naive[0] * 64 + 4095) // 4096
        speedup = naive[2] / paged[2]
        assert speedup > 2, "the paper's optimisation must matter"
        lines = [
            f"Ablation: instruction-buffer malloc strategy ({BENCH})",
            f"{'strategy':<18} {'trampolines':>12} {'disasm cycles':>16}",
            "-" * 50,
            f"{'per-instruction':<18} {naive[1]:>12,} {naive[2]:>16,}",
            f"{'page-at-a-time':<18} {paged[1]:>12,} {paged[2]:>16,}",
            f"-> the paper's page-granular buffer is {speedup:.1f}x cheaper",
        ]
        record_table("\n".join(lines))
