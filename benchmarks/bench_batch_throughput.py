"""Throughput of the batched inspection service vs the sequential core.

Not a paper figure — this measures the PR-1 service layer: binaries/sec
for the sequential ``EnGarde.inspect`` baseline, for the batch path at
several worker counts (cold cache), and for a warm verdict cache, over a
deterministic corpus of compliant / non-compliant / malformed variants.

Every batch result is also checked byte-identical against the sequential
baseline, so the benchmark doubles as a differential smoke test.

Quick mode (CI): ``REPRO_BENCH_QUICK=1`` shrinks the corpus and the
worker sweep; ``REPRO_BENCH_SCALE`` is accepted but unused (the corpus
is already small by construction).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.service import BatchInspector, generate_variant_corpus
from repro.toolchain import build_libc

from conftest import record_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
CORPUS_SIZE = 18 if QUICK else 54
WORKER_SWEEP = (1, 4) if QUICK else (1, 2, 4)


@pytest.fixture(scope="module")
def setup():
    libc = build_libc()
    policies = PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])
    corpus = generate_variant_corpus(CORPUS_SIZE, libc=libc)
    return policies, corpus


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_batch_throughput(setup):
    policies, corpus = setup
    n = len(corpus)

    engarde = EnGarde(policies)
    baseline, seq_secs = _timed(lambda: [
        engarde.inspect(raw, benchmark=label).report.serialize()
        for label, raw in corpus
    ])
    seq_bps = n / seq_secs

    rows = [
        f"{'configuration':<28} {'binaries/s':>12} {'vs sequential':>14}",
        f"{'sequential EnGarde.inspect':<28} {seq_bps:>12.1f} {'1.00x':>14}",
    ]

    cold_bps = {}
    for workers in WORKER_SWEEP:
        with BatchInspector(policies, workers=workers, mode="process") as bi:
            bi._ensure_executor()  # pool spin-up outside the timed region
            report, secs = _timed(lambda: bi.inspect_batch(corpus))
            for item, wire in zip(report.results, baseline):
                assert item.report is not None, (item.label, item.error)
                assert item.report.serialize() == wire, item.label
            cold_bps[workers] = report.summary.binaries_per_second
            rows.append(
                f"{f'batch cold, {workers} worker(s)':<28} "
                f"{cold_bps[workers]:>12.1f} "
                f"{cold_bps[workers] / seq_bps:>13.2f}x"
            )
            assert report.summary.errors == 0

    # Warm cache: re-submit the same fleet through a warmed inspector.
    with BatchInspector(policies, workers=4, mode="process") as bi:
        bi.inspect_batch(corpus)  # warm-up pass fills the cache
        report, _ = _timed(lambda: bi.inspect_batch(corpus))
    for item, wire in zip(report.results, baseline):
        assert item.report is not None and item.report.serialize() == wire
    warm_bps = report.summary.binaries_per_second
    hit_ratio = report.summary.cache_hits / n
    rows.append(
        f"{'batch warm cache, 4 workers':<28} {warm_bps:>12.1f} "
        f"{warm_bps / seq_bps:>13.2f}x"
    )
    rows.append(f"cache hit ratio on re-submission: {hit_ratio:.0%}")
    record_table(
        "Batch inspection service throughput "
        f"({n}-binary corpus, {os.cpu_count()} CPU(s) — cold-path speedup "
        "needs real cores):\n" + "\n".join(rows)
    )

    # The PR's acceptance bar: a warmed 4-worker service beats the
    # sequential baseline by well over 1.5x (in practice by orders of
    # magnitude — every verdict is a cache hit).
    assert hit_ratio == 1.0
    assert warm_bps > 1.5 * seq_bps, (warm_bps, seq_bps)


def test_cache_hit_ratio_across_batches(setup):
    """Steady state: resubmitting a fleet k times costs one inspection
    per distinct binary, total."""
    policies, corpus = setup
    with BatchInspector(policies, workers=2, mode="process") as bi:
        for _ in range(3):
            report = bi.inspect_batch(corpus)
    stats = bi.cache.stats()
    assert report.summary.cache_hits == len(corpus)
    # distinct content keys = puts; everything else was served memoized
    assert stats.puts < len(corpus)
    assert stats.hits >= 2 * len(corpus)
