"""Chaos soak over the variant corpus: fail-closed under injected faults.

Not a paper figure — this is the PR-4 resilience gate: the 50+-variant
corpus is inspected once per seed under a randomized
:class:`~repro.faults.plan.FaultPlan` (truncations, bit flips, drops,
raises, delays, and hangs across the pipeline's hook points), and the
run fails on any false accept, any hang (injected hangs must burn the
fake clock, not the wall clock), or any failure that is not a typed
error.  The printed table records fault volume and verdict mix per seed;
every line is reproducible from the seed alone (``repro chaos --seeds N``).

Quick mode (CI): ``REPRO_BENCH_QUICK=1`` shrinks the corpus and the seed
sweep so the job stays inside its ~60s budget.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import (
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
)
from repro.faults.chaos import run_soak
from repro.service import generate_variant_corpus
from repro.toolchain import build_libc

from conftest import record_table

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
CORPUS_SIZE = 18 if QUICK else 54
SEEDS = tuple(range(3)) if QUICK else tuple(range(8))


@pytest.fixture(scope="module")
def setup():
    libc = build_libc()
    policies = PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])
    corpus = generate_variant_corpus(CORPUS_SIZE, libc=libc)
    return policies, corpus


def test_chaos_soak(setup):
    policies, corpus = setup

    t0 = time.perf_counter()
    result = run_soak(
        policies,
        corpus,
        seeds=SEEDS,
        quarantine_threshold=3,
        max_wall_seconds=60.0,
    )
    wall = time.perf_counter() - t0

    rows = [
        f"{'seed':>6} {'faults':>8} {'accept':>8} {'reject':>8} "
        f"{'errors':>8} {'wall s':>8}",
    ]
    for o in result.outcomes:
        rows.append(
            f"{o.seed:>6} {o.faults_fired:>8} {o.accepted:>8} "
            f"{o.rejected:>8} {o.errors:>8} {o.wall_seconds:>8.2f}"
        )
    rows.append(
        f"{len(SEEDS)} seed(s) x {len(corpus)} binaries, "
        f"{result.faults_fired} faults, {wall:.1f}s wall, "
        f"{len(result.violations)} violation(s)"
    )
    record_table(
        "Chaos soak: fail-closed verdicts under randomized fault plans\n"
        + "\n".join(rows)
    )

    assert result.ok, "\n".join(result.summary_lines())
    # The soak must have actually injected faults to prove anything.
    assert result.faults_fired > 0
    # Verdicts still flow for non-faulted items: at least one accept and
    # one reject per seed pass over the mixed corpus.
    for o in result.outcomes:
        assert o.accepted + o.rejected + o.errors == len(corpus)
