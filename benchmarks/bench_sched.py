"""Adaptive scheduler bench: micro-batched dispatch + extent-split.

Three instruments, one artifact (``BENCH_sched.json``):

* **scheduler head-to-head** — every arrival profile's corpus runs
  through the frozen per-item scheduler and the adaptive scheduler
  (same process-pool + shared-memory executor, cache disabled), whole
  batch at a time so the planner can actually group.  Wall throughput
  is reported for both; the *modeled* speedup removes host-parallelism
  from the picture entirely: with ``W`` the measured serial inspection
  cost of the corpus and ``D`` the measured per-future dispatch
  overhead (``(T_per_item - W) / N``), the adaptive lane's modeled
  wall is ``W + F_ad * D`` where ``F_ad`` is the number of futures the
  adaptive plan actually submitted.  Micro-batching and inlining win
  exactly by shrinking ``F_ad`` — the model credits nothing else,
* **extent-split leg** — each few-huge binary is inspected cold,
  serially and via :func:`repro.core.inspect_extent_split` with every
  extent scan timed individually.  The modeled parallel wall is the
  critical path ``(T_split - sum(scan_k)) + max(scan_k)`` (parent
  merge residue plus the slowest extent); the modeled speedup is the
  serial wall over that.  Report wires and cumulative meter ticks must
  be byte-identical between the two paths — the split is an executor
  strategy, never a semantic change,
* **divergence gate** — the full variant corpus plus the huge-text
  binaries run through ``scheduler="per-item"`` (the frozen oracle)
  and ``scheduler="adaptive"``; every verdict wire or typed error must
  match exactly.  Zero divergences is enforced unconditionally, quick
  or not.

Wall-clock bars (adaptive >= 1.25x per-item on compliant-heavy and
many-tiny; extent-split >= 1.5x serial on few-huge) are enforced at
full scale on multi-core hosts; on a single-CPU host they are recorded
with a ``waived: single-cpu host`` annotation and the *modeled* bars
are enforced instead — the model is deterministic dispatch accounting,
not a parallelism lottery.

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_sched.py``) and as a script (``python benchmarks/bench_sched.py
[--quick] [--profile NAME] [--output PATH]``).  Quick mode (CI):
``--quick`` or ``REPRO_BENCH_QUICK=1`` shrinks corpora; all speedup
bars are waived, the divergence gate is not.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    EnGarde,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    inspect_extent_split,
    scan_extent,
)
from repro.service import BatchInspector, generate_variant_corpus
from repro.toolchain import Compiler, CompilerFlags, build_libc, link
from repro.toolchain.ir import FunctionSpec, ProgramSpec
from repro.toolchain.workloads import build_workload

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DEFAULT_OUTPUT = "BENCH_sched.json"

#: acceptance bars (ISSUE): adaptive vs per-item on the dispatch-bound
#: profiles, and extent-split vs serial on few-huge
ADAPTIVE_BAR = 1.25
ADAPTIVE_BAR_PROFILES = ("compliant-heavy", "many-tiny")
SPLIT_BAR = 1.5

PROFILE_NAMES = (
    "compliant-heavy", "adversarial-mix", "many-tiny", "few-huge",
)

#: workload programs with genuinely large ``.text`` — the data-heavy
#: giants from bench_slo have tiny text and (correctly) refuse to split
HUGE_WORKLOADS = ("bzip2", "mcf", "graph500")


# ------------------------------------------------------------------ corpora


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def build_micro_binary(
    libc, tag: str, index: int, *, protected: bool = True,
) -> bytes:
    """A minimal program: one function, no libc calls.

    This is the regime the ``many-tiny`` profile names — inspection
    work so small that per-item dispatch overhead is a first-class
    cost, not a rounding error.  (Variant-corpus programs carry a full
    libc text and cost ~10x more to inspect, which buries dispatch.)
    ``protected=False`` drops the stack canary, so the binary is
    policy-rejected at the same micro inspection cost.
    """
    spec = ProgramSpec(
        name=f"{tag}{index}",
        functions=[FunctionSpec(
            name="main", n_blocks=1, ops_per_block=(2, 3), frame_slots=1,
        )],
        libc_imports=[],
        seed=b"sched-%s-%d" % (tag.encode(), index),
    )
    flags = CompilerFlags(stack_protector=protected, ifcc=True)
    return link(Compiler(flags).compile(spec), libc).elf


def build_profiles(libc, *, quick: bool) -> dict[str, list[tuple[str, bytes]]]:
    """One labelled corpus per arrival profile (deterministic).

    ``few-huge`` is *text*-heavy here (full workload programs), not
    data-heavy: the extent planner splits along function boundaries in
    ``.text``, so a multi-MB ``.data`` binary with a 2 KB text section
    is a fallback case, not a split case.  ``compliant-heavy`` and
    ``many-tiny`` are overhead-dominated micro binaries — the corpora
    the micro-batch/inline lanes exist for — while ``adversarial-mix``
    keeps the full variant rotation so the divergence gate covers every
    verdict and error shape.
    """
    n_variants = 18 if quick else 45
    n_micro = 12 if quick else 48
    n_tiny = 18 if quick else 72
    names = HUGE_WORKLOADS[:1] if quick else HUGE_WORKLOADS

    variants = generate_variant_corpus(n_variants, libc=libc)
    return {
        # mostly-accepting steady state of small binaries, plus a thin
        # sliver of same-sized rejects so the reject path stays warm
        "compliant-heavy": [
            (f"fleet{i:02d}", build_micro_binary(libc, "fleet", i))
            for i in range(n_micro)
        ] + [
            (f"lax{i}", build_micro_binary(libc, "lax", i, protected=False))
            for i in range(max(n_micro // 12, 1))
        ],
        "adversarial-mix": variants,
        "many-tiny": [
            (f"tiny{i:02d}", build_micro_binary(libc, "tiny", i))
            for i in range(n_tiny)
        ],
        "few-huge": [
            (
                name,
                build_workload(
                    name, scale=1.0, libc=libc,
                    stack_protector=True, ifcc=True,
                ).elf,
            )
            for name in names
        ],
    }


# ------------------------------------------------- scheduler head-to-head


def _item_fingerprint(item) -> tuple:
    """The comparable identity of one verdict: wire bytes or typed error."""
    if item.report is not None:
        return ("report", hashlib.sha256(item.report.serialize()).hexdigest())
    return ("error", item.error or "")


def _timed_batch(
    policies: PolicyRegistry,
    corpus: list[tuple[str, bytes]],
    *,
    repeats: int,
    **kwargs,
) -> tuple[float, dict, dict[str, tuple]]:
    """Run *corpus* whole-batch *repeats* times; return (wall, dispatch,
    per-label fingerprints from the last pass)."""
    with BatchInspector(policies, cache=False, **kwargs) as insp:
        # absorb pool spin-up (and, in serial mode, first-inspection
        # lazy-init costs) outside the clock — the model needs W and D
        # from steady state, not from whoever happened to run first
        insp.inspect_batch([
            (f"warm{i}", corpus[0][1]) for i in range(insp.workers)
        ])
        t0 = time.perf_counter()
        for _ in range(repeats):
            report = insp.inspect_batch(corpus)
        elapsed = time.perf_counter() - t0
    prints = {item.label: _item_fingerprint(item) for item in report.results}
    return elapsed, dict(report.summary.dispatch), prints


def bench_schedulers(
    policies: PolicyRegistry,
    profiles: dict[str, list[tuple[str, bytes]]],
    *,
    repeats: int,
    workers: int,
) -> dict:
    """Per-item vs adaptive over every profile, plus the dispatch model.

    The cache is disabled so every pass pays full inspection cost and
    the comparison measures dispatch, not memoization.  Corpora are
    submitted whole-batch — the regime the adaptive planner exists for
    (one-item batches degenerate to per-item by construction).
    """
    out: dict = {"workers": workers, "profiles": {}}
    divergences: list[str] = []
    pool = dict(mode="process", shared_memory=True, workers=workers)
    for profile, corpus in profiles.items():
        n_items = len(corpus) * repeats
        serial_wall, _, oracle = _timed_batch(
            policies, corpus, repeats=repeats, mode="serial",
        )
        per_item_wall, per_item_dispatch, per_item_prints = _timed_batch(
            policies, corpus, repeats=repeats,
            scheduler="per-item", **pool,
        )
        adaptive_wall, adaptive_dispatch, adaptive_prints = _timed_batch(
            policies, corpus, repeats=repeats,
            scheduler="adaptive", **pool,
        )
        for prints, who in (
            (per_item_prints, "per-item"), (adaptive_prints, "adaptive"),
        ):
            for label, fp in prints.items():
                if oracle.get(label) != fp:
                    divergences.append(
                        f"{profile}/{label}: {who} produced {fp}, "
                        f"serial produced {oracle.get(label)}"
                    )

        # dispatch model: W = serial work, D = per-future overhead as
        # actually paid by the frozen per-item path, F_ad = futures the
        # adaptive plan submitted.  Modeled adaptive wall = W + F_ad*D.
        futures_per_item = max(n_items, 1)
        overhead_per_future = max(
            (per_item_wall - serial_wall) / futures_per_item, 0.0,
        )
        # dispatch counters are per-batch; one pass's futures times the
        # number of passes matches the repeats-spanning walls above
        futures_adaptive = adaptive_dispatch["futures_submitted"] * repeats
        modeled_adaptive = serial_wall + futures_adaptive * overhead_per_future
        out["profiles"][profile] = {
            "corpus_items": len(corpus),
            "corpus_bytes": sum(len(raw) for _, raw in corpus),
            "repeats": repeats,
            "serial_seconds": round(serial_wall, 4),
            "per_item": {
                "seconds": round(per_item_wall, 4),
                "items_per_second": round(n_items / per_item_wall, 2),
                "dispatch": per_item_dispatch,
            },
            "adaptive": {
                "seconds": round(adaptive_wall, 4),
                "items_per_second": round(n_items / adaptive_wall, 2),
                "dispatch": adaptive_dispatch,
            },
            "wall_speedup": round(per_item_wall / adaptive_wall, 2),
            "model": {
                "work_seconds": round(serial_wall, 4),
                "overhead_per_future_seconds": round(
                    overhead_per_future, 6,
                ),
                "futures_per_item": futures_per_item,
                "futures_adaptive": futures_adaptive,
                "modeled_adaptive_seconds": round(modeled_adaptive, 4),
                "modeled_speedup": round(
                    per_item_wall / modeled_adaptive, 2,
                ) if modeled_adaptive > 0 else 0.0,
            },
        }
    out["divergences"] = len(divergences)
    out["failures"] = divergences[:20]
    return out


# ------------------------------------------------------- extent-split leg


def bench_extent_split(
    policies: PolicyRegistry,
    corpus: list[tuple[str, bytes]],
    *,
    parts: int,
) -> dict:
    """Cold single-binary extent split vs cold serial, per huge binary.

    Everything runs in-process so per-extent scan cost is measurable in
    isolation; the modeled parallel wall is the critical path — merge
    residue plus the slowest extent — which is what a multi-core host
    would pay with the scans perfectly overlapped.
    """
    out: dict = {"parts": parts, "binaries": {}}
    divergences: list[str] = []
    for label, raw in corpus:
        serial_engarde = EnGarde(policies)
        t0 = time.perf_counter()
        serial_outcome = serial_engarde.inspect(raw, benchmark="")
        serial_wall = time.perf_counter() - t0

        scan_walls: list[float] = []

        def run_scans(tasks, _walls=scan_walls):
            scans = []
            for task in tasks:
                t = time.perf_counter()
                scans.append(scan_extent(raw, policies, task))
                _walls.append(time.perf_counter() - t)
            return scans

        split_engarde = EnGarde(policies)
        t0 = time.perf_counter()
        result = inspect_extent_split(
            split_engarde, raw, benchmark="", parts=parts,
            run_scans=run_scans,
        )
        split_wall = time.perf_counter() - t0

        serial_wire = serial_outcome.report.serialize()
        split_wire = result.report.serialize()
        if serial_wire != split_wire:
            divergences.append(f"{label}: report wire differs")
        serial_ticks = dict(serial_engarde.meter.total.events)
        split_ticks = dict(split_engarde.meter.total.events)
        if serial_ticks != split_ticks:
            divergences.append(f"{label}: meter ticks differ")

        residue = max(split_wall - sum(scan_walls), 0.0)
        modeled_parallel = residue + (max(scan_walls) if scan_walls else 0.0)
        out["binaries"][label] = {
            "bytes": len(raw),
            "split": result.split,
            "extents": result.extents,
            "fallback_reason": result.fallback_reason,
            "serial_seconds": round(serial_wall, 4),
            "split_wall_seconds": round(split_wall, 4),
            "scan_seconds": [round(w, 4) for w in scan_walls],
            "merge_residue_seconds": round(residue, 4),
            "modeled_parallel_seconds": round(modeled_parallel, 4),
            "modeled_speedup": round(
                serial_wall / modeled_parallel, 2,
            ) if modeled_parallel > 0 else 0.0,
            "wall_speedup": round(serial_wall / split_wall, 2),
        }
    out["divergences"] = len(divergences)
    out["failures"] = divergences
    return out


# --------------------------------------------------------------- the gate


def _check_bars(result: dict, *, cpu_count: int) -> list[str]:
    """Divergence gate always; speedup bars only at full scale.

    At full scale the *modeled* bars always apply (they are
    deterministic dispatch/critical-path accounting); the wall-clock
    bars additionally require a multi-core host — on one CPU, overlap
    is physically impossible and the wall numbers are annotated
    ``waived`` instead of gated.
    """
    problems = []
    sched = result["schedulers"]
    if sched["divergences"]:
        problems.append(
            f"scheduler differential: {sched['divergences']} "
            f"divergence(s): {sched['failures'][:3]}"
        )
    split = result["extent_split"]
    if split["divergences"]:
        problems.append(
            f"extent-split differential: {split['divergences']} "
            f"divergence(s): {split['failures'][:3]}"
        )
    if result["quick"]:
        return problems

    wall_enforced = cpu_count >= 2
    for profile in ADAPTIVE_BAR_PROFILES:
        prof = sched["profiles"].get(profile)
        if prof is None:
            continue
        if prof["model"]["modeled_speedup"] < ADAPTIVE_BAR:
            problems.append(
                f"{profile}: modeled adaptive speedup "
                f"{prof['model']['modeled_speedup']}x below the "
                f"{ADAPTIVE_BAR}x bar"
            )
        if wall_enforced and prof["wall_speedup"] < ADAPTIVE_BAR:
            problems.append(
                f"{profile}: wall adaptive speedup {prof['wall_speedup']}x "
                f"below the {ADAPTIVE_BAR}x bar"
            )
    for label, binary in split["binaries"].items():
        if not binary["split"]:
            problems.append(
                f"few-huge/{label}: did not extent-split "
                f"({binary['fallback_reason']})"
            )
            continue
        if binary["modeled_speedup"] < SPLIT_BAR:
            problems.append(
                f"few-huge/{label}: modeled extent-split speedup "
                f"{binary['modeled_speedup']}x below the {SPLIT_BAR}x bar"
            )
        if wall_enforced and binary["wall_speedup"] < SPLIT_BAR:
            problems.append(
                f"few-huge/{label}: wall extent-split speedup "
                f"{binary['wall_speedup']}x below the {SPLIT_BAR}x bar"
            )
    return problems


# ------------------------------------------------------------------ driver


def run_benchmark(*, quick: bool, only_profile: str | None = None) -> dict:
    libc = build_libc()
    policies = _build_policies(libc)
    profiles = build_profiles(libc, quick=quick)
    if only_profile is not None and only_profile not in profiles:
        raise SystemExit(
            f"unknown profile {only_profile!r}; choose from {PROFILE_NAMES}"
        )
    if only_profile is not None:
        profiles = {only_profile: profiles[only_profile]}

    cpu_count = os.cpu_count() or 1
    workers = max(2, min(cpu_count, 4))
    schedulers = bench_schedulers(
        policies, profiles, repeats=1 if quick else 3, workers=workers,
    )
    if "few-huge" in profiles:
        # the leg models the prescribed 4-way split (critical path =
        # residue + slowest extent), independent of this host's width
        extent = bench_extent_split(
            policies, profiles["few-huge"], parts=max(4, workers),
        )
    else:
        extent = {"parts": 0, "binaries": {}, "divergences": 0,
                  "failures": [], "skipped": "few-huge filtered out"}

    result: dict = {
        "schema": "bench_sched/1",
        "quick": quick,
        "profile_filter": only_profile,
        "bars": {
            "adaptive_modeled": ADAPTIVE_BAR,
            "adaptive_profiles": list(ADAPTIVE_BAR_PROFILES),
            "extent_split_modeled": SPLIT_BAR,
            "wall_bars_enforced": (not quick) and cpu_count >= 2,
            "wall_bars_note": None if cpu_count >= 2
            else "waived: single-cpu host",
        },
        "schedulers": schedulers,
        "extent_split": extent,
    }
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def render_table(result: dict) -> str:
    rows = [
        f"{'profile':<18} {'items':>6} {'per-item/s':>11} {'adaptive/s':>11} "
        f"{'wall':>6} {'model':>6}"
    ]
    for name, prof in result["schedulers"]["profiles"].items():
        rows.append(
            f"{name:<18} {prof['corpus_items']:>6} "
            f"{prof['per_item']['items_per_second']:>11} "
            f"{prof['adaptive']['items_per_second']:>11} "
            f"{prof['wall_speedup']:>5}x {prof['model']['modeled_speedup']:>5}x"
        )
    rows.append(
        f"scheduler differential: {result['schedulers']['divergences']} "
        "divergence(s)"
    )
    split = result["extent_split"]
    for label, binary in split["binaries"].items():
        rows.append(
            f"extent-split {label}: {binary['extents']} extent(s), "
            f"serial {binary['serial_seconds']}s, modeled parallel "
            f"{binary['modeled_parallel_seconds']}s "
            f"({binary['modeled_speedup']}x; wall {binary['wall_speedup']}x)"
        )
    rows.append(
        f"extent-split differential: {split['divergences']} divergence(s)"
    )
    note = result["bars"]["wall_bars_note"]
    if note:
        rows.append(f"wall-clock bars {note}")
    return "\n".join(rows)


# ------------------------------------------------------------------ pytest

def test_adaptive_scheduler_bench():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Adaptive scheduler (micro-batch + extent-split) vs per-item "
        "oracle:\n" + render_table(result)
    )
    problems = _check_bars(result, cpu_count=os.cpu_count() or 1)
    assert not problems, problems


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small corpora (CI perf-smoke mode; speedup bars waived, "
        "divergence gate enforced)",
    )
    parser.add_argument(
        "--profile", choices=PROFILE_NAMES, default=None,
        help="run a single arrival profile instead of all four",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON artifact (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(quick=args.quick, only_profile=args.profile)
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    problems = _check_bars(result, cpu_count=os.cpu_count() or 1)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
