"""Diff two ``BENCH_*.json`` artifacts and gate on headline regressions.

CI regenerates a benchmark artifact on every run; this tool compares it
against the committed baseline and exits non-zero when a *headline*
metric regressed beyond tolerance — turning a silent perf cliff into a
red check with the offending numbers in the log.

Usage::

    python benchmarks/compare_bench.py BASELINE CURRENT \
        [--tolerance PCT] [--metric PATH[:DIRECTION[:PCT]] ...]

Both artifacts must carry the same ``schema`` tag and the same
``quick`` flag (quick and full runs use different corpora, so their
numbers are not comparable; ``--allow-scale-mismatch`` overrides when
you really mean it).

Each known schema ships a registry of headline metrics — dotted paths
with ``*`` wildcards, a direction, and a per-metric tolerance.  Exact
metrics (``divergences``, extent counts) fail on *any* unfavourable
change; ratio metrics (modeled speedups) fail when the current value
falls below ``baseline * (1 - tolerance)``.  Wall-clock throughput is
deliberately not gated by default: runner-to-runner wall noise would
make the check cry wolf, and every bench already enforces its own
full-scale wall bars.  ``--metric`` adds ad-hoc paths on top of (or,
for unknown schemas, instead of) the registry.

Metrics present in the baseline but missing from the current artifact
fail the gate (a deleted headline is a regression in itself); metrics
new in the current artifact are ignored — the next baseline refresh
picks them up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: direction → (is_regression(baseline, current, tolerance), phrasing)
HIGHER = "higher"
LOWER = "lower"
EXACT = "exact"

#: headline metrics per artifact schema: (path, direction, tolerance)
#: — tolerance is a fraction, ignored for ``exact``
REGISTRY: dict[str, list[tuple[str, str, float]]] = {
    "bench_sched/1": [
        # the paper-critical invariant: both gates stay at zero
        ("schedulers.divergences", EXACT, 0.0),
        ("extent_split.divergences", EXACT, 0.0),
        # the split must keep engaging (a planner regression shows up
        # here as a fallback long before any wall number moves)
        ("extent_split.binaries.*.extents", EXACT, 0.0),
        # modeled speedups are dispatch/critical-path accounting, far
        # steadier than wall — but still timing-derived, so the
        # tolerance absorbs runner noise while catching collapse
        ("schedulers.profiles.*.model.modeled_speedup", HIGHER, 0.5),
        ("extent_split.binaries.*.modeled_speedup", HIGHER, 0.5),
    ],
    "bench_slo/1": [
        ("executor.divergences", EXACT, 0.0),
        ("executor.profiles.*.shm_vs_pickle_speedup", HIGHER, 0.5),
    ],
}


def _walk(payload, path: list[str], prefix: list[str]):
    """Yield ``(dotted_path, value)`` for every match of *path*."""
    if not path:
        yield ".".join(prefix), payload
        return
    head, rest = path[0], path[1:]
    if not isinstance(payload, dict):
        return
    keys = list(payload) if head == "*" else ([head] if head in payload else [])
    for key in keys:
        yield from _walk(payload[key], rest, prefix + [key])


def compare(
    baseline: dict,
    current: dict,
    metrics: list[tuple[str, str, float]],
) -> list[str]:
    """Return one problem string per regressed headline metric."""
    problems: list[str] = []
    for path, direction, tolerance in metrics:
        base_values = dict(_walk(baseline, path.split("."), []))
        cur_values = dict(_walk(current, path.split("."), []))
        if not base_values:
            problems.append(f"{path}: not present in baseline")
            continue
        for where, base in sorted(base_values.items()):
            if where not in cur_values:
                problems.append(f"{where}: present in baseline, missing now")
                continue
            cur = cur_values[where]
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                continue
            if direction == EXACT:
                if cur != base:
                    problems.append(f"{where}: was {base}, now {cur}")
            elif direction == HIGHER:
                floor = base * (1.0 - tolerance)
                if cur < floor:
                    problems.append(
                        f"{where}: {cur} fell below {floor:.4g} "
                        f"(baseline {base}, tolerance {tolerance:.0%})"
                    )
            elif direction == LOWER:
                ceiling = base * (1.0 + tolerance)
                if cur > ceiling:
                    problems.append(
                        f"{where}: {cur} rose above {ceiling:.4g} "
                        f"(baseline {base}, tolerance {tolerance:.0%})"
                    )
    return problems


def _parse_metric(spec: str, default_tolerance: float) -> tuple[str, str, float]:
    parts = spec.split(":")
    path = parts[0]
    direction = parts[1] if len(parts) > 1 else HIGHER
    if direction not in (HIGHER, LOWER, EXACT):
        raise SystemExit(
            f"bad --metric direction {direction!r} "
            f"(use {HIGHER}/{LOWER}/{EXACT})"
        )
    tolerance = (
        float(parts[2]) / 100.0 if len(parts) > 2 else default_tolerance
    )
    return path, direction, tolerance


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--tolerance", type=float, default=None, metavar="PCT",
        help="override every ratio metric's tolerance (percent)",
    )
    parser.add_argument(
        "--metric", action="append", default=[],
        metavar="PATH[:DIRECTION[:PCT]]",
        help="extra dotted metric path (wildcards allowed), e.g. "
        "schedulers.profiles.*.wall_speedup:higher:30",
    )
    parser.add_argument(
        "--allow-scale-mismatch", action="store_true",
        help="compare artifacts whose quick flags differ (numbers from "
        "different corpus scales are normally not comparable)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot load artifacts: {exc}", file=sys.stderr)
        return 2

    schema = baseline.get("schema")
    if schema != current.get("schema"):
        print(
            f"schema mismatch: baseline {schema!r} vs "
            f"current {current.get('schema')!r}",
            file=sys.stderr,
        )
        return 2
    if (
        baseline.get("quick") != current.get("quick")
        and not args.allow_scale_mismatch
    ):
        print(
            f"scale mismatch: baseline quick={baseline.get('quick')} vs "
            f"current quick={current.get('quick')} "
            "(--allow-scale-mismatch to override)",
            file=sys.stderr,
        )
        return 2

    metrics = list(REGISTRY.get(schema, []))
    if args.tolerance is not None:
        metrics = [
            (path, direction, args.tolerance / 100.0)
            if direction != EXACT else (path, direction, tolerance)
            for path, direction, tolerance in metrics
        ]
    default_tol = (args.tolerance or 10.0) / 100.0
    metrics += [_parse_metric(spec, default_tol) for spec in args.metric]
    if not metrics:
        print(
            f"no headline metrics known for schema {schema!r}; "
            "name some with --metric",
            file=sys.stderr,
        )
        return 2

    problems = compare(baseline, current, metrics)
    checked = sum(
        len(dict(_walk(baseline, path.split("."), [])))
        for path, _, _ in metrics
    )
    if problems:
        print(
            f"{len(problems)} headline regression(s) vs "
            f"{args.baseline} ({checked} metric(s) checked):"
        )
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"no headline regressions vs {args.baseline} "
        f"({checked} metric(s) checked)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
