"""Ablation: memoising function hashes in the library-linking policy.

The paper's policy recomputes the callee's SHA-256 for *every* direct
call site (there is no cache), which is why 429.mcf — small but
call-dense — pays the highest per-instruction policy cost in Figure 3.
This ablation quantifies the optimisation the paper leaves on the table:
hash each distinct callee once.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_cell

from conftest import SCALE, record_table

BENCH = "mcf"
_rows = {}


@pytest.mark.parametrize("memoize", [False, True], ids=["paper", "memoized"])
def test_hash_memoization(benchmark, memoize):
    cell = benchmark.pedantic(
        run_cell,
        args=(BENCH, "library-linking"),
        kwargs={"scale": SCALE, "policy_options": {"memoize": memoize}},
        rounds=1, iterations=1,
    )
    assert cell.accepted
    _rows["memoized" if memoize else "paper"] = cell
    benchmark.extra_info["policy_cycles"] = cell.policy_cycles

    if len(_rows) == 2:
        paper = _rows["paper"]
        memo = _rows["memoized"]
        assert memo.policy_cycles < paper.policy_cycles
        saving = paper.policy_cycles / memo.policy_cycles
        record_table("\n".join([
            f"Ablation: library-linking hash memoisation ({BENCH})",
            f"{'variant':<12} {'policy cycles':>16}",
            "-" * 30,
            f"{'paper':<12} {paper.policy_cycles:>16,}",
            f"{'memoized':<12} {memo.policy_cycles:>16,}",
            f"-> memoisation saves {saving:.1f}x on a call-dense workload",
        ]))
