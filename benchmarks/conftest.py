"""Benchmark configuration.

Every benchmark regenerates one table/figure of the paper at
``REPRO_BENCH_SCALE`` (default 1.0 = the paper's exact instruction
counts; set e.g. 0.1 for a quick pass).  Results are printed as
paper-style tables at the end of the session and recorded in each
benchmark's ``extra_info``.

The *timed* quantity is the wall-clock of the simulation; the quantities
that reproduce the paper are the simulated cycle counts in extra_info —
wall time is only a sanity signal.
"""

from __future__ import annotations

import os
import platform

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_tables: list[str] = []


def record_table(text: str) -> None:
    _tables.append(text)


def host_metadata() -> dict:
    """Host facts stamped into every ``BENCH_*.json`` artifact.

    Wall-clock numbers are only comparable across PRs when the machine
    behind them is known; this makes the perf trajectory interpretable
    (and makes CI-runner numbers distinguishable from workstation runs).
    """
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "repro_workers_env": os.environ.get("REPRO_WORKERS"),
    }


def stamp_artifact(payload: dict) -> dict:
    """Attach :func:`host_metadata` to a benchmark payload in place."""
    payload.setdefault("host", host_metadata())
    return payload


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return SCALE


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _tables:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 100)
        terminalreporter.write_line(
            f"Paper-figure reproductions (scale={SCALE}):"
        )
        for table in _tables:
            terminalreporter.write_line("")
            for line in table.splitlines():
                terminalreporter.write_line(line)
        terminalreporter.write_line("=" * 100)
