"""Provisioning data-plane benchmark: the crypto overhaul vs the frozen
reference, end to end.

Not a paper figure — this measures the PR-5 provisioning hot path
(handshake -> encrypted content stream -> MRENCLAVE -> verdict):

* primitive throughput of the rebuilt kernels (SHA-256 compression,
  batched AES-CTR, HMAC midstates, RSA-CRT) against the frozen
  pre-overhaul implementations in ``repro.crypto.ref``,
* one **cold** end-to-end provisioning run, optimized vs reference
  (reference = ``optimized=False`` channels on both endpoints, the
  reference SHA-256 inside the measurement log, and an uncached
  client-side MRENCLAVE replay),
* a **fleet** scenario — N clients provisioning the same image — where
  the optimized side additionally runs the provisioning verdict cache,
  as a provider would; this is the headline >=3x acceptance bar.

Every mode pair also runs the **differential check**: byte-identical
wire transcripts (every socket frame), identical MRENCLAVE, identical
sealed-page blobs, and identical verdicts.  Any divergence fails the
benchmark — the optimizations may only change wall-clock.

Results land in ``BENCH_provisioning.json`` (uploaded as a CI artifact).

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_provisioning.py``) and as a script (``python benchmarks/
bench_provisioning.py [--quick] [--output PATH]``).  Quick mode (CI):
``--quick`` or ``REPRO_BENCH_QUICK=1`` shrinks the workload and fleet.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    provision,
)
from repro.core.provisioning import expected_mrenclave
from repro.crypto import HmacDrbg
from repro.crypto.aes import Aes, ctr_xor
from repro.crypto.mac import hmac_key
from repro.crypto.ref import (
    RefSHA256,
    ref_aes_ctr,
    ref_channel_hmac,
    ref_hmac_sha256,
    ref_sha256,
)
from repro.crypto.rsa import generate_keypair
from repro.crypto.sha256 import SHA256
from repro.net import sock as sock_module
from repro.service import ProvisioningVerdictCache
from repro.sgx import SgxParams
from repro.sgx.paging import EvictedPage, seal_page
from repro.toolchain import build_libc
from repro.toolchain.workloads import build_workload
from repro.sgx import measurement as measurement_module

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DEFAULT_OUTPUT = "BENCH_provisioning.json"

WORKLOAD = "nginx"
SCALE_FULL = 0.3
SCALE_QUICK = 0.05
FLEET_FULL = 8
FLEET_QUICK = 3


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def _pages_for(binary) -> int:
    from repro.harness import runner

    return max(runner._pages_for(binary) + 16, 64)


def _make_provider(policies, binary, *, optimized: bool, keypair=None,
                   verdict_cache=None, epc_pages: int = 8192) -> CloudProvider:
    return CloudProvider(
        policies,
        params=SgxParams(epc_pages=epc_pages, heap_initial_pages=512),
        rsa_bits=1024,
        client_pages=_pages_for(binary),
        channel_keypair=keypair,
        channel_optimized=optimized,
        verdict_cache=verdict_cache,
    )


class _reference_measurement:
    """Context manager: the measurement log hashes with the frozen SHA-256."""

    def __enter__(self):
        self._saved = measurement_module.SHA256
        measurement_module.SHA256 = RefSHA256
        return self

    def __exit__(self, *exc):
        measurement_module.SHA256 = self._saved
        return False


# ------------------------------------------------------------- primitives

def _best_rate(fn, units: float, *, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return units / best


def bench_primitives(*, quick: bool) -> dict:
    repeats = 2 if quick else 3
    mib = 1024 * 1024
    sha_bytes = (mib // 4) if quick else mib
    ctr_bytes = (mib // 4) if quick else mib
    hmac_iters = 2000 if quick else 10000
    rsa_iters = 20 if quick else 100

    sha_data = bytes(range(256)) * (sha_bytes // 256)
    sha_opt = _best_rate(
        lambda: SHA256().update(sha_data) or None, len(sha_data) / mib,
        repeats=repeats,
    )
    sha_ref = _best_rate(
        lambda: ref_sha256(sha_data), len(sha_data) / mib, repeats=repeats
    )

    key = bytes(range(32))
    nonce = b"benchnnc"
    ctr_data = bytes(ctr_bytes)
    # distinct counter windows per repeat so the keystream memo cannot
    # serve a previous repeat's work — this measures computation
    counters = iter(range(0, 1 << 40, 1 << 30))
    aes = Aes.for_key(key)
    ctr_opt = _best_rate(
        lambda: ctr_xor(aes, nonce, ctr_data, initial_counter=next(counters)),
        len(ctr_data) / mib, repeats=repeats,
    )
    ref_counters = iter(range(1 << 50, 2 << 50, 1 << 30))
    ctr_ref = _best_rate(
        lambda: ref_aes_ctr(key, nonce, ctr_data,
                            initial_counter=next(ref_counters)),
        len(ctr_data) / mib, repeats=repeats,
    )

    # The pre-PR record MAC hashed via hashlib but re-prepared the key's
    # ipad/opad blocks on every call — ref_channel_hmac is that code
    # verbatim, so this isolates what the midstate cache buys.
    record = bytes(4096)
    mac_key = bytes(range(64, 96))
    prepared = hmac_key(mac_key)
    hmac_opt = _best_rate(
        lambda: [prepared.mac(record) for _ in range(hmac_iters)],
        hmac_iters, repeats=repeats,
    )
    hmac_ref = _best_rate(
        lambda: [ref_channel_hmac(mac_key, record) for _ in range(hmac_iters)],
        hmac_iters, repeats=repeats,
    )

    priv = generate_keypair(1024, HmacDrbg(b"bench-rsa"))
    c = pow(0xC0FFEE, priv.public_key.e, priv.n)
    assert priv._private_op(c) == pow(c, priv.d, priv.n)
    rsa_opt = _best_rate(
        lambda: [priv._private_op(c) for _ in range(rsa_iters)],
        rsa_iters, repeats=repeats,
    )
    rsa_ref = _best_rate(
        lambda: [pow(c, priv.d, priv.n) for _ in range(rsa_iters)],
        rsa_iters, repeats=repeats,
    )

    def cell(name, unit, opt, ref):
        return {
            "primitive": name, "unit": unit,
            "optimized": round(opt, 2), "reference": round(ref, 2),
            "speedup": round(opt / ref, 2),
        }

    return [
        cell("sha256", "MiB/s", sha_opt, sha_ref),
        cell("aes_ctr", "MiB/s", ctr_opt, ctr_ref),
        cell("hmac_sha256_4k", "records/s", hmac_opt, hmac_ref),
        cell("rsa1024_private", "ops/s", rsa_opt, rsa_ref),
    ]


# ------------------------------------------------------------- end to end

def _one_run(policies, binary, *, optimized: bool, keypair=None,
             verdict_cache=None):
    provider = _make_provider(
        policies, binary, optimized=optimized, keypair=keypair,
        verdict_cache=verdict_cache,
    )
    client = EnclaveClient(
        binary.elf, policies=policies, benchmark=WORKLOAD,
        optimized=optimized,
    )
    return provision(provider, client)


def _timed_run(policies, binary, *, optimized: bool, keypair=None,
               verdict_cache=None):
    t0 = time.perf_counter()
    result = _one_run(
        policies, binary, optimized=optimized, keypair=keypair,
        verdict_cache=verdict_cache,
    )
    elapsed = time.perf_counter() - t0
    assert result.accepted, "benchmark workload must provision cleanly"
    return elapsed, result


def bench_end_to_end(policies, binary, *, fleet: int) -> dict:
    from repro.core import provisioning as prov_module

    # Cold: a fresh provider and client pay the whole protocol, including
    # RSA keygen and the full MRENCLAVE replay on both sides.
    with _reference_measurement():
        ref_cold, _ = _timed_run(policies, binary, optimized=False)
    prov_module._MRENCLAVE_MEMO.clear()
    opt_cold, _ = _timed_run(policies, binary, optimized=True)

    # Fleet: N clients provision the same image against ONE long-lived
    # provider (one machine, one quoting enclave, one channel identity —
    # keygen is paid once, by both modes equally; every other cost is
    # per-client).  The optimized side additionally runs the provisioning
    # verdict cache, as a production provider would.
    keypair = generate_keypair(1024, HmacDrbg(b"bench-fleet-keypair"))

    def run_fleet(*, optimized: bool, verdict_cache=None) -> float:
        # Every session's enclave stays resident on the shared machine
        # (~1.4k pages each at scale 0.3), so size the EPC to the fleet.
        provider = _make_provider(
            policies, binary, optimized=optimized, keypair=keypair,
            verdict_cache=verdict_cache, epc_pages=max(8192, 2048 * fleet),
        )
        t0 = time.perf_counter()
        for _ in range(fleet):
            client = EnclaveClient(
                binary.elf, policies=policies, benchmark=WORKLOAD,
                optimized=optimized,
            )
            result = provision(provider, client)
            assert result.accepted
        return time.perf_counter() - t0

    with _reference_measurement():
        prov_module._MRENCLAVE_MEMO.clear()
        ref_fleet = run_fleet(optimized=False)

    cache = ProvisioningVerdictCache()
    opt_fleet = run_fleet(optimized=True, verdict_cache=cache)
    stats = cache.stats()

    return {
        "workload": WORKLOAD,
        "binary_bytes": len(binary.elf),
        "cold": {
            "optimized_seconds": round(opt_cold, 3),
            "reference_seconds": round(ref_cold, 3),
            "speedup": round(ref_cold / opt_cold, 2),
        },
        "fleet": {
            "clients": fleet,
            "optimized_seconds": round(opt_fleet, 3),
            "reference_seconds": round(ref_fleet, 3),
            "optimized_runs_per_sec": round(fleet / opt_fleet, 3),
            "reference_runs_per_sec": round(fleet / ref_fleet, 3),
            "speedup": round(ref_fleet / opt_fleet, 2),
            "verdict_cache": stats.as_dict(),
        },
    }


# ------------------------------------------------------------ differential

def _record_transcript(policies, binary, *, optimized: bool):
    frames: list[tuple[str, bytes]] = []
    original_send = sock_module.SimSocket.send

    def recording_send(self, message):
        frames.append((self.name, bytes(message)))
        return original_send(self, message)

    sock_module.SimSocket.send = recording_send
    try:
        if optimized:
            result = _one_run(policies, binary, optimized=True)
        else:
            with _reference_measurement():
                result = _one_run(policies, binary, optimized=False)
    finally:
        sock_module.SimSocket.send = original_send
    return frames, result


def run_differential(policies, binary) -> dict:
    cases = 0
    failures: list[str] = []

    # 1. full-transcript wire identity + verdict identity
    cases += 1
    fast_frames, fast_result = _record_transcript(
        policies, binary, optimized=True
    )
    ref_frames, ref_result = _record_transcript(
        policies, binary, optimized=False
    )
    if fast_frames != ref_frames:
        failures.append(
            f"wire transcript differs ({len(fast_frames)} vs "
            f"{len(ref_frames)} frames)"
        )
    cases += 1
    if fast_result.report.serialize() != ref_result.report.serialize():
        failures.append("verdict wire text differs")

    # 2. MRENCLAVE: fast hash + memo vs reference hash, full replay
    cases += 1
    from repro.core import provisioning as prov_module

    pages = _pages_for(binary)
    prov_module._MRENCLAVE_MEMO.clear()
    fast_mr = expected_mrenclave(
        policies, heap_pages=512, client_pages=pages,
    )
    with _reference_measurement():
        ref_mr = expected_mrenclave(
            policies, heap_pages=512, client_pages=pages, use_cache=False,
        )
    if fast_mr != ref_mr:
        failures.append("MRENCLAVE differs between hash implementations")

    # 3. sealed-page blob: cached-midstate HMAC vs the frozen reference
    cases += 1
    paging_key = bytes(range(31, 63))
    blob = seal_page(paging_key, 7, 0x4000, 3, "rw-", bytes(4096))
    ref_mac = ref_hmac_sha256(
        paging_key,
        EvictedPage(eid=7, vaddr=0x4000, version=3, perms="rw-",
                    ciphertext=blob.ciphertext, mac=b"").body(),
    )
    if blob.mac != ref_mac:
        failures.append("sealed-page MAC differs from reference HMAC")

    return {"cases": cases, "divergences": len(failures), "failures": failures}


# ------------------------------------------------------------------ driver

def run_benchmark(*, quick: bool) -> dict:
    scale = SCALE_QUICK if quick else SCALE_FULL
    fleet = FLEET_QUICK if quick else FLEET_FULL

    libc = build_libc()
    policies = _build_policies(libc)
    binary = build_workload(
        WORKLOAD, stack_protector=True, ifcc=True, libc=libc, scale=scale,
    )

    result: dict = {
        "schema": "bench_provisioning/1",
        "quick": quick,
        "scale": scale,
        "primitives": bench_primitives(quick=quick),
        "end_to_end": bench_end_to_end(policies, binary, fleet=fleet),
        "differential": run_differential(policies, binary),
    }
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def render_table(result: dict) -> str:
    rows = [
        f"{'primitive':<22} {'optimized':>12} {'reference':>12} "
        f"{'speedup':>8}",
    ]
    for cell in result["primitives"]:
        rows.append(
            f"{cell['primitive'] + ' (' + cell['unit'] + ')':<22} "
            f"{cell['optimized']:>12,.2f} {cell['reference']:>12,.2f} "
            f"{cell['speedup']:>7.2f}x"
        )
    e2e = result["end_to_end"]
    rows.append(
        f"end-to-end cold ({e2e['workload']}): "
        f"{e2e['cold']['optimized_seconds']}s vs "
        f"{e2e['cold']['reference_seconds']}s "
        f"({e2e['cold']['speedup']}x)"
    )
    fl = e2e["fleet"]
    rows.append(
        f"end-to-end fleet ({fl['clients']} clients, verdict cache): "
        f"{fl['optimized_seconds']}s vs {fl['reference_seconds']}s "
        f"({fl['speedup']}x)"
    )
    diff = result["differential"]
    rows.append(
        f"differential check: {diff['cases']} cases, "
        f"{diff['divergences']} divergence(s)"
    )
    return "\n".join(rows)


# ------------------------------------------------------------------ pytest

def test_provisioning_data_plane():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Provisioning data plane (optimized vs frozen reference):\n"
        + render_table(result)
    )
    assert result["differential"]["divergences"] == 0, (
        result["differential"]["failures"]
    )
    # The PR's acceptance bar: >=3x end-to-end provisioning throughput at
    # fleet scale with zero differential divergences.
    assert result["end_to_end"]["fleet"]["speedup"] >= 3.0, (
        result["end_to_end"]
    )


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small workload + fleet (CI perf-smoke mode)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON trajectory (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(quick=args.quick)
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    diff = result["differential"]
    if diff["divergences"]:
        for failure in diff["failures"]:
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        return 1
    fleet_speedup = result["end_to_end"]["fleet"]["speedup"]
    if fleet_speedup < 3.0:
        print(
            f"FAIL: fleet speedup {fleet_speedup}x below the 3x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
