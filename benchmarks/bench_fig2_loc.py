"""Figure 2: sizes of EnGarde's components.

The paper's Figure 2 is a lines-of-code inventory.  This benchmark
regenerates it for this repository (timing the inventory pass itself) and
prints the paper-vs-ours table.
"""

from __future__ import annotations

from repro.harness.loc import component_loc, render_loc_table

from conftest import record_table


def test_fig2_component_inventory(benchmark):
    table = benchmark.pedantic(component_loc, rounds=3, iterations=1)

    # sanity: every paper component maps to real code here
    assert all(ours > 0 for _paper, ours in table.values())
    for name, (paper, ours) in table.items():
        benchmark.extra_info[name] = ours

    record_table(render_loc_table())
