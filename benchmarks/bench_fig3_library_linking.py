"""Figure 3: EnGarde checking the library-linking policy.

For each of the seven paper benchmarks: provision the (plain) workload
through the full protocol with the musl-v1.0.5 hash-checking policy, and
report #Inst plus the Disassembly / Policy-Checking / Loading cycle
columns, compared against the paper's values.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_cell
from repro.harness.tables import PAPER_DATA, render_comparison, render_figure
from repro.toolchain.workloads import PAPER_BENCHMARKS

from conftest import SCALE, record_table

POLICY = "library-linking"
_results = []


@pytest.mark.parametrize("bench", PAPER_BENCHMARKS)
def test_fig3_cell(benchmark, bench):
    cell = benchmark.pedantic(
        run_cell, args=(bench, POLICY), kwargs={"scale": SCALE},
        rounds=1, iterations=1,
    )
    assert cell.accepted, f"{bench} must be policy-compliant"
    paper = PAPER_DATA[3][bench]
    benchmark.extra_info.update({
        "insns": cell.insn_count,
        "disassembly_cycles": cell.disassembly_cycles,
        "policy_cycles": cell.policy_cycles,
        "loading_cycles": cell.loading_cycles,
        "paper_insns": paper[0],
        "ratio_policy": round(cell.policy_cycles / paper[2], 3),
    })
    _results.append(cell)

    # Shape assertions (hold at any scale):
    #   policy checking dominates loading by orders of magnitude
    assert cell.policy_cycles > 50 * cell.loading_cycles
    if SCALE >= 0.99:
        # at full scale the instruction counts match the paper's column
        assert abs(cell.insn_count - paper[0]) <= max(paper[0] // 500, 40)

    if len(_results) == len(PAPER_BENCHMARKS):
        record_table(render_figure(_results, "Figure 3: library-linking policy"))
        if SCALE >= 0.99:
            record_table(render_comparison(_results, figure=3))
            per_insn = {
                c.benchmark: c.policy_cycles / c.insn_count for c in _results
            }
            # 429.mcf pays the highest per-instruction policy cost (the
            # paper's call-density effect); small scales distort ratios,
            # so this shape assertion is full-scale only.
            assert per_insn["mcf"] == max(per_insn.values()), per_insn
