"""Streaming provisioning benchmark: overlapped receive + delta updates.

Measures the streamed receive path against the frozen phased oracle:

* **recv primitive** — per-record MAC verification with the channel's
  session-lifetime HMAC midstates vs the per-record key schedule and
  header/ciphertext join it replaced,
* one **cold** end-to-end provisioning run, streamed vs phased, on an
  nginx-class binary with the provider's production enclave geometry
  (the 1.5x acceptance bar),
* a **delta** scenario — the same binary comes back with one function's
  immediate changed; the provider's delta index re-pays decode and the
  super-linear policy scan only for the changed function (the 3x-vs-cold
  acceptance bar),
* the **differential check**: byte-identical wire transcripts (every
  socket frame of both the v1 and v2 runs), identical verdict bytes,
  and tick-identical cumulative meter totals between the two modes.
  Any divergence fails the benchmark — streaming may only change
  wall-clock.

Results land in ``BENCH_streaming.json`` (uploaded as a CI artifact).

Runs both under pytest (``PYTHONPATH=src python -m pytest benchmarks/
bench_streaming.py``) and as a script (``python benchmarks/
bench_streaming.py [--quick] [--output PATH]``).  Quick mode (CI):
``--quick`` or ``REPRO_BENCH_QUICK=1`` shrinks the workload; the
wall-clock bars are only enforced at full scale, the differential
always.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import (
    CloudProvider,
    EnclaveClient,
    IfccPolicy,
    LibraryLinkingPolicy,
    PolicyRegistry,
    StackProtectionPolicy,
    provision,
)
from repro.crypto import HmacDrbg
from repro.crypto.mac import HmacKey
from repro.crypto.rsa import generate_keypair
from repro.elf import read_elf
from repro.net import sock as sock_module
from repro.sgx import SgxParams
from repro.toolchain import build_libc
from repro.toolchain.workloads import build_workload
from repro.x86 import iter_decode

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DEFAULT_OUTPUT = "BENCH_streaming.json"

WORKLOAD = "nginx"
SCALE_FULL = 0.3
SCALE_QUICK = 0.05

#: acceptance bars, enforced at full scale
COLD_BAR = 1.5
DELTA_BAR = 3.0


def _build_policies(libc) -> PolicyRegistry:
    return PolicyRegistry([
        LibraryLinkingPolicy(libc.reference_hashes()),
        StackProtectionPolicy(exempt_functions=set(libc.offsets)),
        IfccPolicy(),
    ])


def _make_provider(policies, *, streaming: bool, keypair) -> CloudProvider:
    # Deliberately the provider's default client-region geometry (2048
    # pages): the streamed wins include fast measurement replay over the
    # full region, exactly what a production provider pays.
    return CloudProvider(
        policies,
        params=SgxParams(epc_pages=8192, heap_initial_pages=512),
        rsa_bits=1024,
        channel_keypair=keypair,
        streaming=streaming,
    )


def make_updated_binary(raw: bytes, libc) -> bytes:
    """v2 of *raw*: one mov-immediate byte flipped inside one application
    function — same layout, same symbols, one changed function body."""
    img = read_elf(raw)
    text = img.text_sections[0]
    exempt = set(libc.offsets) | {"_start"}
    funcs = sorted(
        (s.value - text.vaddr, s.name) for s in img.function_symbols()
    )
    app = [(off, name) for off, name in funcs if name not in exempt]
    starts = [off for off, _ in funcs]
    off, _name = app[len(app) // 2]
    idx = bisect.bisect_right(starts, off)
    end = starts[idx] if idx < len(starts) else len(text.data)
    for insn in iter_decode(text.data, off, end):
        if (insn.mnemonic == "mov" and insn.target is None
                and insn.num_immediate_bytes >= 4):
            file_off = (text.offset + insn.offset + insn.length
                        - insn.num_immediate_bytes)
            mutated = bytearray(raw)
            mutated[file_off] ^= 0x5A
            return bytes(mutated)
    raise AssertionError("no mov-immediate found in the chosen function")


# --------------------------------------------------------------- primitive

def _best(fn, *, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_recv_primitive(*, quick: bool) -> dict:
    """Per-record MAC verify: session-lifetime HMAC midstates vs the
    per-record shape (fresh key schedule + header/ciphertext join)."""
    repeats = 3 if quick else 5
    record = 4 * 1024
    n_records = 96 if quick else 384
    total = record * n_records
    mac_key = bytes(range(32))
    header = b"\x00" * 8
    body = memoryview(bytes(range(256)) * (record // 256))
    prepared = HmacKey(mac_key)

    def per_record() -> None:
        for _ in range(n_records):
            # what every record paid before: rebuild both pad midstates
            # from the key, and join header+ciphertext for the one-shot
            HmacKey(mac_key).mac(header + bytes(body))

    def midstate() -> None:
        for _ in range(n_records):
            prepared.mac(header, body)

    mib = 1024 * 1024
    cold_s = _best(per_record, repeats=repeats)
    warm_s = _best(midstate, repeats=repeats)
    return {
        "record_bytes": record,
        "records": n_records,
        "per_record_mib_s": round(total / mib / cold_s, 2),
        "midstate_mib_s": round(total / mib / warm_s, 2),
        "speedup": round(cold_s / warm_s, 2),
    }


# ------------------------------------------------------------- end to end

def _timed_provision(provider, policies, raw: bytes, *, streaming: bool):
    client = EnclaveClient(
        raw, policies=policies, benchmark=WORKLOAD, streaming=streaming,
    )
    t0 = time.perf_counter()
    result = provision(provider, client)
    elapsed = time.perf_counter() - t0
    assert result.accepted, "benchmark workload must provision cleanly"
    return elapsed, result


def bench_end_to_end(policies, raw: bytes, v2: bytes) -> dict:
    from repro.core import provisioning as prov_module

    keypair = generate_keypair(1024, HmacDrbg(b"bench-streaming-keypair"))

    prov_module._MRENCLAVE_MEMO.clear()
    phased_provider = _make_provider(policies, streaming=False, keypair=keypair)
    phased_cold, _ = _timed_provision(
        phased_provider, policies, raw, streaming=False,
    )

    prov_module._MRENCLAVE_MEMO.clear()
    streamed_provider = _make_provider(
        policies, streaming=True, keypair=keypair,
    )
    streamed_cold, _ = _timed_provision(
        streamed_provider, policies, raw, streaming=True,
    )

    # Delta: the updated binary through the SAME warm streamed provider —
    # its delta index re-inspects only the changed function.
    delta_seconds, delta_result = _timed_provision(
        streamed_provider, policies, v2, streaming=True,
    )
    scan_adopted = delta_result.outcome.disassembly.scan is not None

    return {
        "workload": WORKLOAD,
        "binary_bytes": len(raw),
        "cold": {
            "phased_seconds": round(phased_cold, 3),
            "streamed_seconds": round(streamed_cold, 3),
            "speedup": round(phased_cold / streamed_cold, 2),
        },
        "delta": {
            "v2_seconds": round(delta_seconds, 3),
            "speedup_vs_cold_streamed": round(
                streamed_cold / delta_seconds, 2
            ),
            "speedup_vs_cold_phased": round(phased_cold / delta_seconds, 2),
            "scan_adopted": scan_adopted,
        },
    }


# ------------------------------------------------------------ differential

def _record_pair(policies, raw: bytes, v2: bytes, *, streaming: bool):
    """v1 then v2 through one provider, every socket frame recorded."""
    frames: list[tuple[str, bytes]] = []
    original_send = sock_module.SimSocket.send

    def recording_send(self, message):
        frames.append((self.name, bytes(message)))
        return original_send(self, message)

    keypair = generate_keypair(1024, HmacDrbg(b"bench-streaming-diff"))
    provider = _make_provider(policies, streaming=streaming, keypair=keypair)
    results = []
    sock_module.SimSocket.send = recording_send
    try:
        for content in (raw, v2):
            client = EnclaveClient(
                content, policies=policies, benchmark=WORKLOAD,
                streaming=streaming,
            )
            results.append(provision(provider, client))
    finally:
        sock_module.SimSocket.send = original_send
    return frames, results, provider.machine.meter


def run_differential(policies, raw: bytes, v2: bytes) -> dict:
    cases = 0
    failures: list[str] = []

    phased_frames, phased_results, phased_meter = _record_pair(
        policies, raw, v2, streaming=False,
    )
    streamed_frames, streamed_results, streamed_meter = _record_pair(
        policies, raw, v2, streaming=True,
    )

    cases += 1
    if streamed_frames != phased_frames:
        failures.append(
            f"wire transcript differs ({len(streamed_frames)} vs "
            f"{len(phased_frames)} frames across the v1+v2 runs)"
        )
    for version, (s, p) in enumerate(
        zip(streamed_results, phased_results), start=1
    ):
        cases += 1
        if s.report.serialize() != p.report.serialize():
            failures.append(f"v{version} verdict wire bytes differ")
        cases += 1
        if s.client_verdict != p.client_verdict:
            failures.append(f"v{version} client-side verdict differs")
    cases += 1
    if streamed_meter.total_cycles != phased_meter.total_cycles:
        failures.append(
            "cumulative meter totals differ: "
            f"{streamed_meter.total_cycles} streamed vs "
            f"{phased_meter.total_cycles} phased"
        )

    return {"cases": cases, "divergences": len(failures), "failures": failures}


# ------------------------------------------------------------------ driver

def run_benchmark(*, quick: bool) -> dict:
    scale = SCALE_QUICK if quick else SCALE_FULL

    libc = build_libc()
    policies = _build_policies(libc)
    binary = build_workload(
        WORKLOAD, stack_protector=True, ifcc=True, libc=libc, scale=scale,
    )
    raw = binary.elf
    v2 = make_updated_binary(raw, libc)

    result = {
        "schema": "bench_streaming/1",
        "quick": quick,
        "scale": scale,
        "recv_primitive": bench_recv_primitive(quick=quick),
        "end_to_end": bench_end_to_end(policies, raw, v2),
        "differential": run_differential(policies, raw, v2),
    }
    try:
        from conftest import stamp_artifact
    except ImportError:  # pragma: no cover - conftest lives alongside
        pass
    else:
        stamp_artifact(result)
    return result


def render_table(result: dict) -> str:
    recv = result["recv_primitive"]
    e2e = result["end_to_end"]
    cold, delta = e2e["cold"], e2e["delta"]
    diff = result["differential"]
    return "\n".join([
        f"record MAC ({recv['records']}x{recv['record_bytes']}B): "
        f"{recv['midstate_mib_s']} MiB/s midstate vs "
        f"{recv['per_record_mib_s']} MiB/s per-record ({recv['speedup']}x)",
        f"cold ({e2e['workload']}, {e2e['binary_bytes']} bytes): "
        f"{cold['streamed_seconds']}s streamed vs "
        f"{cold['phased_seconds']}s phased ({cold['speedup']}x)",
        f"delta (one function changed): {delta['v2_seconds']}s — "
        f"{delta['speedup_vs_cold_streamed']}x vs cold streamed, "
        f"{delta['speedup_vs_cold_phased']}x vs cold phased "
        f"(scan adopted: {delta['scan_adopted']})",
        f"differential check: {diff['cases']} cases, "
        f"{diff['divergences']} divergence(s)",
    ])


def _check_bars(result: dict) -> list[str]:
    """Gate failures (empty when the run passes)."""
    problems: list[str] = []
    diff = result["differential"]
    if diff["divergences"]:
        problems.extend(f"DIVERGENCE: {f}" for f in diff["failures"])
    e2e = result["end_to_end"]
    if not e2e["delta"]["scan_adopted"]:
        problems.append("delta run fell back to the phased decode")
    if not result["quick"]:
        if e2e["cold"]["speedup"] < COLD_BAR:
            problems.append(
                f"cold streamed speedup {e2e['cold']['speedup']}x below "
                f"the {COLD_BAR}x bar"
            )
        if e2e["delta"]["speedup_vs_cold_streamed"] < DELTA_BAR:
            problems.append(
                f"delta speedup {e2e['delta']['speedup_vs_cold_streamed']}x "
                f"below the {DELTA_BAR}x bar"
            )
    return problems


# ------------------------------------------------------------------ pytest

def test_streaming_provisioning():
    try:
        from conftest import record_table
    except ImportError:  # script-style invocation
        record_table = print
    result = run_benchmark(quick=QUICK)
    Path(DEFAULT_OUTPUT).write_text(json.dumps(result, indent=1) + "\n")
    record_table(
        "Streaming provisioning (streamed vs frozen phased oracle):\n"
        + render_table(result)
    )
    problems = _check_bars(result)
    assert not problems, problems


# ------------------------------------------------------------------ script

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=QUICK,
        help="small workload (CI perf-smoke mode; wall-clock bars waived)",
    )
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT,
        help=f"where to write the JSON trajectory (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    t0 = time.time()
    result = run_benchmark(quick=args.quick)
    Path(args.output).write_text(json.dumps(result, indent=1) + "\n")
    print(render_table(result))
    print(f"(wrote {args.output}; {time.time() - t0:.0f}s wall)")

    problems = _check_bars(result)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
