"""Figure 4: EnGarde checking the stack-protection policy.

Workloads are compiled with the stack-protector pass (the clang
``-fstack-protector-all`` analogue), then provisioned under the policy
that verifies the canary instrumentation.  The headline shape to
preserve: 401.bzip2's policy-checking cost *exceeds* Nginx's despite ~11x
fewer instructions, because the check is super-linear in function size
and bzip2 is a few huge compression kernels.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_cell
from repro.harness.tables import PAPER_DATA, render_comparison, render_figure
from repro.toolchain.workloads import PAPER_BENCHMARKS

from conftest import SCALE, record_table

POLICY = "stack-protection"
_results = []


@pytest.mark.parametrize("bench", PAPER_BENCHMARKS)
def test_fig4_cell(benchmark, bench):
    cell = benchmark.pedantic(
        run_cell, args=(bench, POLICY), kwargs={"scale": SCALE},
        rounds=1, iterations=1,
    )
    assert cell.accepted, f"{bench} (instrumented) must pass"
    paper = PAPER_DATA[4][bench]
    benchmark.extra_info.update({
        "insns": cell.insn_count,
        "disassembly_cycles": cell.disassembly_cycles,
        "policy_cycles": cell.policy_cycles,
        "loading_cycles": cell.loading_cycles,
        "paper_insns": paper[0],
        "ratio_policy": round(cell.policy_cycles / paper[2], 3),
    })
    _results.append(cell)

    if SCALE >= 0.99 and len(_results) == len(PAPER_BENCHMARKS):
        by_name = {c.benchmark: c for c in _results}
        # The Figure 4 anomaly: bzip2 > nginx in absolute policy cycles.
        assert (by_name["bzip2"].policy_cycles
                > by_name["nginx"].policy_cycles * 0.8), (
            "bzip2's super-linear cost should rival/exceed nginx's"
        )
        # Instrumented #Inst grew relative to the plain build, matching
        # the Figure 3 -> Figure 4 column change direction.
        for name, cell_ in by_name.items():
            assert cell_.insn_count >= PAPER_DATA[3][name][0] - 60

    if len(_results) == len(PAPER_BENCHMARKS):
        record_table(render_figure(_results, "Figure 4: stack-protection policy"))
        if SCALE >= 0.99:
            record_table(render_comparison(_results, figure=4))
