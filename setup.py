from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description="EnGarde: mutually-trusted inspection of SGX enclaves (ICDCS 2017) reproduction",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
