"""The EnGarde orchestrator: pipeline outcomes and phase accounting."""

from __future__ import annotations

import pytest

from repro.core import EnGarde, PolicyRegistry
from repro.core.policy import PolicyContext, PolicyModule
from repro.errors import PolicyError
from repro.sgx import CycleMeter
from tests.conftest import compile_demo


class AlwaysPass(PolicyModule):
    name = "always-pass"

    def check(self, ctx):
        return self.result()


class AlwaysFail(PolicyModule):
    name = "always-fail"

    def check(self, ctx):
        result = self.result()
        result.add_violation("configured to fail")
        return result


class CountingPolicy(PolicyModule):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def check(self, ctx):
        self.calls += 1
        return self.result()


class TestInspect:
    def test_accept_path(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass()]))
        outcome = engarde.inspect(demo_plain.elf, benchmark="demo")
        assert outcome.accepted
        assert outcome.report.policies_checked == ("always-pass",)
        assert outcome.disassembly is not None
        assert outcome.report.executable_pages

    def test_reject_path(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        outcome = engarde.inspect(demo_plain.elf)
        assert not outcome.accepted
        assert outcome.report.policies_failed == ("always-fail",)
        assert outcome.loaded is None

    def test_structural_rejection_skips_policies(self):
        counting = CountingPolicy()
        engarde = EnGarde(PolicyRegistry([counting]))
        outcome = engarde.inspect(b"garbage-not-elf" * 10)
        assert not outcome.accepted
        assert outcome.report.rejected_stage == "elf"
        assert counting.calls == 0

    def test_every_policy_runs_even_after_failure(self, demo_plain):
        counting = CountingPolicy()
        engarde = EnGarde(PolicyRegistry([AlwaysFail(), counting]))
        engarde.inspect(demo_plain.elf)
        assert counting.calls == 1

    def test_phase_attribution(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass()]))
        engarde.inspect(demo_plain.elf)
        meter = engarde.meter
        assert meter.phase_cycles("disassembly") > 0
        assert meter.phase_cycles("loading") == 0  # inspect() never loads
        assert meter.phase_cycles("disassembly") <= meter.total_cycles


class TestBootstrapIdentity:
    def test_policy_set_changes_bootstrap(self):
        a = EnGarde(PolicyRegistry([AlwaysPass()]))
        b = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        assert a.bootstrap_bytes() != b.bootstrap_bytes()

    def test_bootstrap_order_independent(self):
        a = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        b = EnGarde(PolicyRegistry([AlwaysFail(), AlwaysPass()]))
        assert a.bootstrap_bytes() == b.bootstrap_bytes()


class TestRegistry:
    def test_duplicate_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRegistry([AlwaysPass(), AlwaysPass()])

    def test_iteration_and_names(self):
        registry = PolicyRegistry([AlwaysPass(), AlwaysFail()])
        assert len(registry) == 2
        assert registry.names() == ["always-pass", "always-fail"]


class TestStaticTextPages:
    """Regression: the static-report path assumed text_sections[0] exists.

    `static_text_pages` must tolerate images with zero or multiple text
    sections, and `inspect` must reject (never accept with an empty page
    list) when an image somehow carries no text."""

    @staticmethod
    def _image(*sections):
        from types import SimpleNamespace

        return SimpleNamespace(text_sections=list(sections))

    @staticmethod
    def _section(vaddr, size):
        from types import SimpleNamespace

        return SimpleNamespace(vaddr=vaddr, data=b"\x90" * size)

    def test_single_section_matches_previous_behaviour(self):
        from repro.core import static_text_pages

        image = self._image(self._section(0x1234, 0x2000))
        assert static_text_pages(image) == [0x1000, 0x2000, 0x3000]

    def test_multiple_sections_union_sorted_deduped(self):
        from repro.core import static_text_pages

        image = self._image(
            self._section(0x5000, 0x1000),
            self._section(0x1000, 0x1800),   # overlaps into page 0x2000
            self._section(0x2000, 0x10),     # duplicate page
        )
        assert static_text_pages(image) == [0x1000, 0x2000, 0x5000]

    def test_zero_or_empty_sections_yield_no_pages(self):
        from repro.core import static_text_pages

        assert static_text_pages(self._image()) == []
        assert static_text_pages(self._image(self._section(0x1000, 0))) == []

    def _engarde_with_stub_image(self, image):
        """An EnGarde whose disassembler reports *image* — the only way a
        zero/multi-text image can reach the report path, since the real
        disassembler rejects those earlier."""
        from repro.core import EnGarde, PolicyRegistry
        from repro.core.disasm import DisassemblyResult
        from repro.core.policy import SymbolHashTable

        engarde = EnGarde(PolicyRegistry([AlwaysPass()]))
        result = DisassemblyResult(
            image=image,
            instructions=[],
            symtab=SymbolHashTable(engarde.meter),
            text_vaddr=0,
            buffer_pages_allocated=0,
        )
        engarde.disassembler.run = lambda raw: result
        return engarde

    def test_inspect_rejects_instead_of_crashing_on_textless_image(self):
        engarde = self._engarde_with_stub_image(self._image())
        outcome = engarde.inspect(b"irrelevant", benchmark="textless")
        assert not outcome.accepted
        assert outcome.report.rejected_stage == "no-text"
        assert outcome.report.executable_pages == ()

    def test_inspect_reports_union_for_multi_text_image(self):
        engarde = self._engarde_with_stub_image(self._image(
            self._section(0x3000, 0x1000), self._section(0x1000, 0x800),
        ))
        outcome = engarde.inspect(b"irrelevant", benchmark="multi")
        assert outcome.accepted
        assert outcome.report.executable_pages == (0x1000, 0x3000)
