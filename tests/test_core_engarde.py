"""The EnGarde orchestrator: pipeline outcomes and phase accounting."""

from __future__ import annotations

import pytest

from repro.core import EnGarde, PolicyRegistry
from repro.core.policy import PolicyContext, PolicyModule
from repro.errors import PolicyError
from repro.sgx import CycleMeter
from tests.conftest import compile_demo


class AlwaysPass(PolicyModule):
    name = "always-pass"

    def check(self, ctx):
        return self.result()


class AlwaysFail(PolicyModule):
    name = "always-fail"

    def check(self, ctx):
        result = self.result()
        result.add_violation("configured to fail")
        return result


class CountingPolicy(PolicyModule):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def check(self, ctx):
        self.calls += 1
        return self.result()


class TestInspect:
    def test_accept_path(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass()]))
        outcome = engarde.inspect(demo_plain.elf, benchmark="demo")
        assert outcome.accepted
        assert outcome.report.policies_checked == ("always-pass",)
        assert outcome.disassembly is not None
        assert outcome.report.executable_pages

    def test_reject_path(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        outcome = engarde.inspect(demo_plain.elf)
        assert not outcome.accepted
        assert outcome.report.policies_failed == ("always-fail",)
        assert outcome.loaded is None

    def test_structural_rejection_skips_policies(self):
        counting = CountingPolicy()
        engarde = EnGarde(PolicyRegistry([counting]))
        outcome = engarde.inspect(b"garbage-not-elf" * 10)
        assert not outcome.accepted
        assert outcome.report.rejected_stage == "elf"
        assert counting.calls == 0

    def test_every_policy_runs_even_after_failure(self, demo_plain):
        counting = CountingPolicy()
        engarde = EnGarde(PolicyRegistry([AlwaysFail(), counting]))
        engarde.inspect(demo_plain.elf)
        assert counting.calls == 1

    def test_phase_attribution(self, demo_plain):
        engarde = EnGarde(PolicyRegistry([AlwaysPass()]))
        engarde.inspect(demo_plain.elf)
        meter = engarde.meter
        assert meter.phase_cycles("disassembly") > 0
        assert meter.phase_cycles("loading") == 0  # inspect() never loads
        assert meter.phase_cycles("disassembly") <= meter.total_cycles


class TestBootstrapIdentity:
    def test_policy_set_changes_bootstrap(self):
        a = EnGarde(PolicyRegistry([AlwaysPass()]))
        b = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        assert a.bootstrap_bytes() != b.bootstrap_bytes()

    def test_bootstrap_order_independent(self):
        a = EnGarde(PolicyRegistry([AlwaysPass(), AlwaysFail()]))
        b = EnGarde(PolicyRegistry([AlwaysFail(), AlwaysPass()]))
        assert a.bootstrap_bytes() == b.bootstrap_bytes()


class TestRegistry:
    def test_duplicate_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRegistry([AlwaysPass(), AlwaysPass()])

    def test_iteration_and_names(self):
        registry = PolicyRegistry([AlwaysPass(), AlwaysFail()])
        assert len(registry) == 2
        assert registry.names() == ["always-pass", "always-fail"]
