"""The three paper policy modules, against compliant and violating binaries."""

from __future__ import annotations

import pytest

from repro.core import (
    Disassembler,
    IfccPolicy,
    LibraryLinkingPolicy,
    StackProtectionPolicy,
)
from repro.core.policies import JUMP_TABLE_PREFIX
from repro.sgx import CycleMeter
from repro.toolchain import Compiler, CompilerFlags, FunctionSpec, ProgramSpec, link
from tests.conftest import compile_demo, make_demo_spec


def context_for(binary):
    meter = CycleMeter()
    result = Disassembler(meter).run(binary.elf)
    return result.policy_context(meter)


class TestLibraryLinking:
    def test_genuine_libc_passes(self, libc, demo_plain):
        policy = LibraryLinkingPolicy(libc.reference_hashes())
        result = policy.check(context_for(demo_plain))
        assert result.compliant
        assert result.stats["calls_checked"] > 0

    def test_wrong_version_fails(self, libc, libc_old):
        binary = link(Compiler().compile(make_demo_spec()), libc_old)
        policy = LibraryLinkingPolicy(libc.reference_hashes())
        result = policy.check(context_for(binary))
        assert not result.compliant
        assert any("musl" in v for v in result.violations)

    def test_every_call_site_checked_without_memoization(self, libc, demo_plain):
        policy = LibraryLinkingPolicy(libc.reference_hashes())
        result = policy.check(context_for(demo_plain))
        assert result.stats["hashes_computed"] == result.stats["calls_checked"]

    @staticmethod
    def _repeated_calls_binary(libc):
        spec = ProgramSpec(
            name="repeat",
            functions=[FunctionSpec(
                "main", n_blocks=3,
                direct_calls=["memcpy", "memcpy", "memcpy", "printf", "printf"],
            )],
            libc_imports=["memcpy", "printf"],
        )
        return link(Compiler().compile(spec), libc)

    def test_memoization_reduces_hashes(self, libc):
        binary = self._repeated_calls_binary(libc)
        policy = LibraryLinkingPolicy(libc.reference_hashes(), memoize=True)
        result = policy.check(context_for(binary))
        assert result.compliant
        assert result.stats["calls_checked"] == 5
        assert result.stats["hashes_computed"] == 2  # distinct callees only

    def test_memoization_same_verdict_fewer_cycles(self, libc, libc_old):
        spec = ProgramSpec(
            name="repeat2",
            functions=[FunctionSpec(
                "main", n_blocks=3,
                direct_calls=["memcpy", "memcpy", "printf", "printf"],
            )],
            libc_imports=["memcpy", "printf"],
        )
        binary = link(Compiler().compile(spec), libc_old)
        plain_ctx = context_for(binary)
        memo_ctx = context_for(binary)
        plain = LibraryLinkingPolicy(libc.reference_hashes()).check(plain_ctx)
        memo = LibraryLinkingPolicy(libc.reference_hashes(), memoize=True).check(memo_ctx)
        assert plain.compliant == memo.compliant is False
        assert memo_ctx.meter.total_cycles < plain_ctx.meter.total_cycles

    def test_client_functions_not_in_db_are_skipped(self, libc, demo_plain):
        policy = LibraryLinkingPolicy(libc.reference_hashes())
        result = policy.check(context_for(demo_plain))
        assert result.compliant  # helper/main calls don't fail the policy

    def test_require_all_calls_known(self, libc, demo_plain):
        policy = LibraryLinkingPolicy(
            libc.reference_hashes(), require_all_calls_known=True
        )
        result = policy.check(context_for(demo_plain))
        assert not result.compliant  # calls to client functions are "unknown"

    def test_empty_db_rejected(self):
        with pytest.raises(ValueError):
            LibraryLinkingPolicy({})

    def test_patched_libc_detected(self, libc):
        # Flip one byte inside a retained libc function post-link: the
        # hash comparison must catch it.
        binary = link(Compiler().compile(make_demo_spec()), libc)
        memcpy_vaddr = binary.symbols["memcpy"]
        raw = bytearray(binary.elf)
        # find the file offset of .text (vaddr 0x1000 -> offset 0x1000)
        file_off = memcpy_vaddr  # text offset == vaddr for the first page
        raw[file_off] ^= 0x01

        class Patched:
            elf = bytes(raw)

        ctx = context_for(Patched)
        result = LibraryLinkingPolicy(libc.reference_hashes()).check(ctx)
        assert not result.compliant


class TestStackProtection:
    def policy(self, libc):
        return StackProtectionPolicy(exempt_functions=set(libc.offsets))

    def test_instrumented_passes(self, libc):
        binary = compile_demo(libc, stack_protector=True)
        result = self.policy(libc).check(context_for(binary))
        assert result.compliant
        assert result.stats["functions_checked"] == 3  # main, helper, callback

    def test_uninstrumented_fails(self, libc, demo_plain):
        result = self.policy(libc).check(context_for(demo_plain))
        assert not result.compliant
        assert len(result.violations) == 3

    def test_partial_instrumentation_detected(self, libc):
        # compile one binary instrumented, another plain, and link a
        # program where only some functions came from the instrumented
        # compiler -> must fail (this is -fstack-protector-all)
        spec = ProgramSpec(
            name="partial",
            functions=[
                FunctionSpec("main", n_blocks=2, direct_calls=["helper"]),
                FunctionSpec("helper", n_blocks=2),
            ],
        )
        plain_fn = Compiler(CompilerFlags()).compile(spec).functions
        instr = Compiler(CompilerFlags(stack_protector=True)).compile(spec)
        # swap helper for the uninstrumented version
        instr.functions = [
            f if f.name != "helper" else next(
                g for g in plain_fn if g.name == "helper"
            )
            for f in instr.functions
        ]
        binary = link(instr, __import__("repro.toolchain", fromlist=["build_libc"]).build_libc())
        result = self.policy(
            __import__("repro.toolchain", fromlist=["build_libc"]).build_libc()
        ).check(context_for(binary))
        assert not result.compliant
        assert any("helper" in v for v in result.violations)

    def test_libc_functions_exempt(self, libc):
        binary = compile_demo(libc, stack_protector=True)
        result = self.policy(libc).check(context_for(binary))
        assert result.compliant  # libc has no canaries but is exempt

    def test_without_exemption_libc_fails(self, libc):
        binary = compile_demo(libc, stack_protector=True)
        result = StackProtectionPolicy().check(context_for(binary))
        assert not result.compliant

    def test_cost_superlinear_in_function_size(self, libc):
        """One 4x-bigger function must cost >4x the compare charges —
        the mechanism behind Figure 4's bzip2 anomaly."""

        def cost(blocks):
            spec = ProgramSpec(
                name=f"sz{blocks}",
                functions=[FunctionSpec("main", n_blocks=blocks,
                                        ops_per_block=(20, 20))],
            )
            binary = link(
                Compiler(CompilerFlags(stack_protector=True)).compile(spec), libc
            )
            ctx = context_for(binary)
            self.policy(libc).check(ctx)
            return ctx.meter.total.events.get("policy_compare", 0)

        small, big = cost(5), cost(20)
        assert big > 4 * small


class TestIfcc:
    def test_instrumented_passes(self, libc):
        binary = compile_demo(libc, ifcc=True)
        result = IfccPolicy().check(context_for(binary))
        assert result.compliant
        assert result.stats["indirect_calls"] == 1

    def test_unprotected_icall_fails(self, libc, demo_plain):
        result = IfccPolicy().check(context_for(demo_plain))
        assert not result.compliant
        assert any("jump table" in v or "IFCC" in v for v in result.violations)

    def test_no_indirect_calls_passes_vacuously(self, libc):
        spec = ProgramSpec(name="noicall", functions=[FunctionSpec("main")])
        binary = link(Compiler().compile(spec), libc)
        result = IfccPolicy().check(context_for(binary))
        assert result.compliant
        assert result.stats["indirect_calls"] == 0

    def test_wrong_mask_detected(self, libc):
        binary = compile_demo(libc, ifcc=True)
        raw = bytearray(binary.elf)
        # find the and-imm in the icall window and corrupt the mask
        from repro.elf import read_elf
        from repro.x86 import Imm, Reg, decode_all

        img = read_elf(bytes(raw))
        text = img.text_sections[0]
        insns = decode_all(text.data)
        for i, insn in enumerate(insns):
            if insn.is_indirect_call:
                window = insns[max(0, i - 6):i]
                for w in window:
                    if w.mnemonic == "and" and isinstance(w.operands[0], Imm):
                        # patch the immediate byte(s) in the file
                        file_off = text.offset + w.offset + w.length - w.num_immediate_bytes
                        raw[file_off] ^= 0x04
        patched = type("B", (), {"elf": bytes(raw)})
        result = IfccPolicy().check(context_for(patched))
        assert not result.compliant

    def test_call_target_outside_table_detected(self, libc):
        # redirect the fnptr slot to a raw function instead of its table
        # entry: the *static* check still passes (it verifies the code
        # sequence, not the data), demonstrating exactly what IFCC's
        # masking protects at runtime.  But a *missing* lea is caught:
        binary = compile_demo(libc, ifcc=True)
        raw = bytearray(binary.elf)
        from repro.elf import read_elf
        from repro.x86 import decode_all

        img = read_elf(bytes(raw))
        text = img.text_sections[0]
        insns = decode_all(text.data)
        for i, insn in enumerate(insns):
            if insn.is_indirect_call:
                for w in insns[max(0, i - 6):i]:
                    if w.mnemonic == "lea":
                        # turn the lea into (valid) nops of the same length
                        from repro.x86 import Enc

                        file_off = text.offset + w.offset
                        raw[file_off:file_off + w.length] = Enc.nop(w.length)
        patched = type("B", (), {"elf": bytes(raw)})
        result = IfccPolicy().check(context_for(patched))
        assert not result.compliant

    def test_stats_count_sites(self, libc):
        spec = make_demo_spec("many-icalls")
        spec.function("main").indirect_calls = 3
        binary = link(Compiler(CompilerFlags(ifcc=True)).compile(spec), libc)
        result = IfccPolicy().check(context_for(binary))
        assert result.compliant
        assert result.stats["indirect_calls"] == 3
