"""HMAC-SHA256 (RFC 4231 vectors) and the HMAC-DRBG."""

from __future__ import annotations

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import HmacDrbg, hmac_sha256
from repro.crypto.mac import constant_time_eq, hmac_key

# RFC 4231 test cases 1, 2, 3, 4, 6, 7 (the SHA-256 rows; case 5 is the
# truncated-output variant, which this API does not expose).
RFC4231 = [
    (
        b"\x0b" * 20,
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
    ),
    (
        b"\xaa" * 20,
        b"\xdd" * 50,
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
    ),
    (
        bytes(range(1, 26)),  # 25-byte key (shorter than the block)
        b"\xcd" * 50,
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
    ),
    (
        b"\xaa" * 131,  # key longer than the block size
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
    ),
    (
        b"\xaa" * 131,  # long key *and* long data
        b"This is a test using a larger than block-size key and a larger "
        b"than block-size data. The key needs to be hashed before being "
        b"used by the HMAC algorithm.",
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
    ),
]

_RFC4231_IDS = ["tc1", "tc2", "tc3", "tc4", "tc6", "tc7"]


@pytest.mark.parametrize("key,msg,expected", RFC4231, ids=_RFC4231_IDS)
def test_rfc4231(key, msg, expected):
    assert hmac_sha256(key, msg).hex() == expected


@pytest.mark.parametrize("key,msg,expected", RFC4231, ids=_RFC4231_IDS)
def test_rfc4231_prepared_key(key, msg, expected):
    """The cached-midstate path produces the same RFC 4231 digests."""
    prepared = hmac_key(key)
    assert prepared.mac(msg).hex() == expected
    # split updates through the same prepared key
    assert prepared.mac(msg[:7], msg[7:]).hex() == expected


@given(st.binary(max_size=200), st.binary(max_size=500))
@settings(max_examples=150, deadline=None)
def test_matches_stdlib_hmac(key, msg):
    expected = std_hmac.new(key, msg, hashlib.sha256).digest()
    assert hmac_sha256(key, msg) == expected


class TestHmacDrbg:
    def test_deterministic(self):
        assert HmacDrbg(b"seed").generate(64) == HmacDrbg(b"seed").generate(64)

    def test_different_seeds_diverge(self):
        assert HmacDrbg(b"a").generate(32) != HmacDrbg(b"b").generate(32)

    def test_personalization_diverges(self):
        a = HmacDrbg(b"s", personalization=b"x").generate(32)
        b = HmacDrbg(b"s", personalization=b"y").generate(32)
        assert a != b

    def test_sequential_outputs_differ(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(32) != drbg.generate(32)

    def test_generate_zero_and_negative(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(0) == b""
        with pytest.raises(ValueError):
            drbg.generate(-1)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        a.generate(16)
        b.generate(16)
        a.reseed(b"fresh entropy")
        assert a.generate(16) != b.generate(16)

    def test_empty_reseed_runs_both_update_rounds(self):
        """Regression: SP 800-90A's HMAC_DRBG_Update runs its second
        round whenever provided_data was *given* — including an explicit
        empty string.  The old ``provided or b""`` collapsed ``b""`` into
        the None path and skipped the round; this replays the correct
        two-round schedule with stdlib HMAC and demands a byte match."""

        def ref_update(key, value, data):
            key = std_hmac.new(key, value + b"\x00" + data, hashlib.sha256).digest()
            value = std_hmac.new(key, value, hashlib.sha256).digest()
            key = std_hmac.new(key, value + b"\x01" + data, hashlib.sha256).digest()
            value = std_hmac.new(key, value, hashlib.sha256).digest()
            return key, value

        drbg = HmacDrbg(b"seed")
        key, value = drbg._key, drbg._value
        drbg.reseed(b"")
        assert (drbg._key, drbg._value) == ref_update(key, value, b"")
        # and the one-round no-data path is *not* what ran for b""
        one_round_key = std_hmac.new(key, value + b"\x00", hashlib.sha256).digest()
        assert drbg._key != one_round_key

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_randint_in_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        value = HmacDrbg(b"seed").randint(lo, hi)
        assert lo <= value <= hi

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").randint(5, 4)

    def test_randint_covers_range(self):
        drbg = HmacDrbg(b"coverage")
        seen = {drbg.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_randbits_width(self):
        drbg = HmacDrbg(b"seed")
        for k in (1, 7, 8, 9, 64, 257):
            assert 0 <= drbg.randbits(k) < (1 << k)
        with pytest.raises(ValueError):
            drbg.randbits(0)

    def test_choice_and_empty(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.choice([42]) == 42
        assert drbg.choice("abc") in "abc"
        with pytest.raises(ValueError):
            drbg.choice([])

    def test_shuffle_is_permutation(self):
        drbg = HmacDrbg(b"seed")
        items = list(range(50))
        shuffled = list(items)
        drbg.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to collide

    def test_fork_independence(self):
        parent = HmacDrbg(b"seed")
        a = parent.fork(b"left")
        b = parent.fork(b"right")
        assert a.generate(32) != b.generate(32)

    def test_fork_deterministic(self):
        a = HmacDrbg(b"seed").fork(b"x").generate(16)
        b = HmacDrbg(b"seed").fork(b"x").generate(16)
        assert a == b


class TestConstantTimeEq:
    """The shared constant-time comparator (used by the channel's MAC
    check; replaces the hand-rolled copy that lived in channel.py)."""

    def test_equal_and_unequal(self):
        assert constant_time_eq(b"", b"")
        assert constant_time_eq(b"abc", b"abc")
        assert not constant_time_eq(b"abc", b"abd")
        assert not constant_time_eq(b"\x00" * 32, b"\x00" * 31 + b"\x01")

    def test_length_mismatch_short_circuits(self):
        # Documented: length is not secret, so a mismatch returns early.
        assert not constant_time_eq(b"abc", b"abcd")
        assert not constant_time_eq(b"", b"x")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_equality(self, a, b):
        assert constant_time_eq(a, b) == (a == b)

    def test_accepts_memoryview(self):
        tag = bytes(range(32))
        assert constant_time_eq(memoryview(tag), tag)
        assert not constant_time_eq(memoryview(tag), bytes(32))
