"""The optimized crypto data plane vs the frozen reference oracles.

The provisioning overhaul (docs/PERFORMANCE.md, "Provisioning data
plane") rebuilt AES-CTR, SHA-256, and HMAC around cached key schedules,
batched keystream generation, and hash midstates — with the hard
requirement that every output byte stays identical to the frozen
pre-overhaul implementations now living in :mod:`repro.crypto.ref`.
These tests pin that identity: NIST SP 800-38A counter-mode vectors,
counter windows crossing the 2^32 word boundary, the process-wide
keystream memo, SHA-256 midstate resumption, and the channel's two
record-layer modes sharing one wire format.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import Aes, aes_ctr, ctr_xor
from repro.crypto.channel import SecureChannel
from repro.crypto.ref import (
    RefAes,
    RefSHA256,
    ref_aes_ctr,
    ref_hmac_sha256,
    ref_sha256,
)
from repro.crypto.sha256 import SHA256
from repro.errors import CryptoError
from repro.net import SocketPair

# --------------------------------------------------------------------------
# NIST SP 800-38A, section F.5: CTR mode, all three key sizes.  The
# standard's initial counter block f0f1...feff maps onto this layout as
# an 8-byte nonce f0..f7 and initial counter 0xf8f9fafbfcfdfeff.

_NIST_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
_NIST_NONCE = bytes.fromhex("f0f1f2f3f4f5f6f7")
_NIST_CTR0 = 0xF8F9FAFBFCFDFEFF

_NIST_VECTORS = [
    (
        "2b7e151628aed2a6abf7158809cf4f3c",
        "874d6191b620e3261bef6864990db6ce"
        "9806f66b7970fdff8617187bb9fffdff"
        "5ae4df3edbd5d35e5b4f09020db03eab"
        "1e031dda2fbe03d1792170a0f3009cee",
    ),
    (
        "8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b",
        "1abc932417521ca24f2b0459fe7e6e0b"
        "090339ec0aa6faefd5ccc2c6f4ce8e94"
        "1e36b26bd1ebc670d1bd1d665620abf7"
        "4f78a7f6d29809585a97daec58c6b050",
    ),
    (
        "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        "601ec313775789a5b7a7f504bbf3d228"
        "f443e3ca4d62b59aca84e990cacaf5c5"
        "2b0930daa23de94ce87017ba2d84988d"
        "dfc9c58db67aada613c2dd08457941a6",
    ),
]


@pytest.mark.parametrize(
    "key_hex,ct_hex", _NIST_VECTORS, ids=["aes128", "aes192", "aes256"]
)
def test_sp800_38a_ctr_vectors(key_hex, ct_hex):
    key = bytes.fromhex(key_hex)
    ct = aes_ctr(key, _NIST_NONCE, _NIST_PT, initial_counter=_NIST_CTR0)
    assert ct.hex() == ct_hex
    # decryption is the same operation
    assert aes_ctr(
        key, _NIST_NONCE, ct, initial_counter=_NIST_CTR0
    ) == _NIST_PT
    # and the frozen reference produces the same standardised bytes
    assert ref_aes_ctr(
        key, _NIST_NONCE, _NIST_PT, initial_counter=_NIST_CTR0
    ).hex() == ct_hex


class TestCtrDifferential:
    """Optimized CTR vs the frozen per-block reference."""

    KEY = bytes(range(32))
    NONCE = b"fastnonc"

    @pytest.mark.parametrize(
        "counter0",
        [
            0,
            1,
            (1 << 32) - 2,      # low word rolls over mid-batch
            (1 << 32) - 1,
            (1 << 40) - 3,
            (1 << 64) - 512,    # near the top of the counter space
        ],
        ids=["zero", "one", "2^32-2", "2^32-1", "2^40-3", "2^64-512"],
    )
    def test_counter_positions(self, counter0):
        data = bytes(range(256)) * 25  # 400 blocks
        assert aes_ctr(
            self.KEY, self.NONCE, data, initial_counter=counter0
        ) == ref_aes_ctr(self.KEY, self.NONCE, data, initial_counter=counter0)

    def test_counter_word_rollover_is_a_true_carry(self):
        """The batch builder's per-position counter bytes must carry
        across the 2^32 word boundary, not wrap within it."""
        data = b"\x00" * (16 * 8)
        before = aes_ctr(
            self.KEY, self.NONCE, data, initial_counter=(1 << 32) - 4
        )
        # block 4 of `before` is the keystream at exactly counter 2^32
        at = aes_ctr(self.KEY, self.NONCE, b"\x00" * 16,
                     initial_counter=1 << 32)
        assert before[64:80] == at

    @given(
        st.binary(min_size=0, max_size=700),
        st.integers(min_value=0, max_value=(1 << 64) - 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_lengths_and_counters(self, data, counter0):
        for key_len in (16, 32):
            key = bytes(range(key_len))
            assert aes_ctr(key, self.NONCE, data, initial_counter=counter0) \
                == ref_aes_ctr(key, self.NONCE, data, initial_counter=counter0)

    def test_counter_space_exhaustion_raises(self):
        aes = Aes(self.KEY)
        with pytest.raises(CryptoError):
            aes.ctr_keystream(self.NONCE, (1 << 64) - 1, 2)


class TestKeystreamMemo:
    """The process-wide (key, nonce, window) -> keystream memo."""

    KEY = bytes(range(16, 48))
    NONCE = b"memononc"

    def test_memoized_xor_is_identical(self):
        aes = Aes.for_key(self.KEY)
        data = bytes(range(256)) * 8
        first = ctr_xor(aes, self.NONCE, data, initial_counter=77)
        second = ctr_xor(aes, self.NONCE, data, initial_counter=77)
        assert first == second
        assert first == ref_aes_ctr(self.KEY, self.NONCE, data,
                                    initial_counter=77)

    def test_warm_ranges_match_cold_computation(self):
        aes = Aes.for_key(self.KEY)
        ranges = [(i * (1 << 20), 256) for i in range(5)]
        aes.warm_ctr_ranges(self.NONCE, ranges)
        data = bytes(4096)
        for counter0, _nblocks in ranges:
            warmed = ctr_xor(aes, self.NONCE, data, initial_counter=counter0)
            cold = ref_aes_ctr(self.KEY, self.NONCE, data,
                               initial_counter=counter0)
            assert warmed == cold

    def test_for_key_returns_shared_schedule(self):
        assert Aes.for_key(self.KEY) is Aes.for_key(self.KEY)
        assert Aes.for_key(self.KEY).encrypt_block(bytes(16)) \
            == RefAes(self.KEY).encrypt_block(bytes(16))


class TestSha256Midstate:
    def test_midstate_roundtrip_matches_oneshot(self):
        data = bytes(range(256)) * 40
        for split in (0, 1, 55, 56, 63, 64, 65, 128, 1000, len(data)):
            h = SHA256()
            h.update(data[:split])
            resumed = SHA256.from_midstate(h.midstate())
            resumed.update(data[split:])
            assert resumed.digest() == hashlib.sha256(data).digest()
            assert resumed.digest() == ref_sha256(data)

    def test_copy_equivalence(self):
        base = SHA256()
        base.update(b"common prefix " * 10)
        fork_a = base.copy()
        fork_b = SHA256.from_midstate(base.midstate())
        fork_a.update(b"suffix-a")
        fork_b.update(b"suffix-a")
        assert fork_a.digest() == fork_b.digest()
        assert fork_a.digest() == hashlib.sha256(
            b"common prefix " * 10 + b"suffix-a"
        ).digest()
        # the original is unaffected by either fork
        assert base.digest() == hashlib.sha256(b"common prefix " * 10).digest()

    @given(st.binary(max_size=300), st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_unrolled_compression_matches_reference(self, a, b):
        h = SHA256()
        h.update(a)
        h.update(b)
        r = RefSHA256()
        r.update(a)
        r.update(b)
        assert h.digest() == r.digest() == hashlib.sha256(a + b).digest()


class TestChannelModesShareOneWire:
    """optimized=True and optimized=False are the same wire protocol."""

    KEY = bytes(range(100, 132))

    @staticmethod
    def _frames(sock):
        return [bytes(f) for f in sock._inbox]

    def _run(self, optimized: bool, payloads):
        pair = SocketPair("a", "b")
        sender = SecureChannel(
            pair.left, self.KEY, is_server=False, optimized=optimized
        )
        receiver = SecureChannel(
            pair.right, self.KEY, is_server=True, optimized=optimized
        )
        if optimized:
            sender.warm_send_keystream([len(p) for p in payloads])
        wire = []
        plain = []
        for payload in payloads:
            sender.send(payload)
            wire.extend(self._frames(pair.right))
            plain.append(receiver.recv())
        return wire, plain

    def test_wire_bytes_identical_across_modes(self):
        payloads = [b"", b"x", bytes(range(256)) * 16, b"tail" * 333]
        fast_wire, fast_plain = self._run(True, payloads)
        ref_wire, ref_plain = self._run(False, payloads)
        assert fast_wire == ref_wire
        assert fast_plain == ref_plain == payloads

    def test_cross_mode_interop(self):
        """A reference receiver accepts an optimized sender's records."""
        pair = SocketPair("a", "b")
        fast = SecureChannel(pair.left, self.KEY, is_server=False,
                             optimized=True)
        ref = SecureChannel(pair.right, self.KEY, is_server=True,
                            optimized=False)
        for payload in (b"hello", bytes(5000), b"z" * 17):
            fast.send(payload)
            assert ref.recv() == payload

    def test_record_tag_matches_reference_hmac(self):
        pair = SocketPair("a", "b")
        chan = SecureChannel(pair.left, self.KEY, is_server=False,
                             optimized=True)
        chan.send(b"attested payload")
        record = pair.right._inbox[0][4:]  # strip the socket length prefix
        header, body, tag = record[:12], record[12:-32], record[-32:]
        assert tag == ref_hmac_sha256(chan._send_mac, header + body)
